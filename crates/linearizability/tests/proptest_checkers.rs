//! Property tests for the linearizability checkers.
//!
//! Strategy: generate *known-linearizable* histories by construction
//! (choose linearization points first, then wrap each in a random
//! enclosing interval), assert both checkers accept; then corrupt them in
//! ways that are violations by construction and assert rejection.

use proptest::prelude::*;
use snapshot_lin::{
    check_history, check_intervals, History, IntervalViolation, OpRecord, SnapOp, WgResult,
};
use snapshot_registers::ProcessId;

/// A generated linearizable history: ops with their linearization points.
#[derive(Clone, Debug)]
struct GenHistory {
    n: usize,
    ops: Vec<OpRecord<u64>>,
}

/// Builds a valid single-writer history: a random sequence of serialized
/// operations, each assigned an interval containing its serialization
/// point. Gaps of 10 between points leave room for jitter without
/// reordering effects beyond what concurrency allows.
fn gen_history(max_n: usize, max_ops: usize) -> impl Strategy<Value = GenHistory> {
    (
        1..=max_n,
        prop::collection::vec((any::<u8>(), 0u64..4, 0u64..4), 0..max_ops),
    )
        .prop_map(|(n, raw)| {
            let mut mem = vec![0u64; n];
            let mut next_value = 1u64;
            let mut ops = Vec::new();
            for (i, (sel, pre_jitter, post_jitter)) in raw.into_iter().enumerate() {
                let pid = ProcessId::new(sel as usize % n);
                let point = (i as u64 + 1) * 10;
                // Intervals may reach into neighbouring points' slack but
                // always contain the op's own point.
                let inv = point - 1 - pre_jitter.min(8);
                let res = point + 1 + post_jitter.min(8);
                if sel % 2 == 0 {
                    let value = next_value;
                    next_value += 1;
                    mem[pid.get()] = value;
                    ops.push(OpRecord {
                        pid,
                        inv,
                        res: Some(res),
                        op: SnapOp::Update {
                            word: pid.get(),
                            value,
                        },
                    });
                } else {
                    ops.push(OpRecord {
                        pid,
                        inv,
                        res: Some(res),
                        op: SnapOp::Scan { view: mem.clone() },
                    });
                }
            }
            GenHistory { n, ops }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn constructed_linearizable_histories_pass_both_checkers(
        gen in gen_history(3, 14)
    ) {
        // Overlapping intervals of ops by the SAME process are not
        // well-formed histories; our generator's jitter is small enough
        // only when points of the same process are far apart — filter.
        let h = History::from_ops(gen.n, gen.n, 0u64, gen.ops.clone());
        let mut per_proc_ok = true;
        for pid in 0..gen.n {
            let mut intervals: Vec<(u64, u64)> = h
                .ops()
                .iter()
                .filter(|o| o.pid.get() == pid)
                .map(|o| (o.inv, o.res.unwrap()))
                .collect();
            intervals.sort();
            if intervals.windows(2).any(|w| w[0].1 >= w[1].0) {
                per_proc_ok = false;
            }
        }
        prop_assume!(per_proc_ok);

        let wg_ok = matches!(check_history(&h), WgResult::Linearizable { .. });
        prop_assert!(wg_ok, "WG rejected a constructed-valid history: {:?}", h);
        prop_assert_eq!(check_intervals(&h), Ok(()));
    }

    #[test]
    fn unknown_values_are_rejected_by_both_checkers(
        gen in gen_history(3, 10),
        which in any::<prop::sample::Index>(),
    ) {
        let mut ops = gen.ops.clone();
        let scans: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.op, SnapOp::Scan { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!scans.is_empty());
        let target = scans[which.index(scans.len())];
        if let SnapOp::Scan { view } = &mut ops[target].op {
            view[0] = 999_999; // never written
        }
        let h = History::from_ops(gen.n, gen.n, 0u64, ops);

        prop_assert_eq!(check_history(&h), WgResult::NotLinearizable);
        let unknown = matches!(
            check_intervals(&h),
            Err(IntervalViolation::UnknownValue { .. })
        );
        prop_assert!(unknown, "expected an UnknownValue interval violation");
    }

    #[test]
    fn interval_rejections_imply_wg_rejections(
        gen in gen_history(3, 10),
        word_jitter in any::<prop::sample::Index>(),
    ) {
        // Corrupt a scan by swapping in an older (but real) value for one
        // word; if the fast checker convicts it, the complete checker must
        // agree (on these single-writer, unique-value histories the
        // interval checks are genuinely necessary conditions).
        let mut ops = gen.ops.clone();
        let scans: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.op, SnapOp::Scan { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!scans.is_empty());
        let target = scans[word_jitter.index(scans.len())];
        if let SnapOp::Scan { view } = &mut ops[target].op {
            // Roll word 0 back to the initial value.
            view[0] = 0;
        }
        let h = History::from_ops(gen.n, gen.n, 0u64, ops);

        let interval_verdict = check_intervals(&h);
        let wg_verdict = check_history(&h);
        if matches!(
            interval_verdict,
            Err(IntervalViolation::EmptyWindow { .. })
                | Err(IntervalViolation::IncomparableScans { .. })
                | Err(IntervalViolation::StaleScan { .. })
                | Err(IntervalViolation::UnknownValue { .. })
        ) {
            prop_assert_eq!(
                wg_verdict,
                WgResult::NotLinearizable,
                "interval checker convicted ({:?}) a history WG accepts: {:?}",
                interval_verdict,
                h
            );
        }
    }

    #[test]
    fn histories_survive_round_trips_through_from_ops(
        gen in gen_history(4, 12)
    ) {
        let h = History::from_ops(gen.n, gen.n, 0u64, gen.ops.clone());
        prop_assert_eq!(h.len(), gen.ops.len());
        prop_assert!(h.is_single_writer());
        // Sorted by invocation.
        prop_assert!(h.ops().windows(2).all(|w| w[0].inv <= w[1].inv));
    }
}
