use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::{History, SnapOp};

/// A violation (or inapplicability) reported by [`check_intervals`].
///
/// All variants except [`DuplicateValue`] and [`OverlappingUpdates`]
/// certify a genuine linearizability violation. The latter two mean the
/// *checker's preconditions* don't hold for the workload (values not
/// unique per word / per-word updates not totally ordered in real time) —
/// regenerate the workload, or fall back to the Wing–Gong checker.
///
/// Indices refer to positions in [`History::ops`].
///
/// [`DuplicateValue`]: IntervalViolation::DuplicateValue
/// [`OverlappingUpdates`]: IntervalViolation::OverlappingUpdates
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalViolation {
    /// A scan returned a value never written to that word.
    UnknownValue {
        /// Offending scan's op index.
        scan: usize,
        /// The word with the unexplained value.
        word: usize,
    },
    /// No instant within the scan's interval is consistent with all the
    /// per-word update intervals it claims to have observed.
    EmptyWindow {
        /// Offending scan's op index.
        scan: usize,
    },
    /// Two scans observed updates in contradictory orders; no total order
    /// of scans exists.
    IncomparableScans {
        /// One scan's op index.
        a: usize,
        /// The other scan's op index.
        b: usize,
    },
    /// A scan observed strictly less than a scan that completed before it
    /// was invoked (time travel).
    StaleScan {
        /// The earlier (more knowledgeable) scan's op index.
        earlier: usize,
        /// The later (stale) scan's op index.
        later: usize,
    },
    /// Checker precondition failed: two updates wrote the same value to
    /// the same word (or rewrote the initial value).
    DuplicateValue {
        /// The ambiguous word.
        word: usize,
    },
    /// Checker precondition failed: two updates to the same word ran
    /// concurrently, so "the next update" is ill-defined. (Cannot happen
    /// in single-writer histories.)
    OverlappingUpdates {
        /// The offending word.
        word: usize,
    },
}

impl fmt::Display for IntervalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalViolation::UnknownValue { scan, word } => {
                write!(
                    f,
                    "scan #{scan} returned a never-written value for word {word}"
                )
            }
            IntervalViolation::EmptyWindow { scan } => {
                write!(f, "scan #{scan} admits no linearization point")
            }
            IntervalViolation::IncomparableScans { a, b } => {
                write!(
                    f,
                    "scans #{a} and #{b} observed updates in contradictory orders"
                )
            }
            IntervalViolation::StaleScan { earlier, later } => write!(
                f,
                "scan #{later} observed less than scan #{earlier}, which completed before it began"
            ),
            IntervalViolation::DuplicateValue { word } => {
                write!(
                    f,
                    "word {word} was written the same value twice (checker precondition)"
                )
            }
            IntervalViolation::OverlappingUpdates { word } => write!(
                f,
                "concurrent updates to word {word} (checker precondition; use Wing-Gong instead)"
            ),
        }
    }
}

impl std::error::Error for IntervalViolation {}

/// One update as seen by the checker: `seq` is its 1-based position in the
/// word's update order (0 = the initial value).
struct WordUpdate {
    inv: i128,
    /// Response of the *next* update on the same word (exclusive upper
    /// bound for observers of this one); `i128::MAX` if none.
    next_res: i128,
}

/// Fast linearizability *necessary-condition* check for large histories.
///
/// Preconditions: update values are unique per word (and distinct from the
/// initial value), and updates to each word are totally ordered in real
/// time — both automatic for the single-writer stress workloads, and
/// arranged by construction in the multi-writer ones.
///
/// Checks, for every completed scan:
///
/// 1. every returned value was actually written (or is the initial value);
/// 2. a linearization point exists: some real instant inside the scan's
///    interval lies after each observed update's invocation and before the
///    following update's response (per word);
/// 3. all scans are pairwise comparable in the per-word update order
///    (scans of one object must be totally orderable);
/// 4. real-time monotonicity: a scan invoked after another scan's response
///    observes at least as much.
///
/// Runtime `O((U + S·m) + S log S·m)` for `U` updates, `S` scans, `m`
/// words — millions of operations in well under a second.
///
/// # Errors
///
/// The first violation found, with operation indices. See
/// [`IntervalViolation`] for which variants certify real violations.
pub fn check_intervals<V: Clone + Eq + Hash + fmt::Debug>(
    history: &History<V>,
) -> Result<(), IntervalViolation> {
    let m = history.words();
    let ops = history.ops();

    // Per-word update chronology (ops are already sorted by inv).
    let mut by_word: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, op) in ops.iter().enumerate() {
        if let SnapOp::Update { word, .. } = &op.op {
            by_word[*word].push(i);
        }
    }

    // Value -> (word position, interval data). Position 0 is the initial
    // value.
    let mut resolve: Vec<HashMap<&V, usize>> = vec![HashMap::new(); m];
    let mut word_updates: Vec<Vec<WordUpdate>> = Vec::with_capacity(m);
    for (word, indices) in by_word.iter().enumerate() {
        let mut updates = Vec::with_capacity(indices.len() + 1);
        // Virtual initial write: present since before time began.
        updates.push(WordUpdate {
            inv: i128::MIN,
            next_res: indices.first().map_or(i128::MAX, |&i| res_i128(ops[i].res)),
        });
        if resolve[word].insert(history.init(), 0).is_some() {
            unreachable!("first insertion cannot collide");
        }
        for (k, &i) in indices.iter().enumerate() {
            let op = &ops[i];
            // Real-time total order per word: each update must respond
            // before the next one is invoked. A pending update is allowed
            // only in last position.
            if let Some(&j) = indices.get(k + 1) {
                match op.res {
                    Some(r) if (r as i128) < ops[j].inv as i128 => {}
                    _ => return Err(IntervalViolation::OverlappingUpdates { word }),
                }
            }
            let value = match &op.op {
                SnapOp::Update { value, .. } => value,
                SnapOp::Scan { .. } => unreachable!("by_word only holds updates"),
            };
            if resolve[word].insert(value, k + 1).is_some() {
                return Err(IntervalViolation::DuplicateValue { word });
            }
            updates.push(WordUpdate {
                inv: op.inv as i128,
                next_res: indices
                    .get(k + 1)
                    .map_or(i128::MAX, |&j| res_i128(ops[j].res)),
            });
        }
        word_updates.push(updates);
    }

    // Resolve each completed scan to its per-word observation vector and
    // check its linearization window.
    let mut scans: Vec<(usize, Vec<usize>)> = Vec::new(); // (op index, per-word positions)
    for (i, op) in ops.iter().enumerate() {
        let view = match (&op.op, op.res) {
            (SnapOp::Scan { view }, Some(_)) => view,
            _ => continue,
        };
        let mut positions = Vec::with_capacity(m);
        let mut lower = op.inv as i128;
        let mut upper = res_i128(op.res);
        for (word, value) in view.iter().enumerate() {
            let &pos = resolve[word]
                .get(value)
                .ok_or(IntervalViolation::UnknownValue { scan: i, word })?;
            let wu = &word_updates[word][pos];
            lower = lower.max(wu.inv);
            upper = upper.min(wu.next_res);
            positions.push(pos);
        }
        // A real-valued instant strictly between `lower` and `upper`
        // exists iff lower < upper (timestamps are distinct integers).
        if lower >= upper {
            return Err(IntervalViolation::EmptyWindow { scan: i });
        }
        scans.push((i, positions));
    }

    // Pairwise comparability: sort by total progress; adjacent scans must
    // be componentwise ordered, which by transitivity orders all pairs.
    let mut by_progress: Vec<&(usize, Vec<usize>)> = scans.iter().collect();
    by_progress.sort_by_key(|(_, pos)| pos.iter().sum::<usize>());
    for pair in by_progress.windows(2) {
        let (a, pa) = pair[0];
        let (b, pb) = pair[1];
        if !pa.iter().zip(pb).all(|(x, y)| x <= y) {
            return Err(IntervalViolation::IncomparableScans { a: *a, b: *b });
        }
    }

    // Real-time monotonicity sweep: running componentwise max of views of
    // scans responded so far must not exceed any later-invoked scan.
    let mut events: Vec<(i128, bool, usize)> = Vec::new(); // (time, is_response, scans idx)
    for (k, (i, _)) in scans.iter().enumerate() {
        events.push((ops[*i].inv as i128, false, k));
        events.push((res_i128(ops[*i].res), true, k));
    }
    events.sort();
    let mut cummax = vec![0usize; m];
    let mut cummax_owner = vec![usize::MAX; m]; // scans idx that set the max
    for (_, is_response, k) in events {
        let (i, positions) = &scans[k];
        if is_response {
            for (w, &p) in positions.iter().enumerate() {
                if p > cummax[w] {
                    cummax[w] = p;
                    cummax_owner[w] = *i;
                }
            }
        } else {
            for (w, &p) in positions.iter().enumerate() {
                if p < cummax[w] {
                    return Err(IntervalViolation::StaleScan {
                        earlier: cummax_owner[w],
                        later: *i,
                    });
                }
            }
        }
    }

    Ok(())
}

fn res_i128(res: Option<u64>) -> i128 {
    res.map_or(i128::MAX, |r| r as i128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpRecord;
    use snapshot_registers::ProcessId;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn update(pid: ProcessId, inv: u64, res: u64, value: u32) -> OpRecord<u32> {
        OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Update {
                word: pid.get(),
                value,
            },
        }
    }

    fn scan(pid: ProcessId, inv: u64, res: u64, view: Vec<u32>) -> OpRecord<u32> {
        OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Scan { view },
        }
    }

    fn check(n: usize, ops: Vec<OpRecord<u32>>) -> Result<(), IntervalViolation> {
        check_intervals(&History::from_ops(n, n, 0, ops))
    }

    #[test]
    fn clean_sequential_history_passes() {
        assert_eq!(
            check(2, vec![update(P0, 0, 1, 5), scan(P1, 2, 3, vec![5, 0])]),
            Ok(())
        );
    }

    #[test]
    fn stale_view_after_completed_update_is_caught() {
        assert_eq!(
            check(2, vec![update(P0, 0, 1, 5), scan(P1, 2, 3, vec![0, 0])]),
            Err(IntervalViolation::EmptyWindow { scan: 1 })
        );
    }

    #[test]
    fn never_written_value_is_caught() {
        assert_eq!(
            check(2, vec![scan(P1, 0, 1, vec![99, 0])]),
            Err(IntervalViolation::UnknownValue { scan: 0, word: 0 })
        );
    }

    #[test]
    fn future_value_is_caught() {
        // Scan completes before the update is even invoked, yet returns it.
        assert_eq!(
            check(2, vec![scan(P1, 0, 1, vec![5, 0]), update(P0, 2, 3, 5)]),
            Err(IntervalViolation::EmptyWindow { scan: 0 })
        );
    }

    #[test]
    fn contradictory_scan_orders_are_caught() {
        // Updates run concurrently with both scans; one scan sees only the
        // first, the other only the second.
        let ops = vec![
            update(P0, 0, 100, 5),
            update(P1, 1, 101, 7),
            scan(P2, 2, 3, vec![5, 0, 0]),
            scan(P2, 4, 5, vec![0, 7, 0]),
        ];
        assert_eq!(
            check(3, ops),
            Err(IntervalViolation::IncomparableScans { a: 2, b: 3 })
        );
    }

    #[test]
    fn time_travel_between_scans_is_caught() {
        // Both views are individually fine (update still running), but the
        // second scan started after the first finished and saw less.
        let ops = vec![
            update(P0, 0, 100, 5),
            scan(P1, 1, 2, vec![5, 0, 0]),
            scan(P2, 3, 4, vec![0, 0, 0]),
        ];
        assert_eq!(
            check(3, ops),
            Err(IntervalViolation::StaleScan {
                earlier: 1,
                later: 2
            })
        );
    }

    #[test]
    fn concurrent_scan_may_miss_or_see_update() {
        for view in [vec![0, 0], vec![5, 0]] {
            assert_eq!(
                check(2, vec![update(P0, 0, 3, 5), scan(P1, 1, 2, view)]),
                Ok(())
            );
        }
    }

    #[test]
    fn pending_update_observed_is_fine() {
        let ops = vec![
            OpRecord {
                pid: P0,
                inv: 0,
                res: None,
                op: SnapOp::Update { word: 0, value: 9 },
            },
            scan(P1, 1, 2, vec![9, 0]),
        ];
        assert_eq!(check(2, ops), Ok(()));
    }

    #[test]
    fn duplicate_values_are_inapplicable_not_mischecked() {
        let ops = vec![update(P0, 0, 1, 5), update(P0, 2, 3, 5)];
        assert_eq!(
            check(1, ops),
            Err(IntervalViolation::DuplicateValue { word: 0 })
        );
    }

    #[test]
    fn overlapping_multiwriter_updates_are_inapplicable() {
        let ops = vec![
            OpRecord {
                pid: P0,
                inv: 0,
                res: Some(10),
                op: SnapOp::Update { word: 0, value: 1 },
            },
            OpRecord {
                pid: P1,
                inv: 5,
                res: Some(15),
                op: SnapOp::Update { word: 0, value: 2 },
            },
        ];
        let h = History::from_ops(2, 2, 0, ops);
        assert_eq!(
            check_intervals(&h),
            Err(IntervalViolation::OverlappingUpdates { word: 0 })
        );
    }

    #[test]
    fn empty_history_passes() {
        assert_eq!(check(1, vec![]), Ok(()));
    }
}
