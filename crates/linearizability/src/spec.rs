use std::fmt;
use std::hash::Hash;

use snapshot_registers::ProcessId;

use crate::SnapOp;

/// A deterministic sequential specification of a shared object, for the
/// Wing–Gong search.
///
/// `apply` returns the state after the operation **iff** the operation's
/// embedded result is what the sequential object would have produced;
/// otherwise `None` (the candidate linearization order is wrong).
pub trait SeqSpec {
    /// Object states (hashed for search memoization).
    type State: Clone + Eq + Hash + fmt::Debug;
    /// Operations, with results baked in.
    type Op;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` by `pid` to `state`.
    fn apply(&self, state: &Self::State, pid: ProcessId, op: &Self::Op) -> Option<Self::State>;
}

/// The sequential snapshot object: a vector of `words` values; `update`
/// overwrites one word, `scan` must return the vector exactly.
///
/// Setting `single_writer` additionally enforces that process `i` only
/// writes word `i` (the discipline of Sections 3–4).
#[derive(Clone, Debug)]
pub struct SnapshotSpec<V> {
    words: usize,
    init: V,
    single_writer: bool,
}

impl<V: Clone + Eq + Hash + fmt::Debug> SnapshotSpec<V> {
    /// A single-writer snapshot spec over `n` segments.
    pub fn single_writer(n: usize, init: V) -> Self {
        SnapshotSpec {
            words: n,
            init,
            single_writer: true,
        }
    }

    /// A multi-writer snapshot spec over `words` words.
    pub fn multi_writer(words: usize, init: V) -> Self {
        SnapshotSpec {
            words,
            init,
            single_writer: false,
        }
    }
}

impl<V: Clone + Eq + Hash + fmt::Debug> SeqSpec for SnapshotSpec<V> {
    type State = Vec<V>;
    type Op = SnapOp<V>;

    fn initial(&self) -> Vec<V> {
        vec![self.init.clone(); self.words]
    }

    fn apply(&self, state: &Vec<V>, pid: ProcessId, op: &SnapOp<V>) -> Option<Vec<V>> {
        match op {
            SnapOp::Update { word, value } => {
                if *word >= self.words || (self.single_writer && *word != pid.get()) {
                    return None;
                }
                let mut next = state.clone();
                next[*word] = value.clone();
                Some(next)
            }
            SnapOp::Scan { view } => {
                if view == state {
                    Some(state.clone())
                } else {
                    None
                }
            }
        }
    }
}

/// One read/write register operation with its result, for checking the
/// register substrate (e.g. [`MwmrFromSwmr`]) itself.
///
/// [`MwmrFromSwmr`]: snapshot_registers::MwmrFromSwmr
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterOp<V> {
    /// A read that returned `value`.
    Read {
        /// The value returned.
        value: V,
    },
    /// A write of `value`.
    Write {
        /// The value written.
        value: V,
    },
}

/// The sequential read/write register: writes overwrite, reads must return
/// the current value.
#[derive(Clone, Debug)]
pub struct RegisterSpec<V> {
    init: V,
}

impl<V: Clone + Eq + Hash + fmt::Debug> RegisterSpec<V> {
    /// A register spec with initial value `init`.
    pub fn new(init: V) -> Self {
        RegisterSpec { init }
    }
}

impl<V: Clone + Eq + Hash + fmt::Debug> SeqSpec for RegisterSpec<V> {
    type State = V;
    type Op = RegisterOp<V>;

    fn initial(&self) -> V {
        self.init.clone()
    }

    fn apply(&self, state: &V, _pid: ProcessId, op: &RegisterOp<V>) -> Option<V> {
        match op {
            RegisterOp::Write { value } => Some(value.clone()),
            RegisterOp::Read { value } => {
                if value == state {
                    Some(state.clone())
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn snapshot_scan_matches_exactly() {
        let spec = SnapshotSpec::single_writer(2, 0u8);
        let s0 = spec.initial();
        let s1 = spec
            .apply(&s0, P0, &SnapOp::Update { word: 0, value: 3 })
            .unwrap();
        assert!(spec
            .apply(&s1, P1, &SnapOp::Scan { view: vec![3, 0] })
            .is_some());
        assert!(spec
            .apply(&s1, P1, &SnapOp::Scan { view: vec![0, 0] })
            .is_none());
    }

    #[test]
    fn single_writer_discipline_is_enforced() {
        let spec = SnapshotSpec::single_writer(2, 0u8);
        let s0 = spec.initial();
        assert!(spec
            .apply(&s0, P1, &SnapOp::Update { word: 0, value: 1 })
            .is_none());
        let mw = SnapshotSpec::multi_writer(2, 0u8);
        assert!(mw
            .apply(&s0, P1, &SnapOp::Update { word: 0, value: 1 })
            .is_some());
    }

    #[test]
    fn register_reads_check_current_value() {
        let spec = RegisterSpec::new(0u8);
        let s0 = spec.initial();
        let s1 = spec
            .apply(&s0, P0, &RegisterOp::Write { value: 5 })
            .unwrap();
        assert!(spec
            .apply(&s1, P1, &RegisterOp::Read { value: 5 })
            .is_some());
        assert!(spec
            .apply(&s1, P1, &RegisterOp::Read { value: 0 })
            .is_none());
    }
}
