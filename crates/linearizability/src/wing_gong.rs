use std::collections::HashSet;
use std::fmt;

use snapshot_automata::{accepts, Sws, SwsAction};
use snapshot_registers::ProcessId;

use crate::{History, SeqSpec, SnapOp, SnapshotSpec};

/// One operation in Wing–Gong form: an interval plus the operation with
/// its result.
#[derive(Clone, Debug)]
pub struct WgOp<O> {
    /// Executing process.
    pub pid: ProcessId,
    /// Invocation timestamp.
    pub inv: u64,
    /// Response timestamp; `None` for pending operations, which *may* have
    /// taken effect and are linearized only if doing so helps.
    pub res: Option<u64>,
    /// The operation.
    pub op: O,
}

impl<O> WgOp<O> {
    fn res_or_max(&self) -> u64 {
        self.res.unwrap_or(u64::MAX)
    }
}

/// Result of a Wing–Gong linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WgResult {
    /// A valid linearization exists; `witness` lists operation indices in
    /// linearization order (pending operations may be absent).
    Linearizable {
        /// Indices into the checked op slice, in linearization order.
        witness: Vec<usize>,
    },
    /// No linearization exists: the history is **not** linearizable.
    NotLinearizable,
    /// The history exceeds the checker's operation limit (128).
    TooLarge {
        /// Number of operations in the offending history.
        len: usize,
    },
}

impl WgResult {
    /// True if a witness was found.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, WgResult::Linearizable { .. })
    }
}

const MAX_OPS: usize = 128;

/// Exhaustive linearizability check of `ops` against `spec` (Wing & Gong's
/// search, with memoization of failed `(linearized-set, state)` pairs).
///
/// Complete: returns [`WgResult::NotLinearizable`] **only if** no
/// linearization exists. Worst-case exponential — intended for histories of
/// up to a few dozen operations; larger histories go to
/// [`check_intervals`](crate::check_intervals).
pub fn check_linearizable<S: SeqSpec>(spec: &S, ops: &[WgOp<S::Op>]) -> WgResult {
    if ops.len() > MAX_OPS {
        return WgResult::TooLarge { len: ops.len() };
    }
    let complete_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.res.is_some())
        .fold(0u128, |m, (i, _)| m | (1 << i));

    let mut memo: HashSet<(u128, S::State)> = HashSet::new();
    let mut witness = Vec::new();
    if dfs(
        spec,
        ops,
        0,
        &spec.initial(),
        complete_mask,
        &mut memo,
        &mut witness,
    ) {
        WgResult::Linearizable { witness }
    } else {
        WgResult::NotLinearizable
    }
}

fn dfs<S: SeqSpec>(
    spec: &S,
    ops: &[WgOp<S::Op>],
    mask: u128,
    state: &S::State,
    complete_mask: u128,
    memo: &mut HashSet<(u128, S::State)>,
    witness: &mut Vec<usize>,
) -> bool {
    if mask & complete_mask == complete_mask {
        return true;
    }
    if memo.contains(&(mask, state.clone())) {
        return false;
    }
    for i in 0..ops.len() {
        if mask & (1 << i) != 0 {
            continue;
        }
        // Real-time order: `i` may be next only if no other unlinearized
        // operation responded before `i` was invoked.
        let precedes_ok = (0..ops.len())
            .all(|j| j == i || mask & (1 << j) != 0 || ops[i].inv < ops[j].res_or_max());
        if !precedes_ok {
            continue;
        }
        if let Some(next) = spec.apply(state, ops[i].pid, &ops[i].op) {
            witness.push(i);
            if dfs(
                spec,
                ops,
                mask | (1 << i),
                &next,
                complete_mask,
                memo,
                witness,
            ) {
                return true;
            }
            witness.pop();
        }
    }
    memo.insert((mask, state.clone()));
    false
}

/// Checks a recorded snapshot [`History`] for linearizability against the
/// appropriate (single- or multi-writer) sequential snapshot spec.
pub fn check_history<V: Clone + Eq + std::hash::Hash + fmt::Debug>(
    history: &History<V>,
) -> WgResult {
    let spec = if history.is_single_writer() {
        SnapshotSpec::single_writer(history.words(), history.init().clone())
    } else {
        SnapshotSpec::multi_writer(history.words(), history.init().clone())
    };
    let ops: Vec<WgOp<SnapOp<V>>> = history
        .ops()
        .iter()
        .map(|o| WgOp {
            pid: o.pid,
            inv: o.inv,
            res: o.res,
            op: o.op.clone(),
        })
        .collect();
    check_linearizable(&spec, &ops)
}

/// Cross-validates a Wing–Gong witness against the paper's own correctness
/// definition: reconstructs the full behavior — `Request`/`Return` events
/// in timestamp order with the internal `Update`/`Scan` actions inserted at
/// the witnessed serialization points — and runs it through the [`Sws`]
/// automaton of Figure 1.
///
/// Only meaningful for single-writer histories; returns `false` for
/// multi-writer ones.
pub fn witness_accepted_by_sws<V: Clone + Eq + fmt::Debug>(
    history: &History<V>,
    witness: &[usize],
) -> bool {
    if !history.is_single_writer() {
        return false;
    }
    let ops = history.ops();
    let internal = |i: usize| -> SwsAction<V> {
        let o = &ops[i];
        match &o.op {
            SnapOp::Update { value, .. } => SwsAction::Update {
                pid: o.pid,
                value: value.clone(),
            },
            SnapOp::Scan { view } => SwsAction::Scan {
                pid: o.pid,
                view: view.clone(),
            },
        }
    };

    // Boundary events in timestamp order.
    #[derive(Clone, Copy)]
    enum Boundary {
        Inv(usize),
        Res(usize),
    }
    let mut events: Vec<(u64, Boundary)> = Vec::new();
    for (i, o) in ops.iter().enumerate() {
        events.push((o.inv, Boundary::Inv(i)));
        if let Some(r) = o.res {
            events.push((r, Boundary::Res(i)));
        }
    }
    events.sort_by_key(|(t, _)| *t);

    // Witness position per op (usize::MAX = not linearized).
    let mut pos = vec![usize::MAX; ops.len()];
    for (k, &i) in witness.iter().enumerate() {
        pos[i] = k;
    }

    let mut actions: Vec<SwsAction<V>> = Vec::new();
    let mut inv_seen = vec![false; ops.len()];
    let mut next_internal = 0usize;

    let flush_up_to = |k_incl: usize,
                       actions: &mut Vec<SwsAction<V>>,
                       inv_seen: &[bool],
                       next_internal: &mut usize|
     -> bool {
        while *next_internal <= k_incl {
            let op_idx = witness[*next_internal];
            if !inv_seen[op_idx] {
                return false; // serialized before invocation: invalid witness
            }
            actions.push(internal(op_idx));
            *next_internal += 1;
        }
        true
    };

    for (_, b) in events {
        match b {
            Boundary::Inv(i) => {
                inv_seen[i] = true;
                let o = &ops[i];
                actions.push(match &o.op {
                    SnapOp::Update { value, .. } => SwsAction::UpdateRequest {
                        pid: o.pid,
                        value: value.clone(),
                    },
                    SnapOp::Scan { .. } => SwsAction::ScanRequest { pid: o.pid },
                });
            }
            Boundary::Res(i) => {
                // Everything serialized at or before this op must take
                // effect before it returns.
                if pos[i] == usize::MAX {
                    return false; // a completed op missing from the witness
                }
                if !flush_up_to(pos[i], &mut actions, &inv_seen, &mut next_internal) {
                    return false;
                }
                let o = &ops[i];
                actions.push(match &o.op {
                    SnapOp::Update { .. } => SwsAction::UpdateReturn { pid: o.pid },
                    SnapOp::Scan { view } => SwsAction::ScanReturn {
                        pid: o.pid,
                        view: view.clone(),
                    },
                });
            }
        }
    }
    // Pending ops linearized after the last response.
    if !witness.is_empty()
        && !flush_up_to(
            witness.len() - 1,
            &mut actions,
            &inv_seen,
            &mut next_internal,
        )
    {
        return false;
    }

    let sws = Sws::new(history.processes(), history.init().clone());
    accepts(&sws, &actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpRecord;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn update(pid: ProcessId, inv: u64, res: u64, value: u32) -> OpRecord<u32> {
        OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Update {
                word: pid.get(),
                value,
            },
        }
    }

    fn scan(pid: ProcessId, inv: u64, res: u64, view: Vec<u32>) -> OpRecord<u32> {
        OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Scan { view },
        }
    }

    fn check(n: usize, ops: Vec<OpRecord<u32>>) -> WgResult {
        check_history(&History::from_ops(n, n, 0, ops))
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check(2, vec![]).is_linearizable());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let r = check(2, vec![update(P0, 0, 1, 5), scan(P1, 2, 3, vec![5, 0])]);
        assert_eq!(
            r,
            WgResult::Linearizable {
                witness: vec![0, 1]
            }
        );
    }

    #[test]
    fn stale_scan_after_update_is_rejected() {
        // Scan starts after the update completed but misses its value.
        let r = check(2, vec![update(P0, 0, 1, 5), scan(P1, 2, 3, vec![0, 0])]);
        assert_eq!(r, WgResult::NotLinearizable);
    }

    #[test]
    fn concurrent_scan_may_or_may_not_see_update() {
        for view in [vec![5, 0], vec![0, 0]] {
            let r = check(2, vec![update(P0, 0, 3, 5), scan(P1, 1, 2, view)]);
            assert!(r.is_linearizable());
        }
    }

    #[test]
    fn scans_must_be_mutually_consistent() {
        // Two scans concurrent with two updates observe them in opposite
        // orders: {5,0} then {0,7} is impossible in any serialization.
        let ops = vec![
            update(P0, 0, 10, 5),
            update(P1, 1, 11, 7),
            scan(P2, 2, 3, vec![5, 0, 0]),
            scan(P2, 4, 5, vec![0, 7, 0]),
        ];
        assert_eq!(check(3, ops), WgResult::NotLinearizable);
    }

    #[test]
    fn pending_update_may_be_observed() {
        let ops = vec![
            OpRecord {
                pid: P0,
                inv: 0,
                res: None,
                op: SnapOp::Update { word: 0, value: 9 },
            },
            scan(P1, 1, 2, vec![9, 0]),
        ];
        assert!(check(2, ops).is_linearizable());
    }

    #[test]
    fn pending_update_may_also_never_happen() {
        let ops = vec![
            OpRecord {
                pid: P0,
                inv: 0,
                res: None,
                op: SnapOp::Update { word: 0, value: 9 },
            },
            scan(P1, 1, 2, vec![0, 0]),
        ];
        assert!(check(2, ops).is_linearizable());
    }

    #[test]
    fn real_time_order_is_respected() {
        // Update finishes before scan starts; scan sees it; then a second
        // scan must not travel back in time.
        let ops = vec![
            update(P0, 0, 1, 1),
            scan(P1, 2, 3, vec![1, 0]),
            update(P0, 4, 5, 2),
            scan(P1, 6, 7, vec![1, 0]), // stale: must see 2
        ];
        assert_eq!(check(2, ops), WgResult::NotLinearizable);
    }

    #[test]
    fn witness_is_validated_by_the_sws_automaton() {
        let ops = vec![
            update(P0, 0, 3, 5),
            scan(P1, 1, 2, vec![0, 0]), // concurrent, misses it
            scan(P1, 4, 5, vec![5, 0]),
        ];
        let h = History::from_ops(2, 2, 0, ops);
        match check_history(&h) {
            WgResult::Linearizable { witness } => {
                assert!(witness_accepted_by_sws(&h, &witness));
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn bogus_witness_is_rejected_by_the_sws_automaton() {
        let ops = vec![update(P0, 0, 1, 5), scan(P1, 2, 3, vec![5, 0])];
        let h = History::from_ops(2, 2, 0, ops);
        // Reversed order: scan would have to see 5 before it was written.
        assert!(!witness_accepted_by_sws(&h, &[1, 0]));
    }

    #[test]
    fn oversized_histories_are_refused_not_mischecked() {
        let ops: Vec<OpRecord<u32>> = (0..130)
            .map(|k| update(P0, 2 * k, 2 * k + 1, k as u32))
            .collect();
        let h = History::from_ops(1, 1, 0, ops);
        assert_eq!(check_history(&h), WgResult::TooLarge { len: 130 });
    }

    #[test]
    fn multi_writer_histories_use_the_mw_spec() {
        // P1 writes word 0 (illegal in SW, legal in MW).
        let ops = vec![
            OpRecord {
                pid: P1,
                inv: 0,
                res: Some(1),
                op: SnapOp::Update { word: 0, value: 3 },
            },
            scan(P0, 2, 3, vec![3, 0]),
        ];
        let h = History::from_ops(2, 2, 0, ops);
        assert!(!h.is_single_writer());
        assert!(check_history(&h).is_linearizable());
    }
}
