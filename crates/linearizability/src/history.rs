use std::fmt;

use snapshot_registers::ProcessId;

/// One snapshot-object operation with its argument/result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapOp<V> {
    /// `update(word, value)`. In a single-writer history `word == pid`.
    Update {
        /// The memory word written.
        word: usize,
        /// The value written.
        value: V,
    },
    /// `scan()` returning `view` (one entry per word).
    Scan {
        /// The returned vector.
        view: Vec<V>,
    },
}

/// One recorded operation execution: who, when (invocation/response
/// timestamps from a shared logical clock), and what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord<V> {
    /// The executing process.
    pub pid: ProcessId,
    /// Invocation timestamp (taken just before the operation's first
    /// shared-memory step).
    pub inv: u64,
    /// Response timestamp (taken just after the operation's last
    /// shared-memory step); `None` for operations that never completed
    /// (crashed / aborted processes).
    pub res: Option<u64>,
    /// The operation with its argument or result.
    pub op: SnapOp<V>,
}

impl<V> OpRecord<V> {
    /// True if the operation ran to completion.
    pub fn is_complete(&self) -> bool {
        self.res.is_some()
    }

    /// Response timestamp, with incomplete operations extending to the end
    /// of time.
    pub fn res_or_max(&self) -> u64 {
        self.res.unwrap_or(u64::MAX)
    }
}

/// A complete concurrent history of one snapshot object.
///
/// Obtained from a [`Recorder`](crate::Recorder); consumed by the checkers.
#[derive(Clone)]
pub struct History<V> {
    n: usize,
    words: usize,
    init: V,
    ops: Vec<OpRecord<V>>,
}

impl<V: Clone> History<V> {
    /// Assembles a history directly (tests and generators; normal capture
    /// goes through [`Recorder`](crate::Recorder)).
    ///
    /// Operations are sorted by invocation timestamp.
    ///
    /// # Panics
    ///
    /// Panics if an operation's word index or view length is inconsistent
    /// with `words`, or if a pid is `>= n`.
    pub fn from_ops(n: usize, words: usize, init: V, mut ops: Vec<OpRecord<V>>) -> Self {
        for op in &ops {
            assert!(op.pid.get() < n, "operation by out-of-range process");
            match &op.op {
                SnapOp::Update { word, .. } => {
                    assert!(*word < words, "update to out-of-range word {word}")
                }
                SnapOp::Scan { view } => assert_eq!(
                    view.len(),
                    words,
                    "scan view length {} != word count {words}",
                    view.len()
                ),
            }
        }
        ops.sort_by_key(|o| o.inv);
        History {
            n,
            words,
            init,
            ops,
        }
    }
}

impl<V> History<V> {
    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Number of memory words (equals `processes` for single-writer
    /// histories).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The initial value of every word.
    pub fn init(&self) -> &V {
        &self.init
    }

    /// The recorded operations, ordered by invocation timestamp.
    pub fn ops(&self) -> &[OpRecord<V>] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True if every update targets the updater's own segment — the
    /// single-writer discipline required by [`Sws`].
    ///
    /// [`Sws`]: snapshot_automata::Sws
    pub fn is_single_writer(&self) -> bool {
        self.n == self.words
            && self.ops.iter().all(|o| match &o.op {
                SnapOp::Update { word, .. } => *word == o.pid.get(),
                SnapOp::Scan { .. } => true,
            })
    }
}

impl<V: fmt::Debug> fmt::Debug for History<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("History")
            .field("processes", &self.n)
            .field("words", &self.words)
            .field("operations", &self.ops.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ops_sorts_by_invocation() {
        let ops = vec![
            OpRecord {
                pid: ProcessId::new(0),
                inv: 10,
                res: Some(11),
                op: SnapOp::Update { word: 0, value: 2 },
            },
            OpRecord {
                pid: ProcessId::new(0),
                inv: 2,
                res: Some(3),
                op: SnapOp::Update { word: 0, value: 1 },
            },
        ];
        let h = History::from_ops(1, 1, 0, ops);
        assert_eq!(h.ops()[0].inv, 2);
        assert_eq!(h.len(), 2);
        assert!(h.is_single_writer());
    }

    #[test]
    fn multi_writer_histories_are_detected() {
        let ops = vec![OpRecord {
            pid: ProcessId::new(1),
            inv: 0,
            res: Some(1),
            op: SnapOp::Update { word: 0, value: 9 },
        }];
        let h = History::from_ops(2, 2, 0, ops);
        assert!(!h.is_single_writer());
    }

    #[test]
    #[should_panic(expected = "view length")]
    fn wrong_view_length_is_rejected() {
        let ops = vec![OpRecord {
            pid: ProcessId::new(0),
            inv: 0,
            res: Some(1),
            op: SnapOp::Scan { view: vec![0] },
        }];
        let _ = History::from_ops(1, 2, 0, ops);
    }

    #[test]
    fn incomplete_ops_extend_to_max() {
        let op = OpRecord {
            pid: ProcessId::new(0),
            inv: 5,
            res: None,
            op: SnapOp::Update { word: 0, value: 1 },
        };
        assert!(!op.is_complete());
        assert_eq!(op.res_or_max(), u64::MAX);
    }
}
