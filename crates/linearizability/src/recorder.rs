use std::fmt;

use parking_lot::Mutex;
use snapshot_obs::Clock;
use snapshot_registers::ProcessId;

use crate::{History, OpRecord, SnapOp};

/// Concurrent capture of a snapshot-object history.
///
/// Threads bracket each operation with [`Recorder::begin`] (immediately
/// before invoking it) and one of the `end_*` methods (immediately after it
/// returns). Timestamps come from one shared logical clock
/// (`fetch_add`), so the recorded intervals are sub-intervals of the real
/// operation intervals — any linearization of the recorded history is a
/// linearization of the real one and vice versa, because all the
/// operation's shared-memory effects happen between the two timestamps.
///
/// Operations that never complete (a crashed process) are registered with
/// [`Recorder::pending_update`] / [`Recorder::pending_scan`] so the
/// checkers know an effect may or may not have taken place.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Recorder<V> {
    n: usize,
    words: usize,
    init: V,
    clock: Clock,
    ops: Mutex<Vec<OpRecord<V>>>,
}

impl<V: Clone> Recorder<V> {
    /// Creates a recorder for `n` processes over `words` memory words all
    /// initialized to `init` (use `words == n` for single-writer objects).
    pub fn new(n: usize, words: usize, init: V) -> Self {
        Self::with_clock(n, words, init, Clock::new())
    }

    /// Like [`Recorder::new`], but timestamps come from the given shared
    /// [`Clock`]. Pass a trace's clock (see `snapshot_obs::Trace::clock`)
    /// to put operation intervals and trace events on one timestamp axis —
    /// the prerequisite for [`render_annotated_timeline`].
    ///
    /// [`render_annotated_timeline`]: crate::render_annotated_timeline
    pub fn with_clock(n: usize, words: usize, init: V, clock: Clock) -> Self {
        Recorder {
            n,
            words,
            init,
            clock,
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Takes an invocation timestamp. Call immediately before invoking the
    /// operation.
    pub fn begin(&self) -> u64 {
        self.clock.tick()
    }

    /// Records a completed `update(word, value)` by `pid` invoked at `inv`.
    pub fn end_update(&self, pid: ProcessId, word: usize, value: V, inv: u64) {
        let res = self.clock.tick();
        self.push(OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Update { word, value },
        });
    }

    /// Records a completed `scan()` by `pid` that returned `view`.
    pub fn end_scan(&self, pid: ProcessId, view: Vec<V>, inv: u64) {
        let res = self.clock.tick();
        self.push(OpRecord {
            pid,
            inv,
            res: Some(res),
            op: SnapOp::Scan { view },
        });
    }

    /// Registers an update that was invoked at `inv` but never returned.
    pub fn pending_update(&self, pid: ProcessId, word: usize, value: V, inv: u64) {
        self.push(OpRecord {
            pid,
            inv,
            res: None,
            op: SnapOp::Update { word, value },
        });
    }

    /// Registers a scan that was invoked at `inv` but never returned.
    ///
    /// A pending scan has no observable result, so it carries an empty
    /// placeholder view and is ignored by the checkers' result matching —
    /// it is recorded for completeness of the interval structure.
    pub fn pending_scan(&self, pid: ProcessId, inv: u64) {
        // A scan has no effect on the object state; a pending scan can
        // always be linearized (or dropped) trivially, so we simply do not
        // record it.
        let _ = (pid, inv);
    }

    /// Finalizes into an immutable [`History`].
    ///
    /// # Panics
    ///
    /// Panics if any recorded operation is malformed (out-of-range pid or
    /// word, wrong view length) — see [`History::from_ops`].
    pub fn finish(self) -> History<V> {
        History::from_ops(self.n, self.words, self.init, self.ops.into_inner())
    }

    fn push(&self, op: OpRecord<V>) {
        self.ops.lock().push(op);
    }
}

impl<V> fmt::Debug for Recorder<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("processes", &self.n)
            .field("words", &self.words)
            .field("recorded", &self.ops.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let r = Recorder::new(1, 1, 0u8);
        let t1 = r.begin();
        r.end_update(ProcessId::new(0), 0, 1, t1);
        let t2 = r.begin();
        r.end_scan(ProcessId::new(0), vec![1], t2);
        let h = r.finish();
        assert_eq!(h.len(), 2);
        let ops = h.ops();
        assert!(ops[0].inv < ops[0].res.unwrap());
        assert!(ops[0].res.unwrap() < ops[1].inv);
    }

    #[test]
    fn pending_updates_are_kept_incomplete() {
        let r = Recorder::new(2, 2, 0u8);
        let t = r.begin();
        r.pending_update(ProcessId::new(1), 1, 9, t);
        let h = r.finish();
        assert_eq!(h.len(), 1);
        assert!(!h.ops()[0].is_complete());
    }

    #[test]
    fn concurrent_recording_from_many_threads() {
        let r = Recorder::new(4, 4, 0u32);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    let pid = ProcessId::new(t);
                    for k in 0..100 {
                        let inv = r.begin();
                        r.end_update(pid, t, k, inv);
                    }
                });
            }
        });
        let h = r.finish();
        assert_eq!(h.len(), 400);
        // `finish` sorts by invocation.
        assert!(h.ops().windows(2).all(|w| w[0].inv <= w[1].inv));
    }
}
