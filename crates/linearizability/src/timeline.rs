use std::fmt::Write as _;

use snapshot_obs::TraceEvent;

use crate::{History, OpRecord, SnapOp};

/// Renders a history as a human-readable timeline, one line per
/// operation, ordered by invocation — the first thing you want when a
/// checker reports a violation.
///
/// Interval endpoints are the recorder's logical timestamps; `…` marks an
/// operation that never completed.
///
/// # Example
///
/// ```
/// use snapshot_lin::{render_timeline, Recorder};
/// use snapshot_registers::ProcessId;
///
/// let rec = Recorder::new(2, 2, 0u32);
/// let t = rec.begin();
/// rec.end_update(ProcessId::new(0), 0, 5, t);
/// let t = rec.begin();
/// rec.end_scan(ProcessId::new(1), vec![5, 0], t);
/// let text = render_timeline(&rec.finish());
/// assert!(text.contains("update"));
/// assert!(text.contains("scan"));
/// ```
pub fn render_timeline<V: std::fmt::Debug>(history: &History<V>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "history: {} processes, {} words, {} operations",
        history.processes(),
        history.words(),
        history.len()
    );
    for op in history.ops() {
        out.push_str(&op_line(op));
        out.push('\n');
    }
    out
}

fn op_line<V: std::fmt::Debug>(op: &OpRecord<V>) -> String {
    let span = match op.res {
        Some(res) => format!("[{:>4}, {:>4}]", op.inv, res),
        None => format!("[{:>4},    …]", op.inv),
    };
    let what = match &op.op {
        SnapOp::Update { word, value } => format!("update(word {word}, {value:?})"),
        SnapOp::Scan { view } => format!("scan -> {view:?}"),
    };
    format!("  {span} {:<4} {what}", op.pid.to_string())
}

/// Renders a history interleaved with the trace events that produced it,
/// merged into one sequence ordered by timestamp.
///
/// Only meaningful when the trace and the [`Recorder`] shared one
/// [`Clock`]: operation interval endpoints and event sequence numbers then
/// live on a single axis, so the dump shows *which* double-collect rounds,
/// handshake flips and borrow decisions happened inside each failed
/// operation's interval. Operation lines use the same format as
/// [`render_timeline`] (placed at their invocation timestamp); event lines
/// are indented underneath with a `·` marker.
///
/// [`Recorder`]: crate::Recorder
/// [`Clock`]: snapshot_obs::Clock
pub fn render_annotated_timeline<V: std::fmt::Debug>(
    history: &History<V>,
    events: &[TraceEvent],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "history: {} processes, {} words, {} operations, {} trace events",
        history.processes(),
        history.words(),
        history.len(),
        events.len()
    );
    // Merge by timestamp; at equal timestamps the operation line comes
    // first (an op's invocation precedes anything it then emitted).
    let mut ops = history.ops().iter().peekable();
    let mut evs = events.iter().peekable();
    loop {
        match (ops.peek(), evs.peek()) {
            (Some(op), Some(ev)) => {
                if op.inv <= ev.seq {
                    out.push_str(&op_line(op));
                    out.push('\n');
                    ops.next();
                } else {
                    let _ = writeln!(out, "     · {:>4}    {:<4} {}", ev.seq, format!("P{}", ev.pid), ev.event);
                    evs.next();
                }
            }
            (Some(op), None) => {
                out.push_str(&op_line(op));
                out.push('\n');
                ops.next();
            }
            (None, Some(ev)) => {
                let _ = writeln!(out, "     · {:>4}    {:<4} {}", ev.seq, format!("P{}", ev.pid), ev.event);
                evs.next();
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpRecord, SnapOp};
    use snapshot_registers::ProcessId;

    #[test]
    fn renders_complete_and_pending_operations() {
        let ops = vec![
            OpRecord {
                pid: ProcessId::new(0),
                inv: 0,
                res: Some(3),
                op: SnapOp::Update { word: 0, value: 7 },
            },
            OpRecord {
                pid: ProcessId::new(1),
                inv: 1,
                res: None,
                op: SnapOp::Update { word: 1, value: 9 },
            },
            OpRecord {
                pid: ProcessId::new(0),
                inv: 4,
                res: Some(5),
                op: SnapOp::Scan { view: vec![7, 0] },
            },
        ];
        let history = History::from_ops(2, 2, 0, ops);
        let text = render_timeline(&history);
        assert!(text.contains("2 processes, 2 words, 3 operations"));
        assert!(text.contains("update(word 0, 7)"));
        assert!(text.contains("…"), "pending op must render an open interval");
        assert!(text.contains("scan -> [7, 0]"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_history_renders_header_only() {
        let history: History<u8> = History::from_ops(1, 1, 0, vec![]);
        let text = render_timeline(&history);
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn annotated_timeline_interleaves_events_by_timestamp() {
        use snapshot_obs::{Event, RoundOutcome, TraceEvent};

        let ops = vec![
            OpRecord {
                pid: ProcessId::new(0),
                inv: 0,
                res: Some(2),
                op: SnapOp::Update { word: 0, value: 7 },
            },
            OpRecord {
                pid: ProcessId::new(1),
                inv: 3,
                res: Some(6),
                op: SnapOp::Scan { view: vec![7, 0] },
            },
        ];
        let history = History::from_ops(2, 2, 0, ops);
        let events = vec![
            TraceEvent { seq: 1, pid: 0, event: Event::ToggleFlip { word: 0, toggle: true } },
            TraceEvent {
                seq: 4,
                pid: 1,
                event: Event::RoundEnd {
                    algo: snapshot_obs::Algo::BoundedSw,
                    round: 1,
                    outcome: RoundOutcome::Clean,
                },
            },
        ];
        let text = render_annotated_timeline(&history, &events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 2 ops + 2 events:\n{text}");
        assert!(lines[0].contains("2 operations, 2 trace events"));
        assert!(lines[1].contains("update(word 0, 7)"));
        assert!(lines[2].contains("toggle_flip"), "event at seq 1 follows the op invoked at 0");
        assert!(lines[3].contains("scan -> [7, 0]"));
        assert!(lines[4].contains("round_end"));
    }
}
