use std::fmt::Write as _;

use crate::{History, SnapOp};

/// Renders a history as a human-readable timeline, one line per
/// operation, ordered by invocation — the first thing you want when a
/// checker reports a violation.
///
/// Interval endpoints are the recorder's logical timestamps; `…` marks an
/// operation that never completed.
///
/// # Example
///
/// ```
/// use snapshot_lin::{render_timeline, Recorder};
/// use snapshot_registers::ProcessId;
///
/// let rec = Recorder::new(2, 2, 0u32);
/// let t = rec.begin();
/// rec.end_update(ProcessId::new(0), 0, 5, t);
/// let t = rec.begin();
/// rec.end_scan(ProcessId::new(1), vec![5, 0], t);
/// let text = render_timeline(&rec.finish());
/// assert!(text.contains("update"));
/// assert!(text.contains("scan"));
/// ```
pub fn render_timeline<V: std::fmt::Debug>(history: &History<V>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "history: {} processes, {} words, {} operations",
        history.processes(),
        history.words(),
        history.len()
    );
    for op in history.ops() {
        let span = match op.res {
            Some(res) => format!("[{:>4}, {:>4}]", op.inv, res),
            None => format!("[{:>4},    …]", op.inv),
        };
        let what = match &op.op {
            SnapOp::Update { word, value } => {
                format!("update(word {word}, {value:?})")
            }
            SnapOp::Scan { view } => format!("scan -> {view:?}"),
        };
        let _ = writeln!(out, "  {span} {:<4} {what}", op.pid.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpRecord, SnapOp};
    use snapshot_registers::ProcessId;

    #[test]
    fn renders_complete_and_pending_operations() {
        let ops = vec![
            OpRecord {
                pid: ProcessId::new(0),
                inv: 0,
                res: Some(3),
                op: SnapOp::Update { word: 0, value: 7 },
            },
            OpRecord {
                pid: ProcessId::new(1),
                inv: 1,
                res: None,
                op: SnapOp::Update { word: 1, value: 9 },
            },
            OpRecord {
                pid: ProcessId::new(0),
                inv: 4,
                res: Some(5),
                op: SnapOp::Scan { view: vec![7, 0] },
            },
        ];
        let history = History::from_ops(2, 2, 0, ops);
        let text = render_timeline(&history);
        assert!(text.contains("2 processes, 2 words, 3 operations"));
        assert!(text.contains("update(word 0, 7)"));
        assert!(text.contains("…"), "pending op must render an open interval");
        assert!(text.contains("scan -> [7, 0]"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_history_renders_header_only() {
        let history: History<u8> = History::from_ops(1, 1, 0, vec![]);
        let text = render_timeline(&history);
        assert_eq!(text.lines().count(), 1);
    }
}
