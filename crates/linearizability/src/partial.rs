//! Partial-scan operations and the projected sequential spec.
//!
//! The service layer's `scan_subset` returns an instantaneous picture of
//! a *subset* of segments. Checking such histories needs a spec whose
//! scan operation compares only the projection of the sequential state
//! onto the requested segments — [`ProjectedSnapshotSpec`] — while
//! updates and full scans behave exactly as in
//! [`SnapshotSpec`](crate::SnapshotSpec). The atomicity requirement is
//! unchanged: a `ScanSubset` must match the projection of *one* state in
//! the linearization order, so a partial view stitched from two different
//! states is still rejected.

use std::fmt;
use std::hash::Hash;

use snapshot_registers::ProcessId;

use crate::{check_linearizable, SeqSpec, WgOp, WgResult};

/// One snapshot operation in a history that may contain partial scans.
///
/// `Update` and `Scan` mirror [`SnapOp`](crate::SnapOp); `ScanSubset`
/// carries the requested segment indices (in the canonical strictly
/// increasing order the service returns) alongside the values observed
/// for exactly those segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartialOp<V> {
    /// A write of `value` to `word`.
    Update {
        /// The segment written.
        word: usize,
        /// The value written.
        value: V,
    },
    /// A full scan that returned `view`.
    Scan {
        /// The observed view over all segments.
        view: Vec<V>,
    },
    /// A partial scan over `segments` that returned `view`
    /// (`view[k]` is the observed value of `segments[k]`).
    ScanSubset {
        /// The requested segment indices, strictly increasing.
        segments: Vec<usize>,
        /// The observed values, one per requested segment.
        view: Vec<V>,
    },
}

/// The sequential snapshot spec extended with projected scans.
///
/// A `ScanSubset { segments, view }` is legal in a state `s` iff
/// `view[k] == s[segments[k]]` for every `k` — the scan is an
/// instantaneous picture of the projection of `s` onto `segments`.
/// Malformed operations (length mismatch, out-of-range or non-increasing
/// segment lists) never apply, so a history containing one is reported
/// not linearizable rather than silently accepted.
#[derive(Clone, Debug)]
pub struct ProjectedSnapshotSpec<V> {
    words: usize,
    init: V,
    single_writer: bool,
}

impl<V: Clone + Eq + Hash + fmt::Debug> ProjectedSnapshotSpec<V> {
    /// A single-writer projected spec over `n` segments.
    pub fn single_writer(n: usize, init: V) -> Self {
        ProjectedSnapshotSpec { words: n, init, single_writer: true }
    }

    /// A multi-writer projected spec over `words` words.
    pub fn multi_writer(words: usize, init: V) -> Self {
        ProjectedSnapshotSpec { words, init, single_writer: false }
    }
}

impl<V: Clone + Eq + Hash + fmt::Debug> SeqSpec for ProjectedSnapshotSpec<V> {
    type State = Vec<V>;
    type Op = PartialOp<V>;

    fn initial(&self) -> Vec<V> {
        vec![self.init.clone(); self.words]
    }

    fn apply(&self, state: &Vec<V>, pid: ProcessId, op: &PartialOp<V>) -> Option<Vec<V>> {
        match op {
            PartialOp::Update { word, value } => {
                if *word >= self.words || (self.single_writer && *word != pid.get()) {
                    return None;
                }
                let mut next = state.clone();
                next[*word] = value.clone();
                Some(next)
            }
            PartialOp::Scan { view } => {
                if view == state {
                    Some(state.clone())
                } else {
                    None
                }
            }
            PartialOp::ScanSubset { segments, view } => {
                if segments.len() != view.len()
                    || segments.windows(2).any(|w| w[0] >= w[1])
                    || segments.last().is_some_and(|&s| s >= self.words)
                {
                    return None;
                }
                if segments.iter().zip(view).all(|(&s, v)| state[s] == *v) {
                    Some(state.clone())
                } else {
                    None
                }
            }
        }
    }
}

/// Wing–Gong check of a partial-scan history against the projected spec.
///
/// Convenience wrapper mirroring [`check_history`](crate::check_history)
/// for histories assembled as [`WgOp`]`<`[`PartialOp`]`>` (the service
/// tests build these directly from a shared clock).
pub fn check_partial_history<V: Clone + Eq + Hash + fmt::Debug>(
    words: usize,
    init: V,
    single_writer: bool,
    ops: &[WgOp<PartialOp<V>>],
) -> WgResult {
    let spec = if single_writer {
        ProjectedSnapshotSpec::single_writer(words, init)
    } else {
        ProjectedSnapshotSpec::multi_writer(words, init)
    };
    check_linearizable(&spec, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    fn op<V>(pid: ProcessId, inv: u64, res: u64, op: PartialOp<V>) -> WgOp<PartialOp<V>> {
        WgOp { pid, inv, res: Some(res), op }
    }

    #[test]
    fn projected_scan_checks_only_its_segments() {
        let spec = ProjectedSnapshotSpec::single_writer(3, 0u8);
        let s = vec![1, 2, 3];
        let good = PartialOp::ScanSubset { segments: vec![0, 2], view: vec![1, 3] };
        let bad = PartialOp::ScanSubset { segments: vec![0, 2], view: vec![1, 2] };
        assert!(spec.apply(&s, P1, &good).is_some());
        assert!(spec.apply(&s, P1, &bad).is_none());
    }

    #[test]
    fn malformed_subsets_never_apply() {
        let spec = ProjectedSnapshotSpec::single_writer(3, 0u8);
        let s = spec.initial();
        for bad in [
            PartialOp::ScanSubset { segments: vec![0, 0], view: vec![0, 0] }, // duplicate
            PartialOp::ScanSubset { segments: vec![2, 1], view: vec![0, 0] }, // unsorted
            PartialOp::ScanSubset { segments: vec![3], view: vec![0] },       // out of range
            PartialOp::ScanSubset { segments: vec![0], view: vec![0, 0] },    // length mismatch
        ] {
            assert!(spec.apply(&s, P0, &bad).is_none(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn sequential_partial_history_is_linearizable() {
        let ops = vec![
            op(P0, 0, 1, PartialOp::Update { word: 0, value: 5u8 }),
            op(P1, 2, 3, PartialOp::ScanSubset { segments: vec![0], view: vec![5] }),
            op(P1, 4, 5, PartialOp::Scan { view: vec![5, 0] }),
        ];
        assert!(check_partial_history(2, 0u8, true, &ops).is_linearizable());
    }

    #[test]
    fn stale_partial_scan_is_rejected() {
        // The subset scan starts after the update completed but misses it.
        let ops = vec![
            op(P0, 0, 1, PartialOp::Update { word: 0, value: 5u8 }),
            op(P1, 2, 3, PartialOp::ScanSubset { segments: vec![0], view: vec![0] }),
        ];
        assert_eq!(check_partial_history(2, 0u8, true, &ops), WgResult::NotLinearizable);
    }

    #[test]
    fn stitched_partial_views_are_rejected() {
        // P0 keeps words 0 and 1 equal (writes both to k sequentially, with
        // the multi-writer spec); a subset scan observing (old, new) after
        // both writes completed is a stitch of two states.
        let ops = vec![
            op(P0, 0, 1, PartialOp::Update { word: 0, value: 1u8 }),
            op(P0, 2, 3, PartialOp::Update { word: 1, value: 1u8 }),
            op(P1, 4, 5, PartialOp::ScanSubset { segments: vec![0, 1], view: vec![0, 1] }),
        ];
        assert_eq!(check_partial_history(2, 0u8, false, &ops), WgResult::NotLinearizable);
    }

    #[test]
    fn concurrent_partial_scan_may_or_may_not_see_update() {
        for seen in [0u8, 5] {
            let ops = vec![
                op(P0, 0, 3, PartialOp::Update { word: 0, value: 5u8 }),
                op(P1, 1, 2, PartialOp::ScanSubset { segments: vec![0], view: vec![seen] }),
            ];
            assert!(check_partial_history(2, 0u8, true, &ops).is_linearizable());
        }
    }
}
