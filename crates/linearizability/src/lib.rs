//! History recording and linearizability checking for the atomic-snapshot
//! reproduction.
//!
//! The paper's Theorems 3.5, 4.5 and 5.4 assert that every run of the
//! constructions serializes correctly — i.e. is *linearizable* with respect
//! to the snapshot object semantics (\[HW87\] in the paper's bibliography).
//! This crate machine-checks that on millions of real and simulated runs:
//!
//! * [`Recorder`] / [`History`] — concurrent capture of operation
//!   invocation/response intervals with their arguments and results;
//! * [`check_history`] — a **Wing–Gong search**: exhaustively looks for a
//!   valid linearization order (complete for small histories, exponential
//!   in the worst case, memoized); the witness order can be
//!   cross-validated against the paper's own SWS specification automaton
//!   from `snapshot-automata` via [`witness_accepted_by_sws`];
//! * [`check_intervals`] — a fast *necessary-condition* checker for large
//!   stress histories with unique update values: each scan must admit a
//!   linearization point inside its interval consistent with per-word
//!   update intervals, and all scans must be pairwise comparable. Any
//!   violation it reports is a genuine linearizability violation; it may
//!   not catch every exotic violation (the Wing–Gong checker is the
//!   authority on small histories);
//! * [`ProjectedSnapshotSpec`] / [`check_partial_history`] — the spec
//!   extended with *partial* scans (`scan_subset` in `snapshot-service`):
//!   a subset scan must match the projection of one sequential state onto
//!   its requested segments.
//!
//! # Example
//!
//! ```
//! use snapshot_lin::{check_history, History, Recorder, WgResult};
//! use snapshot_registers::ProcessId;
//!
//! // One process updates, another scans strictly afterwards.
//! let recorder = Recorder::new(2, 2, 0u32);
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//!
//! let t = recorder.begin();
//! recorder.end_update(p0, 0, 7, t);
//! let t = recorder.begin();
//! recorder.end_scan(p1, vec![7, 0], t);
//!
//! let history: History<u32> = recorder.finish();
//! assert!(matches!(
//!     check_history(&history),
//!     WgResult::Linearizable { .. }
//! ));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod history;
mod interval;
mod partial;
mod recorder;
mod spec;
mod timeline;
mod wing_gong;

pub use history::{History, OpRecord, SnapOp};
pub use interval::{check_intervals, IntervalViolation};
pub use partial::{check_partial_history, PartialOp, ProjectedSnapshotSpec};
pub use recorder::Recorder;
pub use timeline::{render_annotated_timeline, render_timeline};
pub use spec::{RegisterOp, RegisterSpec, SeqSpec, SnapshotSpec};
pub use wing_gong::{check_history, check_linearizable, witness_accepted_by_sws, WgOp, WgResult};
