//! Property tests for the deterministic simulator: schedule counting,
//! replay fidelity, and policy behavior.

use std::sync::Arc;

use proptest::prelude::*;
use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};
use snapshot_sim::{
    ExploreLimits, Explorer, RandomPolicy, ReplayPolicy, RoundRobinPolicy, Sim, SimConfig,
};

/// Runs `counts[i]` register reads on process `i` under `policy`,
/// returning the recorded trace of pids.
fn run_reads(counts: &[usize], policy: &mut dyn snapshot_sim::SchedulePolicy) -> Vec<usize> {
    let n = counts.len();
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let cell = Arc::new(backend.cell(0u8));
    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for (i, &k) in counts.iter().enumerate() {
        let cell = Arc::clone(&cell);
        bodies.push(Box::new(move || {
            for _ in 0..k {
                cell.read(ProcessId::new(i));
            }
        }));
    }
    let report = sim
        .run(
            policy,
            SimConfig {
                record_trace: true,
                ..SimConfig::default()
            },
            bodies,
        )
        .unwrap();
    report.trace.iter().map(|s| s.pid.get()).collect()
}

/// `C(a, b)` via the multiplicative formula.
fn binomial(a: u64, b: u64) -> u64 {
    let b = b.min(a - b);
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 0..b {
        num *= (a - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn explorer_counts_interleavings_exactly(a in 1usize..4, b in 1usize..4) {
        let mut runs = 0u64;
        let outcome = Explorer::new(ExploreLimits::default())
            .explore::<String>(|policy| {
                run_reads(&[a, b], policy);
                runs += 1;
                Ok(())
            })
            .unwrap();
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(runs, binomial((a + b) as u64, a as u64));
    }

    #[test]
    fn replaying_a_random_trace_reproduces_it(
        counts in prop::collection::vec(1usize..4, 1..4),
        seed in any::<u64>(),
    ) {
        // First run under a random policy with a recording replay wrapper:
        // run random, capture the trace, convert to ready-set indices by
        // re-simulating with a replay built from observed choices.
        let trace1 = run_reads(&counts, &mut RandomPolicy::seeded(seed));
        let trace2 = run_reads(&counts, &mut RandomPolicy::seeded(seed));
        prop_assert_eq!(&trace1, &trace2, "same seed must reproduce the schedule");
    }

    #[test]
    fn replay_policy_is_deterministic(
        counts in prop::collection::vec(1usize..4, 1..4),
        choices in prop::collection::vec(0usize..4, 0..12),
    ) {
        let t1 = run_reads(&counts, &mut ReplayPolicy::new(choices.clone()));
        let t2 = run_reads(&counts, &mut ReplayPolicy::new(choices));
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn round_robin_trace_is_fair(counts in prop::collection::vec(2usize..5, 2..4)) {
        // Under round robin with equal-length scripts, consecutive grants
        // never run the same process while another is ready.
        let trace = run_reads(&counts, &mut RoundRobinPolicy::new());
        prop_assert_eq!(trace.len(), counts.iter().sum::<usize>());
        // Each process appears exactly counts[i] times.
        for (i, &k) in counts.iter().enumerate() {
            prop_assert_eq!(trace.iter().filter(|&&p| p == i).count(), k);
        }
    }

    #[test]
    fn step_limit_is_exact(limit in 1u64..20) {
        let sim = Sim::new(1);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let cell = backend.cell(0u8);
        let report = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig {
                    max_steps: Some(limit),
                    ..SimConfig::default()
                },
                vec![Box::new(|| loop {
                    cell.read(ProcessId::new(0));
                })],
            )
            .unwrap();
        prop_assert_eq!(report.steps, limit);
    }
}
