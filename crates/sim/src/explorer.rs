use std::fmt;

use crate::policy::ReplayPolicy;

/// Bounds for a systematic exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum number of schedules to execute.
    pub max_runs: u64,
    /// Decisions past this depth never branch (always take choice 0), so
    /// the exploration tree stays finite even for long runs.
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_runs: 100_000,
            max_depth: 256,
        }
    }
}

/// How an exploration ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every schedule (up to `max_depth` branching) was executed.
    Complete {
        /// Number of schedules executed.
        runs: u64,
    },
    /// The `max_runs` budget ran out first.
    Truncated {
        /// Number of schedules executed.
        runs: u64,
    },
}

impl ExploreOutcome {
    /// Number of schedules executed.
    pub fn runs(&self) -> u64 {
        match *self {
            ExploreOutcome::Complete { runs } | ExploreOutcome::Truncated { runs } => runs,
        }
    }

    /// True if the whole (depth-bounded) schedule tree was covered.
    pub fn is_complete(&self) -> bool {
        matches!(self, ExploreOutcome::Complete { .. })
    }
}

/// Errors surfaced by [`Explorer::explore`].
#[derive(Debug)]
pub enum ExplorerError<E> {
    /// Replaying an identical prefix produced a different ready-set size —
    /// the run body is not a deterministic function of the schedule.
    NonDeterministic {
        /// First decision depth at which the arity diverged.
        depth: usize,
    },
    /// The run body itself failed (e.g. the simulated algorithm panicked
    /// or a property check rejected the run).
    Body {
        /// The body's error.
        error: E,
        /// The choice prefix that reproduces the failing schedule: feed it
        /// to [`ReplayPolicy::new`] to replay the exact run.
        ///
        /// [`ReplayPolicy::new`]: crate::ReplayPolicy::new
        schedule: Vec<usize>,
    },
}

impl<E: fmt::Display> fmt::Display for ExplorerError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::NonDeterministic { depth } => write!(
                f,
                "exploration body is not deterministic: ready-set arity diverged at depth {depth}"
            ),
            ExplorerError::Body { error, schedule } => write!(
                f,
                "exploration body failed: {error} (replay schedule: {schedule:?})"
            ),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ExplorerError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplorerError::Body { error, .. } => Some(error),
            ExplorerError::NonDeterministic { .. } => None,
        }
    }
}

/// Replay-based depth-first enumeration of *every* schedule of a bounded
/// concurrent run.
///
/// The body receives a [`ReplayPolicy`] pre-loaded with a choice prefix; it
/// must build a **fresh** instance of the system under test, run it under
/// that policy, and check whatever property it cares about. The explorer
/// reads back which choices were actually taken and how many alternatives
/// existed at each decision, then backtracks lexicographically.
///
/// # Example
///
/// Exhaustively check that two gated writers can produce either final
/// value:
///
/// ```
/// use std::collections::BTreeSet;
/// use std::sync::Arc;
/// use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};
/// use snapshot_sim::{ExploreLimits, Explorer, Sim, SimConfig};
///
/// let mut finals = BTreeSet::new();
/// let outcome = Explorer::new(ExploreLimits::default())
///     .explore::<std::convert::Infallible>(|policy| {
///         let sim = Sim::new(2);
///         let backend = Instrumented::new(EpochBackend::default()).with_gate(sim.gate());
///         let cell = Arc::new(backend.cell(0u32));
///         let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
///         for p in 0..2u32 {
///             let cell = Arc::clone(&cell);
///             bodies.push(Box::new(move || cell.write(ProcessId::new(p as usize), p + 1)));
///         }
///         sim.run(policy, SimConfig::default(), bodies).unwrap();
///         finals.insert(cell.read(ProcessId::new(0)));
///         Ok(())
///     })
///     .unwrap();
/// assert!(outcome.is_complete());
/// assert_eq!(finals, BTreeSet::from([1, 2]));
/// ```
#[derive(Debug)]
pub struct Explorer {
    limits: ExploreLimits,
}

impl Explorer {
    /// Creates an explorer with the given bounds.
    pub fn new(limits: ExploreLimits) -> Self {
        Explorer { limits }
    }

    /// Runs the exploration. See the type-level docs for the contract.
    ///
    /// # Errors
    ///
    /// Propagates the first body error, and reports
    /// [`ExplorerError::NonDeterministic`] if a replayed prefix observes a
    /// different ready-set size than the run that recorded it.
    pub fn explore<E>(
        &self,
        mut body: impl FnMut(&mut ReplayPolicy) -> Result<(), E>,
    ) -> Result<ExploreOutcome, ExplorerError<E>> {
        let mut prefix: Vec<usize> = Vec::new();
        let mut prev_arities: Vec<usize> = Vec::new();
        let mut runs: u64 = 0;

        loop {
            let mut policy = ReplayPolicy::new(prefix.clone());
            if let Err(error) = body(&mut policy) {
                let (schedule, _) = policy.into_parts();
                return Err(ExplorerError::Body { error, schedule });
            }
            runs += 1;

            let (choices, arities) = policy.into_parts();
            // Determinism check over the replayed prefix.
            for d in 0..prefix.len().min(prev_arities.len()).min(arities.len()) {
                if arities[d] != prev_arities[d] {
                    return Err(ExplorerError::NonDeterministic { depth: d });
                }
            }
            prev_arities = arities.clone();

            if runs >= self.limits.max_runs {
                return Ok(ExploreOutcome::Truncated { runs });
            }

            // Backtrack: find the deepest branchable decision.
            let branch_limit = choices.len().min(arities.len()).min(self.limits.max_depth);
            let mut next = None;
            for d in (0..branch_limit).rev() {
                // `choices[d]` may exceed the arity if the caller seeded an
                // out-of-range prefix; the policy clamps at runtime, so
                // clamp here symmetrically.
                let taken = choices[d].min(arities[d] - 1);
                if taken + 1 < arities[d] {
                    let mut p = choices[..d].to_vec();
                    p.push(taken + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => {
                    prev_arities.truncate(p.len().saturating_sub(1));
                    prefix = p;
                }
                None => return Ok(ExploreOutcome::Complete { runs }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::convert::Infallible;
    use std::sync::Arc;

    use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};

    use crate::{Sim, SimConfig};

    /// Two processes, each performing `k` reads: the schedule tree has
    /// C(2k, k) interleavings; check the explorer counts them exactly.
    fn count_interleavings(k: usize) -> u64 {
        let outcome = Explorer::new(ExploreLimits::default())
            .explore::<Infallible>(|policy| {
                let sim = Sim::new(2);
                let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
                let cell = Arc::new(backend.cell(0u8));
                let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
                for p in 0..2 {
                    let cell = Arc::clone(&cell);
                    bodies.push(Box::new(move || {
                        for _ in 0..k {
                            cell.read(ProcessId::new(p));
                        }
                    }));
                }
                sim.run(policy, SimConfig::default(), bodies).unwrap();
                Ok(())
            })
            .unwrap();
        assert!(outcome.is_complete());
        outcome.runs()
    }

    #[test]
    fn explores_exactly_the_binomial_number_of_schedules() {
        // C(2,1)=2, C(4,2)=6, C(6,3)=20.
        assert_eq!(count_interleavings(1), 2);
        assert_eq!(count_interleavings(2), 6);
        assert_eq!(count_interleavings(3), 20);
    }

    #[test]
    fn covers_all_distinct_outcomes() {
        // Read-then-write increment by two processes: final value in {1,2}
        // and both must be observed across schedules.
        let mut finals = BTreeSet::new();
        Explorer::new(ExploreLimits::default())
            .explore::<Infallible>(|policy| {
                let sim = Sim::new(2);
                let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
                let cell = Arc::new(backend.cell(0u32));
                let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
                for p in 0..2 {
                    let cell = Arc::clone(&cell);
                    bodies.push(Box::new(move || {
                        let pid = ProcessId::new(p);
                        let v = cell.read(pid);
                        cell.write(pid, v + 1);
                    }));
                }
                sim.run(policy, SimConfig::default(), bodies).unwrap();
                finals.insert(cell.read(ProcessId::new(0)));
                Ok(())
            })
            .unwrap();
        assert_eq!(finals, BTreeSet::from([1, 2]));
    }

    #[test]
    fn run_budget_truncates() {
        let outcome = Explorer::new(ExploreLimits {
            max_runs: 3,
            max_depth: 256,
        })
        .explore::<Infallible>(|policy| {
            let sim = Sim::new(2);
            let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
            let cell = Arc::new(backend.cell(0u8));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for p in 0..2 {
                let cell = Arc::clone(&cell);
                bodies.push(Box::new(move || {
                    for _ in 0..3 {
                        cell.read(ProcessId::new(p));
                    }
                }));
            }
            sim.run(policy, SimConfig::default(), bodies).unwrap();
            Ok(())
        })
        .unwrap();
        assert_eq!(outcome, ExploreOutcome::Truncated { runs: 3 });
    }

    #[test]
    fn body_errors_propagate() {
        let err = Explorer::new(ExploreLimits::default())
            .explore::<&'static str>(|policy| {
                let sim = Sim::new(1);
                let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
                let cell = backend.cell(0u8);
                sim.run(
                    policy,
                    SimConfig::default(),
                    vec![Box::new(|| {
                        cell.read(ProcessId::new(0));
                    })],
                )
                .unwrap();
                Err("property violated")
            })
            .unwrap_err();
        match err {
            ExplorerError::Body { error, schedule } => {
                assert_eq!(error, "property violated");
                // The failing run had two reads: two decisions, trivially
                // index 0 each (one process).
                assert_eq!(schedule.len(), 1);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
