use std::collections::BTreeSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use snapshot_obs::{Event, RegOp, Trace};
use snapshot_registers::{OpKind, ProcessId, StepGate};

use crate::policy::{Decision, ReadyProcess, SchedulePolicy};

/// Marker payload used to unwind a simulated process that the controller
/// aborts; distinguished from real panics by type.
struct AbortToken;

/// Installs (once) a panic hook that silences controller-initiated aborts;
/// real panics still print through the previously-installed hook.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return;
            }
            prev(info);
        }));
    });
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Executing user code (between grants, or before its first gate call).
    Busy,
    /// Parked at the gate, waiting for a grant.
    Ready(OpKind),
    /// Granted a step; will transition to Busy when the thread wakes.
    Granted,
    /// Finished its body normally.
    Done,
    /// Unwound by the controller (step limit, halt, or crash cleanup).
    Aborted,
}

struct State {
    slots: Vec<Slot>,
    /// True once the controller has decided to tear the run down; parked
    /// and arriving processes unwind instead of proceeding.
    aborting: bool,
    /// False outside `run`, making the gate a no-op so that code touching
    /// the registers before/after the simulation does not park.
    active: bool,
    /// Panic messages from processes that failed with a *real* panic.
    panics: Vec<(usize, String)>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for grants or aborts.
    worker_cv: Condvar,
    /// The controller waits here for all workers to park or finish.
    ctrl_cv: Condvar,
}

/// The [`StepGate`] connected to a [`Sim`]; install it into an
/// [`Instrumented`] backend so every register operation of the algorithm
/// under test parks here.
///
/// Outside of [`Sim::run`] the gate is inactive and passes operations
/// through immediately.
///
/// [`Instrumented`]: snapshot_registers::Instrumented
pub struct SimGate {
    shared: Arc<Shared>,
}

impl StepGate for SimGate {
    fn step(&self, pid: ProcessId, op: OpKind) {
        let mut st = self.shared.state.lock();
        if !st.active {
            return;
        }
        let i = pid.get();
        assert!(
            i < st.slots.len(),
            "gate used by unknown process {pid} (simulation has {} processes)",
            st.slots.len()
        );
        if st.aborting {
            st.slots[i] = Slot::Aborted;
            self.shared.ctrl_cv.notify_all();
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.slots[i] = Slot::Ready(op);
        self.shared.ctrl_cv.notify_all();
        loop {
            self.shared.worker_cv.wait(&mut st);
            if st.aborting {
                st.slots[i] = Slot::Aborted;
                self.shared.ctrl_cv.notify_all();
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.slots[i] == Slot::Granted {
                st.slots[i] = Slot::Busy;
                return;
            }
        }
    }
}

impl fmt::Debug for SimGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SimGate")
    }
}

/// Configuration for one simulated run.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Abort the run after this many grants (`None` = unlimited). Runs
    /// whose processes are being starved by an adversary use this as the
    /// non-termination detector.
    pub max_steps: Option<u64>,
    /// Halt (successfully) as soon as all of these processes have finished,
    /// aborting the rest. Lets an experiment drive "run until the scanner
    /// completes, updaters are just noise".
    pub stop_when_done: Vec<ProcessId>,
    /// Record the granted `(step, pid, op)` sequence in the report.
    pub record_trace: bool,
}

/// One granted step, for traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Grant index (0-based).
    pub step: u64,
    /// The process granted.
    pub pid: ProcessId,
    /// The operation it performed.
    pub op: OpKind,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaltReason {
    /// Every process finished its body.
    AllDone,
    /// All processes named in [`SimConfig::stop_when_done`] finished.
    StopSetDone,
    /// The [`SimConfig::max_steps`] budget was exhausted.
    StepLimit,
    /// The policy returned [`Decision::Halt`].
    PolicyHalt,
}

/// Final status of one simulated process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessStatus {
    /// The process body ran to completion.
    Completed,
    /// The process was aborted mid-operation (starved at a step limit,
    /// crashed, or torn down by an early halt).
    Aborted,
}

/// The result of a completed simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total grants issued.
    pub steps: u64,
    /// Grants issued to each process, indexed by process id.
    pub steps_per_process: Vec<u64>,
    /// Why the run ended.
    pub halt: HaltReason,
    /// Per-process final status, indexed by process id.
    pub statuses: Vec<ProcessStatus>,
    /// The granted schedule, if [`SimConfig::record_trace`] was set.
    pub trace: Vec<StepRecord>,
}

impl SimReport {
    /// True if `pid` ran its body to completion.
    pub fn completed(&self, pid: ProcessId) -> bool {
        self.statuses[pid.get()] == ProcessStatus::Completed
    }

    /// Renders the recorded trace as one line per grant (empty when
    /// [`SimConfig::record_trace`] was off) — the simulator-side
    /// counterpart of `snapshot_lin::render_timeline`.
    pub fn render_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} steps, halt = {:?}",
            self.steps, self.halt
        );
        for record in &self.trace {
            let _ = writeln!(
                out,
                "  step {:>5}: {} {}",
                record.step, record.pid, record.op
            );
        }
        out
    }
}

/// Errors surfaced by [`Sim::run`].
#[derive(Debug)]
pub enum SimError {
    /// A process body panicked (a genuine bug in the code under test, not
    /// a controller abort).
    ProcessPanicked {
        /// The panicking process.
        pid: ProcessId,
        /// The stringified panic payload.
        message: String,
    },
    /// The number of bodies did not match the configured process count.
    WrongProcessCount {
        /// Processes the simulation was created for.
        expected: usize,
        /// Bodies supplied to `run`.
        actual: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProcessPanicked { pid, message } => {
                write!(f, "simulated process {pid} panicked: {message}")
            }
            SimError::WrongProcessCount { expected, actual } => {
                write!(f, "expected {expected} process bodies, got {actual}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A deterministic simulation of `n` asynchronous processes sharing gated
/// registers.
///
/// Construct the simulation first, install [`Sim::gate`] into the register
/// backend of the object under test, then call [`Sim::run`] with one body
/// closure per process. See the [crate docs](crate) for a complete example.
pub struct Sim {
    n: usize,
    shared: Arc<Shared>,
    trace: Trace,
}

impl Sim {
    /// Creates a simulation of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a simulation needs at least one process");
        install_quiet_abort_hook();
        Sim {
            n,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    slots: vec![Slot::Busy; n],
                    aborting: false,
                    active: false,
                    panics: Vec::new(),
                }),
                worker_cv: Condvar::new(),
                ctrl_cv: Condvar::new(),
            }),
            trace: Trace::disabled(),
        }
    }

    /// Emits a `schedule_step` event into `trace` for every step the
    /// controller grants, making simulated traces deterministic and
    /// replayable. Share the trace (and its clock) with the object under
    /// test to interleave scheduler grants with algorithm events.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Number of simulated processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The gate to install into the register backend under test.
    pub fn gate(&self) -> Arc<SimGate> {
        Arc::new(SimGate {
            shared: Arc::clone(&self.shared),
        })
    }

    /// Runs the simulation to completion under `policy`.
    ///
    /// `bodies[i]` is the code of process `i`; it must perform its shared
    /// accesses through registers gated by [`Sim::gate`]. The call returns
    /// when every process has finished or been aborted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanicked`] if a body panics for any
    /// reason other than a controller abort, and
    /// [`SimError::WrongProcessCount`] if `bodies.len() != n`.
    pub fn run<'env>(
        self,
        policy: &mut dyn SchedulePolicy,
        config: SimConfig,
        bodies: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<SimReport, SimError> {
        if bodies.len() != self.n {
            return Err(SimError::WrongProcessCount {
                expected: self.n,
                actual: bodies.len(),
            });
        }
        let shared = &self.shared;
        {
            let mut st = shared.state.lock();
            st.active = true;
            st.slots.iter_mut().for_each(|s| *s = Slot::Busy);
        }

        let stop_set: BTreeSet<usize> = config.stop_when_done.iter().map(|p| p.get()).collect();
        let mut steps: u64 = 0;
        let mut steps_per_process = vec![0u64; self.n];
        let mut trace = Vec::new();

        let halt = std::thread::scope(|scope| {
            for (i, body) in bodies.into_iter().enumerate() {
                let shared = Arc::clone(shared);
                scope.spawn(move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(body));
                    let mut st = shared.state.lock();
                    match result {
                        Ok(()) => st.slots[i] = Slot::Done,
                        Err(payload) => {
                            st.slots[i] = Slot::Aborted;
                            if !payload.is::<AbortToken>() {
                                let msg = panic_message(&*payload);
                                st.panics.push((i, msg));
                            }
                        }
                    }
                    shared.ctrl_cv.notify_all();
                });
            }

            // Controller loop: wait for quiescence, consult the policy,
            // grant one step, repeat.
            let mut st = shared.state.lock();
            let halt = loop {
                while st
                    .slots
                    .iter()
                    .any(|s| matches!(s, Slot::Busy | Slot::Granted))
                {
                    shared.ctrl_cv.wait(&mut st);
                }
                if !st.panics.is_empty() {
                    break HaltReason::AllDone; // error surfaced after joining
                }
                if !stop_set.is_empty() && stop_set.iter().all(|&i| st.slots[i] == Slot::Done) {
                    break HaltReason::StopSetDone;
                }
                let ready: Vec<ReadyProcess> = st
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Slot::Ready(op) => Some(ReadyProcess {
                            pid: ProcessId::new(i),
                            op: *op,
                        }),
                        _ => None,
                    })
                    .collect();
                if ready.is_empty() {
                    break HaltReason::AllDone;
                }
                if config.max_steps.is_some_and(|limit| steps >= limit) {
                    break HaltReason::StepLimit;
                }
                match policy.choose(&ready, steps) {
                    Decision::Run(idx) => {
                        let picked = ready[idx.min(ready.len() - 1)];
                        self.trace.emit(
                            picked.pid.get(),
                            Event::ScheduleStep {
                                step: steps,
                                op: match picked.op {
                                    OpKind::Read => RegOp::Read,
                                    OpKind::Write => RegOp::Write,
                                },
                            },
                        );
                        if config.record_trace {
                            trace.push(StepRecord {
                                step: steps,
                                pid: picked.pid,
                                op: picked.op,
                            });
                        }
                        st.slots[picked.pid.get()] = Slot::Granted;
                        steps += 1;
                        steps_per_process[picked.pid.get()] += 1;
                        shared.worker_cv.notify_all();
                    }
                    Decision::Halt => break HaltReason::PolicyHalt,
                }
            };

            // Tear down: unwind everything still parked or busy.
            st.aborting = true;
            shared.worker_cv.notify_all();
            while st
                .slots
                .iter()
                .any(|s| !matches!(s, Slot::Done | Slot::Aborted))
            {
                shared.ctrl_cv.wait(&mut st);
            }
            st.active = false;
            st.aborting = false;
            halt
        });

        let st = shared.state.lock();
        if let Some((i, message)) = st.panics.first().cloned() {
            return Err(SimError::ProcessPanicked {
                pid: ProcessId::new(i),
                message,
            });
        }
        let statuses = st
            .slots
            .iter()
            .map(|s| match s {
                Slot::Done => ProcessStatus::Completed,
                _ => ProcessStatus::Aborted,
            })
            .collect();
        Ok(SimReport {
            steps,
            steps_per_process,
            halt,
            statuses,
            trace,
        })
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim").field("processes", &self.n).finish()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FnPolicy, RandomPolicy, ReplayPolicy, RoundRobinPolicy};
    use snapshot_registers::{Backend, EpochBackend, Instrumented, Register};

    fn gated_backend(sim: &Sim) -> Instrumented<EpochBackend> {
        Instrumented::new(EpochBackend::new()).with_gate(sim.gate())
    }

    #[test]
    fn single_process_runs_to_completion() {
        let sim = Sim::new(1);
        let backend = gated_backend(&sim);
        let cell = backend.cell(0u32);
        let report = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig::default(),
                vec![Box::new(|| {
                    let p = ProcessId::new(0);
                    cell.write(p, 1);
                    assert_eq!(cell.read(p), 1);
                })],
            )
            .unwrap();
        assert_eq!(report.steps, 2);
        assert_eq!(report.halt, HaltReason::AllDone);
        assert!(report.completed(ProcessId::new(0)));
    }

    #[test]
    fn schedule_decides_interleaving_outcome() {
        // Two writers write different values to the same cell; the final
        // value is exactly determined by the schedule.
        for (choices, expect) in [(vec![0, 0], 2u32), (vec![1, 0], 1)] {
            let sim = Sim::new(2);
            let backend = gated_backend(&sim);
            let cell = Arc::new(backend.cell(0u32));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for p in 0..2 {
                let cell = Arc::clone(&cell);
                bodies.push(Box::new(move || {
                    cell.write(ProcessId::new(p), p as u32 + 1);
                }));
            }
            let mut policy = ReplayPolicy::new(choices);
            sim.run(&mut policy, SimConfig::default(), bodies).unwrap();
            // Gate is inactive after the run; read directly.
            assert_eq!(cell.read(ProcessId::new(0)), expect);
        }
    }

    #[test]
    fn trace_records_grants_in_order() {
        let sim = Sim::new(2);
        let backend = gated_backend(&sim);
        let cell = Arc::new(backend.cell(0u8));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for p in 0..2 {
            let cell = Arc::clone(&cell);
            bodies.push(Box::new(move || {
                cell.read(ProcessId::new(p));
            }));
        }
        let report = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig {
                    record_trace: true,
                    ..SimConfig::default()
                },
                bodies,
            )
            .unwrap();
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.trace[0].pid, ProcessId::new(0));
        assert_eq!(report.trace[1].pid, ProcessId::new(1));
        assert_eq!(report.trace[0].op, OpKind::Read);
    }

    #[test]
    fn per_process_step_counts_sum_to_total() {
        let sim = Sim::new(2);
        let backend = gated_backend(&sim);
        let cell = Arc::new(backend.cell(0u8));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (p, reads) in [(0usize, 3usize), (1, 5)] {
            let cell = Arc::clone(&cell);
            bodies.push(Box::new(move || {
                for _ in 0..reads {
                    cell.read(ProcessId::new(p));
                }
            }));
        }
        let report = sim
            .run(&mut RoundRobinPolicy::new(), SimConfig::default(), bodies)
            .unwrap();
        assert_eq!(report.steps_per_process, vec![3, 5]);
        assert_eq!(report.steps_per_process.iter().sum::<u64>(), report.steps);
    }

    #[test]
    fn trace_renders_human_readably() {
        let sim = Sim::new(1);
        let backend = gated_backend(&sim);
        let cell = backend.cell(0u8);
        let report = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig {
                    record_trace: true,
                    ..SimConfig::default()
                },
                vec![Box::new(|| {
                    cell.write(ProcessId::new(0), 1);
                    cell.read(ProcessId::new(0));
                })],
            )
            .unwrap();
        let text = report.render_trace();
        assert!(text.contains("2 steps"));
        assert!(text.contains("P0 write"));
        assert!(text.contains("P0 read"));
    }

    #[test]
    fn step_limit_aborts_starved_run() {
        // A process that loops on register reads forever is cut off at the
        // step limit and reported Aborted.
        let sim = Sim::new(1);
        let backend = gated_backend(&sim);
        let cell = backend.cell(0u8);
        let report = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig {
                    max_steps: Some(25),
                    ..SimConfig::default()
                },
                vec![Box::new(|| loop {
                    cell.read(ProcessId::new(0));
                })],
            )
            .unwrap();
        assert_eq!(report.halt, HaltReason::StepLimit);
        assert_eq!(report.steps, 25);
        assert_eq!(report.statuses[0], ProcessStatus::Aborted);
    }

    #[test]
    fn stop_set_halts_after_key_process_finishes() {
        let sim = Sim::new(2);
        let backend = gated_backend(&sim);
        let cell = Arc::new(backend.cell(0u8));
        let c0 = Arc::clone(&cell);
        let c1 = Arc::clone(&cell);
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(move || {
                c0.read(ProcessId::new(0));
            }),
            Box::new(move || loop {
                c1.read(ProcessId::new(1));
            }),
        ];
        // Priority to P0 so it finishes fast; P1 loops forever.
        let mut policy = crate::policy::PriorityPolicy::new([ProcessId::new(0)]);
        let report = sim
            .run(
                &mut policy,
                SimConfig {
                    stop_when_done: vec![ProcessId::new(0)],
                    ..SimConfig::default()
                },
                bodies,
            )
            .unwrap();
        assert_eq!(report.halt, HaltReason::StopSetDone);
        assert!(report.completed(ProcessId::new(0)));
        assert_eq!(report.statuses[1], ProcessStatus::Aborted);
    }

    #[test]
    fn policy_halt_tears_down_cleanly() {
        let sim = Sim::new(2);
        let backend = gated_backend(&sim);
        let cell = Arc::new(backend.cell(0u8));
        let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for p in 0..2 {
            let cell = Arc::clone(&cell);
            bodies.push(Box::new(move || loop {
                cell.read(ProcessId::new(p));
            }));
        }
        let mut policy = FnPolicy(|_ready: &[ReadyProcess], step| {
            if step < 5 {
                Decision::Run(0)
            } else {
                Decision::Halt
            }
        });
        let report = sim.run(&mut policy, SimConfig::default(), bodies).unwrap();
        assert_eq!(report.halt, HaltReason::PolicyHalt);
        assert_eq!(report.steps, 5);
    }

    #[test]
    fn real_panics_are_reported_not_swallowed() {
        let sim = Sim::new(1);
        let backend = gated_backend(&sim);
        let cell = backend.cell(0u8);
        let err = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig::default(),
                vec![Box::new(|| {
                    cell.read(ProcessId::new(0));
                    panic!("algorithm bug!");
                })],
            )
            .unwrap_err();
        match err {
            SimError::ProcessPanicked { pid, message } => {
                assert_eq!(pid, ProcessId::new(0));
                assert!(message.contains("algorithm bug"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wrong_body_count_is_rejected() {
        let sim = Sim::new(2);
        let err = sim
            .run(
                &mut RoundRobinPolicy::new(),
                SimConfig::default(),
                vec![Box::new(|| {})],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::WrongProcessCount {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let run = |seed| {
            let sim = Sim::new(3);
            let backend = gated_backend(&sim);
            let cell = Arc::new(backend.cell(0u64));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for p in 0..3 {
                let cell = Arc::clone(&cell);
                bodies.push(Box::new(move || {
                    let pid = ProcessId::new(p);
                    for _ in 0..5 {
                        let v = cell.read(pid);
                        cell.write(pid, v + 1);
                    }
                }));
            }
            let mut policy = RandomPolicy::seeded(seed);
            let report = sim
                .run(
                    &mut policy,
                    SimConfig {
                        record_trace: true,
                        ..SimConfig::default()
                    },
                    bodies,
                )
                .unwrap();
            (report.trace, cell.read(ProcessId::new(0)))
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn gate_is_passthrough_outside_runs() {
        let sim = Sim::new(1);
        let backend = gated_backend(&sim);
        let cell = backend.cell(5u8);
        // No run active: must not block.
        assert_eq!(cell.read(ProcessId::new(0)), 5);
    }
}
