//! Deterministic concurrency simulator for the atomic-snapshot
//! reproduction.
//!
//! Wait-freedom and linearizability are properties quantified over *all*
//! schedules of an adversarial scheduler; real threads exercise only the
//! schedules the OS happens to produce. This crate runs the **same
//! algorithm code** that runs on real threads, but funnels every primitive
//! register operation through a [`StepGate`] that parks the calling thread
//! until a controller grants it one step. Exactly one process runs between
//! grants, so the controller totally orders all shared-memory operations
//! and the execution is a deterministic function of the scheduling
//! decisions.
//!
//! On top of the gate sit:
//!
//! * [`Sim`] — the controller: spawns one thread per process, repeatedly
//!   asks a [`SchedulePolicy`] which parked process to release next, and
//!   enforces step limits and stop conditions;
//! * policies — seeded-random ([`RandomPolicy`]), round-robin
//!   ([`RoundRobinPolicy`]), strict-priority starvation adversaries
//!   ([`PriorityPolicy`]), crash injection ([`CrashPolicy`]), and exact
//!   replay ([`ReplayPolicy`]);
//! * [`Explorer`] — replay-based depth-first *systematic* exploration of
//!   every schedule of a small configuration, the engine behind the
//!   exhaustive linearizability experiments.
//!
//! [`StepGate`]: snapshot_registers::StepGate
//!
//! # Example: two gated writers, fully controlled
//!
//! ```
//! use std::sync::Arc;
//! use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};
//! use snapshot_sim::{RoundRobinPolicy, Sim, SimConfig};
//!
//! let sim = Sim::new(2);
//! let backend = Instrumented::new(EpochBackend::default()).with_gate(sim.gate());
//! let cell = Arc::new(backend.cell(0u32));
//!
//! let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
//! for p in 0..2u32 {
//!     let cell = Arc::clone(&cell);
//!     bodies.push(Box::new(move || {
//!         cell.write(ProcessId::new(p as usize), p + 1);
//!     }));
//! }
//! let report = sim
//!     .run(&mut RoundRobinPolicy::new(), SimConfig::default(), bodies)
//!     .unwrap();
//! assert_eq!(report.steps, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod explorer;
mod policy;
mod scheduler;
mod shrink;

pub use explorer::{ExploreLimits, ExploreOutcome, Explorer, ExplorerError};
pub use policy::{
    CrashPolicy, Decision, FnPolicy, OpBiasPolicy, PriorityPolicy, RandomPolicy, ReadyProcess,
    ReplayPolicy, RoundRobinPolicy, SchedulePolicy,
};
pub use scheduler::{
    HaltReason, ProcessStatus, Sim, SimConfig, SimError, SimGate, SimReport, StepRecord,
};
pub use shrink::{replay, shrink_schedule};
