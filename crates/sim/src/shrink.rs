use crate::policy::ReplayPolicy;

/// Shrinks a failing schedule to a (locally) minimal one — delta
/// debugging for the explorer.
///
/// `test` must return `true` when the schedule (fed through a
/// [`ReplayPolicy`]) still reproduces the failure. The shrinker first
/// tries chopping the tail (replay falls back to choice 0 past the end),
/// then removing chunks, then zeroing individual choices; it loops until
/// a fixpoint. The result still fails `test` and no single further
/// removal/zeroing of the tried kinds makes it fail.
///
/// Determinism of the run body (the same property the [`Explorer`]
/// requires) makes shrinking sound: a schedule either reproduces the
/// failure or it does not.
///
/// [`Explorer`]: crate::Explorer
///
/// # Example
///
/// ```
/// use snapshot_sim::shrink_schedule;
///
/// // A "failure" that only depends on choice index 2 being 1.
/// let failing = vec![1, 1, 1, 1, 1];
/// let minimal = shrink_schedule(failing, |s| s.get(2) == Some(&1));
/// assert_eq!(minimal, vec![0, 0, 1]);
/// ```
pub fn shrink_schedule(
    mut schedule: Vec<usize>,
    mut test: impl FnMut(&[usize]) -> bool,
) -> Vec<usize> {
    assert!(test(&schedule), "initial schedule must reproduce the failure");

    loop {
        let mut changed = false;

        // 1. Chop the tail as far as possible (binary descent).
        while !schedule.is_empty() {
            let shorter = &schedule[..schedule.len() - 1];
            if test(shorter) {
                schedule.pop();
                changed = true;
            } else {
                break;
            }
        }

        // 2. Remove chunks (halving sizes), preserving order.
        let mut chunk = schedule.len() / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= schedule.len() {
                let mut candidate = Vec::with_capacity(schedule.len() - chunk);
                candidate.extend_from_slice(&schedule[..start]);
                candidate.extend_from_slice(&schedule[start + chunk..]);
                if test(&candidate) {
                    schedule = candidate;
                    changed = true;
                    // Retry the same position with the shrunk schedule.
                } else {
                    start += 1;
                }
            }
            chunk /= 2;
        }

        // 3. Zero out individual non-zero choices (0 = "first ready", the
        // most canonical decision).
        for i in 0..schedule.len() {
            if schedule[i] != 0 {
                let saved = schedule[i];
                schedule[i] = 0;
                if test(&schedule) {
                    changed = true;
                } else {
                    schedule[i] = saved;
                }
            }
        }

        if !changed {
            return schedule;
        }
    }
}

/// Convenience: replays a schedule through a fresh [`ReplayPolicy`]; the
/// usual body for [`shrink_schedule`]'s `test` closure.
pub fn replay(schedule: &[usize]) -> ReplayPolicy {
    ReplayPolicy::new(schedule.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_relevant_choice() {
        let failing = vec![3, 2, 1, 4, 5, 6, 7];
        // Failure iff some element >= 4 appears at position >= 3.
        let minimal = shrink_schedule(failing, |s| s.iter().skip(3).any(|&c| c >= 4));
        assert_eq!(minimal, vec![0, 0, 0, 4]);
    }

    #[test]
    fn already_minimal_schedules_are_untouched() {
        let minimal = shrink_schedule(vec![1], |s| s == [1]);
        assert_eq!(minimal, vec![1]);
    }

    #[test]
    fn unconditional_failures_shrink_to_empty() {
        let minimal = shrink_schedule(vec![5, 4, 3], |_| true);
        assert!(minimal.is_empty());
    }

    #[test]
    #[should_panic(expected = "must reproduce")]
    fn rejects_non_failing_input() {
        shrink_schedule(vec![1, 2], |_| false);
    }

    #[test]
    fn shrinks_a_real_simulation_failure() {
        use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};

        use crate::{Sim, SimConfig};

        // "Failure": the final value of the cell is 2 (i.e. P1's write
        // landed last). Find a minimal schedule exhibiting it.
        let reproduces = |schedule: &[usize]| -> bool {
            let sim = Sim::new(2);
            let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
            let cell = std::sync::Arc::new(backend.cell(0u32));
            let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for p in 0..2u32 {
                let cell = std::sync::Arc::clone(&cell);
                bodies.push(Box::new(move || {
                    cell.write(ProcessId::new(p as usize), p + 1);
                }));
            }
            let mut policy = replay(schedule);
            sim.run(&mut policy, SimConfig::default(), bodies).unwrap();
            cell.read(ProcessId::new(0)) == 2
        };

        // A deliberately bloated failing schedule.
        let bloated = vec![0, 1, 0, 0, 0, 0];
        assert!(reproduces(&bloated));
        let minimal = shrink_schedule(bloated, reproduces);
        // Choice 0 then fallback zeros: the empty schedule means "always
        // first ready" = P0 then P1 -> final value 2. Indeed minimal.
        assert!(minimal.is_empty(), "got {minimal:?}");
    }
}
