use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snapshot_registers::{OpKind, ProcessId};

/// A process parked at the gate, waiting to perform one register operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyProcess {
    /// The parked process.
    pub pid: ProcessId,
    /// The operation it will perform when granted.
    pub op: OpKind,
}

/// A scheduling decision for one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Grant a step to `ready[index]`.
    Run(usize),
    /// Stop the run now; all live processes are aborted.
    Halt,
}

/// The adversary: decides, at every step, which parked process runs next.
///
/// The `ready` slice is never empty and is ordered by process id. `step` is
/// the number of grants issued so far, so policies can phase their behavior.
pub trait SchedulePolicy: Send {
    /// Chooses the next process to grant a step to.
    fn choose(&mut self, ready: &[ReadyProcess], step: u64) -> Decision;
}

impl<P: SchedulePolicy + ?Sized> SchedulePolicy for &mut P {
    fn choose(&mut self, ready: &[ReadyProcess], step: u64) -> Decision {
        (**self).choose(ready, step)
    }
}

/// Uniformly random scheduling from a seed; the workhorse for reproducible
/// randomized stress runs.
///
/// # Example
///
/// ```
/// use snapshot_sim::{RandomPolicy, SchedulePolicy};
/// let mut p = RandomPolicy::seeded(42);
/// // Same seed, same decisions.
/// let mut q = RandomPolicy::seeded(42);
/// # use snapshot_registers::{OpKind, ProcessId};
/// # use snapshot_sim::ReadyProcess;
/// let ready = [
///     ReadyProcess { pid: ProcessId::new(0), op: OpKind::Read },
///     ReadyProcess { pid: ProcessId::new(1), op: OpKind::Write },
/// ];
/// assert_eq!(p.choose(&ready, 0), q.choose(&ready, 0));
/// ```
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates a policy from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SchedulePolicy for RandomPolicy {
    fn choose(&mut self, ready: &[ReadyProcess], _step: u64) -> Decision {
        Decision::Run(self.rng.random_range(0..ready.len()))
    }
}

impl fmt::Debug for RandomPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RandomPolicy")
    }
}

/// Fair round-robin scheduling: repeatedly cycles through process ids.
///
/// Under this policy every parked process is granted a step within `n`
/// grants — the friendliest scheduler, useful as a baseline against the
/// starvation adversaries.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl RoundRobinPolicy {
    /// Creates a round-robin policy starting at process 0.
    pub fn new() -> Self {
        RoundRobinPolicy::default()
    }
}

impl SchedulePolicy for RoundRobinPolicy {
    fn choose(&mut self, ready: &[ReadyProcess], _step: u64) -> Decision {
        // Grant the first ready process with pid >= next (cyclically).
        let pick = ready
            .iter()
            .position(|r| r.pid.get() >= self.next)
            .unwrap_or(0);
        self.next = ready[pick].pid.get() + 1;
        Decision::Run(pick)
    }
}

/// A strict-priority adversary: always runs the ready process that appears
/// earliest in the priority order.
///
/// Putting the updaters ahead of a scanner yields the classic starvation
/// adversary of Observation 1/2 in the paper: a plain double-collect
/// scanner never completes, while the paper's algorithms finish within
/// their pigeonhole bounds.
#[derive(Debug)]
pub struct PriorityPolicy {
    rank: HashMap<usize, usize>,
}

impl PriorityPolicy {
    /// Creates a policy preferring processes in the order of `order`
    /// (first = highest priority). Processes not listed rank last, by id.
    pub fn new<I: IntoIterator<Item = ProcessId>>(order: I) -> Self {
        PriorityPolicy {
            rank: order
                .into_iter()
                .enumerate()
                .map(|(rank, pid)| (pid.get(), rank))
                .collect(),
        }
    }

    fn rank_of(&self, pid: ProcessId) -> (usize, usize) {
        match self.rank.get(&pid.get()) {
            Some(&r) => (r, pid.get()),
            None => (usize::MAX, pid.get()),
        }
    }
}

impl SchedulePolicy for PriorityPolicy {
    fn choose(&mut self, ready: &[ReadyProcess], _step: u64) -> Decision {
        let pick = (0..ready.len())
            .min_by_key(|&i| self.rank_of(ready[i].pid))
            .expect("ready is never empty");
        Decision::Run(pick)
    }
}

/// Replays an explicit sequence of ready-set indices; used by the
/// systematic explorer and for pinning down regression schedules.
///
/// When the recorded choices are exhausted the policy falls back to always
/// choosing index 0 (deterministic continuation). Out-of-range recorded
/// choices are clamped to the ready set.
#[derive(Debug, Default)]
pub struct ReplayPolicy {
    choices: Vec<usize>,
    cursor: usize,
    /// Arity (ready-set size) observed at each decision, recorded for the
    /// explorer's backtracking.
    arities: Vec<usize>,
}

impl ReplayPolicy {
    /// Creates a replay policy from recorded choices.
    pub fn new(choices: Vec<usize>) -> Self {
        ReplayPolicy {
            choices,
            cursor: 0,
            arities: Vec::new(),
        }
    }

    /// The choices taken so far, including fallback zeros appended past the
    /// original recording.
    pub fn taken(&self) -> &[usize] {
        &self.choices[..self.cursor.min(self.choices.len())]
    }

    /// The ready-set size observed at each decision point.
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    pub(crate) fn into_parts(self) -> (Vec<usize>, Vec<usize>) {
        (self.choices, self.arities)
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn choose(&mut self, ready: &[ReadyProcess], _step: u64) -> Decision {
        let idx = if self.cursor < self.choices.len() {
            self.choices[self.cursor].min(ready.len() - 1)
        } else {
            self.choices.push(0);
            0
        };
        self.cursor += 1;
        self.arities.push(ready.len());
        Decision::Run(idx)
    }
}

/// Crash injection: wraps another policy and permanently stops scheduling a
/// process after it has received a given number of grants.
///
/// A crashed process simply never takes another step — exactly the paper's
/// failure model, under which wait-free operations of *other* processes
/// must still terminate. If only crashed processes remain ready, the run
/// halts.
///
/// # Example
///
/// ```
/// use snapshot_registers::ProcessId;
/// use snapshot_sim::{CrashPolicy, RoundRobinPolicy};
///
/// // P1 crashes after its 3rd step.
/// let policy = CrashPolicy::new(RoundRobinPolicy::new())
///     .crash_after(ProcessId::new(1), 3);
/// # let _ = policy;
/// ```
#[derive(Debug)]
pub struct CrashPolicy<P> {
    inner: P,
    budgets: HashMap<usize, u64>,
    granted: HashMap<usize, u64>,
}

impl<P: SchedulePolicy> CrashPolicy<P> {
    /// Wraps `inner` with no crashes configured.
    pub fn new(inner: P) -> Self {
        CrashPolicy {
            inner,
            budgets: HashMap::new(),
            granted: HashMap::new(),
        }
    }

    /// Crashes `pid` once it has been granted `steps` steps.
    pub fn crash_after(mut self, pid: ProcessId, steps: u64) -> Self {
        self.budgets.insert(pid.get(), steps);
        self
    }

    fn crashed(&self, pid: ProcessId) -> bool {
        match self.budgets.get(&pid.get()) {
            Some(&budget) => self.granted.get(&pid.get()).copied().unwrap_or(0) >= budget,
            None => false,
        }
    }
}

impl<P: SchedulePolicy> SchedulePolicy for CrashPolicy<P> {
    fn choose(&mut self, ready: &[ReadyProcess], step: u64) -> Decision {
        let live: Vec<(usize, ReadyProcess)> = ready
            .iter()
            .enumerate()
            .filter(|(_, r)| !self.crashed(r.pid))
            .map(|(i, r)| (i, *r))
            .collect();
        if live.is_empty() {
            return Decision::Halt;
        }
        let live_ready: Vec<ReadyProcess> = live.iter().map(|(_, r)| *r).collect();
        match self.inner.choose(&live_ready, step) {
            Decision::Run(i) => {
                let (orig_idx, picked) = live[i.min(live.len() - 1)];
                *self.granted.entry(picked.pid.get()).or_insert(0) += 1;
                Decision::Run(orig_idx)
            }
            Decision::Halt => Decision::Halt,
        }
    }
}

/// An adversary that prefers processes about to perform a given kind of
/// operation, delegating tie-breaks to an inner policy.
///
/// Scheduling *writers* preferentially maximizes interference with
/// scanners' double collects — empirically the strongest generic
/// adversary for driving the snapshot algorithms toward their pigeonhole
/// worst case (used by experiment E1 alongside round-robin and random).
#[derive(Debug)]
pub struct OpBiasPolicy<P> {
    prefer: OpKind,
    inner: P,
}

impl<P: SchedulePolicy> OpBiasPolicy<P> {
    /// Prefers processes whose next operation is `prefer`; among those
    /// (or among all, when none match) defers to `inner`.
    pub fn new(prefer: OpKind, inner: P) -> Self {
        OpBiasPolicy { prefer, inner }
    }
}

impl<P: SchedulePolicy> SchedulePolicy for OpBiasPolicy<P> {
    fn choose(&mut self, ready: &[ReadyProcess], step: u64) -> Decision {
        let preferred: Vec<(usize, ReadyProcess)> = ready
            .iter()
            .enumerate()
            .filter(|(_, r)| r.op == self.prefer)
            .map(|(i, r)| (i, *r))
            .collect();
        if preferred.is_empty() {
            return self.inner.choose(ready, step);
        }
        let subset: Vec<ReadyProcess> = preferred.iter().map(|(_, r)| *r).collect();
        match self.inner.choose(&subset, step) {
            Decision::Run(i) => Decision::Run(preferred[i.min(preferred.len() - 1)].0),
            Decision::Halt => Decision::Halt,
        }
    }
}

/// Adapts a closure into a [`SchedulePolicy`], for one-off adversaries in
/// tests.
pub struct FnPolicy<F>(pub F);

impl<F: FnMut(&[ReadyProcess], u64) -> Decision + Send> SchedulePolicy for FnPolicy<F> {
    fn choose(&mut self, ready: &[ReadyProcess], step: u64) -> Decision {
        (self.0)(ready, step)
    }
}

impl<F> fmt::Debug for FnPolicy<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnPolicy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(pids: &[usize]) -> Vec<ReadyProcess> {
        pids.iter()
            .map(|&p| ReadyProcess {
                pid: ProcessId::new(p),
                op: OpKind::Read,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut p = RoundRobinPolicy::new();
        let r = ready(&[0, 1, 2]);
        let picks: Vec<_> = (0..6).map(|s| p.choose(&r, s)).collect();
        assert_eq!(
            picks,
            vec![
                Decision::Run(0),
                Decision::Run(1),
                Decision::Run(2),
                Decision::Run(0),
                Decision::Run(1),
                Decision::Run(2)
            ]
        );
    }

    #[test]
    fn round_robin_skips_missing_processes() {
        let mut p = RoundRobinPolicy::new();
        assert_eq!(p.choose(&ready(&[1, 3]), 0), Decision::Run(0)); // P1
        assert_eq!(p.choose(&ready(&[1, 3]), 1), Decision::Run(1)); // P3
        assert_eq!(p.choose(&ready(&[1, 3]), 2), Decision::Run(0)); // wraps to P1
    }

    #[test]
    fn priority_always_prefers_top_ranked() {
        let mut p = PriorityPolicy::new([ProcessId::new(2), ProcessId::new(0)]);
        assert_eq!(p.choose(&ready(&[0, 1, 2]), 0), Decision::Run(2));
        assert_eq!(p.choose(&ready(&[0, 1]), 1), Decision::Run(0));
        // Unlisted processes rank last, ordered by id.
        assert_eq!(p.choose(&ready(&[1, 3]), 2), Decision::Run(0));
    }

    #[test]
    fn replay_follows_choices_then_falls_back_to_zero() {
        let mut p = ReplayPolicy::new(vec![1, 0]);
        assert_eq!(p.choose(&ready(&[0, 1]), 0), Decision::Run(1));
        assert_eq!(p.choose(&ready(&[0, 1]), 1), Decision::Run(0));
        assert_eq!(p.choose(&ready(&[0, 1]), 2), Decision::Run(0));
        assert_eq!(p.arities(), &[2, 2, 2]);
    }

    #[test]
    fn replay_clamps_out_of_range_choices() {
        let mut p = ReplayPolicy::new(vec![7]);
        assert_eq!(p.choose(&ready(&[0, 1]), 0), Decision::Run(1));
    }

    #[test]
    fn crash_policy_excludes_after_budget() {
        let mut p = CrashPolicy::new(PriorityPolicy::new([ProcessId::new(0)]))
            .crash_after(ProcessId::new(0), 2);
        let r = ready(&[0, 1]);
        assert_eq!(p.choose(&r, 0), Decision::Run(0));
        assert_eq!(p.choose(&r, 1), Decision::Run(0));
        // P0 now crashed: the priority policy only sees P1.
        assert_eq!(p.choose(&r, 2), Decision::Run(1));
        // Only crashed processes ready -> halt.
        assert_eq!(p.choose(&ready(&[0]), 3), Decision::Halt);
    }

    #[test]
    fn op_bias_prefers_matching_ops() {
        let mut p = OpBiasPolicy::new(OpKind::Write, RoundRobinPolicy::new());
        let mixed = [
            ReadyProcess {
                pid: ProcessId::new(0),
                op: OpKind::Read,
            },
            ReadyProcess {
                pid: ProcessId::new(1),
                op: OpKind::Write,
            },
            ReadyProcess {
                pid: ProcessId::new(2),
                op: OpKind::Write,
            },
        ];
        // Only writers are eligible; round robin cycles among them.
        assert_eq!(p.choose(&mixed, 0), Decision::Run(1));
        assert_eq!(p.choose(&mixed, 1), Decision::Run(2));
        assert_eq!(p.choose(&mixed, 2), Decision::Run(1));
        // No writer ready: falls through to the inner policy over all.
        let readers = ready(&[0, 1]);
        assert!(matches!(p.choose(&readers, 3), Decision::Run(_)));
    }

    #[test]
    fn random_policy_is_reproducible() {
        let r = ready(&[0, 1, 2, 3]);
        let a: Vec<_> = {
            let mut p = RandomPolicy::seeded(7);
            (0..20).map(|s| p.choose(&r, s)).collect()
        };
        let b: Vec<_> = {
            let mut p = RandomPolicy::seeded(7);
            (0..20).map(|s| p.choose(&r, s)).collect()
        };
        assert_eq!(a, b);
    }
}
