//! Property tests for the error-rate windowed circuit breaker: the trip
//! rule against a reference sliding-window model, saturation of the
//! consecutive-failure diagnostic, jitter band containment, and a fully
//! deterministic closed → open → half-open → closed lifecycle driven by
//! explicit clock readings — no sleeps anywhere.

use std::time::Duration;

use proptest::prelude::*;
use snapshot_service::{Breaker, BreakerState, Gate, HealthConfig, Priority};

/// Reference model of the outcome window: a plain Vec of outcome bits,
/// newest last, trimmed to the window size.
struct ModelWindow {
    outcomes: Vec<bool>,
    window: usize,
}

impl ModelWindow {
    fn new(window: u32) -> Self {
        ModelWindow { outcomes: Vec::new(), window: window.clamp(1, 64) as usize }
    }

    fn push(&mut self, err: bool) {
        self.outcomes.push(err);
        while self.outcomes.len() > self.window {
            self.outcomes.remove(0);
        }
    }

    /// The specified trip rule, verbatim: rate at-or-over threshold AND
    /// at least `min_volume` outcomes in the window.
    fn tripped(&self, cfg: &HealthConfig) -> bool {
        let len = self.outcomes.len() as u64;
        let errors = self.outcomes.iter().filter(|&&e| e).count() as u64;
        len >= u64::from(cfg.min_volume) && errors * 100 >= u64::from(cfg.trip_error_pct) * len
    }
}

fn configs() -> impl Strategy<Value = HealthConfig> {
    (1u32..=64, 1u8..=100, 1u32..=64).prop_map(|(window, trip_error_pct, min_volume)| {
        HealthConfig {
            window,
            trip_error_pct,
            min_volume,
            cooldown: Duration::from_micros(500),
            ramp_successes: 2,
            ramp_tokens: 1,
            ramp_interval: Duration::from_micros(50),
            jitter_pct: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The breaker trips exactly when the reference model says the
    /// window rate crosses the threshold with the volume guard met —
    /// for arbitrary outcome sequences and arbitrary (window,
    /// threshold, volume) tunings, at the exact same outcome.
    #[test]
    fn trips_iff_rate_over_threshold_and_volume_met(
        cfg in configs(),
        outcomes in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let b = Breaker::new(0);
        let mut model = ModelWindow::new(cfg.window);
        for (i, &err) in outcomes.iter().enumerate() {
            if err {
                b.on_failure(true, 0, &cfg);
            } else {
                b.on_success(0, &cfg);
            }
            model.push(err);
            if model.tripped(&cfg) {
                prop_assert!(
                    b.is_open(0),
                    "outcome {i}: model tripped (rate rule met) but breaker stayed closed"
                );
                prop_assert_eq!(b.trips(), 1);
                return Ok(());
            }
            prop_assert!(
                !b.is_open(0),
                "outcome {i}: breaker tripped early (model rate rule not met)"
            );
        }
        prop_assert_eq!(b.trips(), 0);
    }

    /// The consecutive-failure diagnostic counts up under failures,
    /// resets on success, and saturates instead of wrapping.
    #[test]
    fn consecutive_diagnostic_tracks_failure_runs(
        outcomes in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let cfg = HealthConfig::disabled();
        let b = Breaker::new(1);
        let mut run = 0u32;
        for &err in &outcomes {
            if err {
                b.on_failure(true, 0, &cfg);
                run = run.saturating_add(1);
            } else {
                b.on_success(0, &cfg);
                run = 0;
            }
            prop_assert_eq!(b.consecutive(), run);
        }
    }

    /// Every retry hint an open breaker hands out stays inside the
    /// configured ± jitter band around the remaining cooldown.
    #[test]
    fn retry_hints_stay_inside_the_jitter_band(
        jitter_pct in 0u8..=100,
        seed in any::<u64>(),
        probe_at in 0u64..100_000,
    ) {
        let cooldown_us = 100_000u64;
        let cfg = HealthConfig {
            jitter_pct,
            cooldown: Duration::from_micros(cooldown_us),
            ..HealthConfig::default()
        };
        let b = Breaker::new(seed);
        b.on_failure(false, 0, &cfg); // terminal: open until cooldown_us
        let left = cooldown_us - probe_at;
        match b.check(probe_at, Priority::Full, &cfg) {
            Gate::Shed { retry_after } => {
                let us = retry_after.as_micros() as u64;
                let span = left / 100 * u64::from(jitter_pct)
                    + left % 100 * u64::from(jitter_pct) / 100;
                prop_assert!(
                    (left.saturating_sub(span)..=left + span).contains(&us),
                    "hint {us}µs outside ±{jitter_pct}% of {left}µs"
                );
            }
            g => prop_assert!(false, "open breaker must shed, got {:?}", g),
        }
    }
}

/// The full lifecycle, deterministically: trip on window rate, shed
/// through the cooldown, half-open into the priority ramp (probes first,
/// each success lowering the admitted rank), close after enough
/// successes — every instant an explicit microsecond reading, no sleep.
#[test]
fn deterministic_lifecycle_closed_open_half_open_closed() {
    let cfg = HealthConfig {
        window: 8,
        trip_error_pct: 50,
        min_volume: 4,
        cooldown: Duration::from_micros(1_000),
        ramp_successes: 3,
        ramp_tokens: 4,
        ramp_interval: Duration::from_micros(100_000), // no rank decay by time
        jitter_pct: 0,
    };
    let b = Breaker::new(7);
    assert_eq!(b.state(), BreakerState::Closed);

    // Closed: an alternating shard — the schedule a consecutive-failure
    // breaker can never trip on — crosses the 50% window rate as soon as
    // the volume guard is met.
    for t in 0..2u64 {
        b.on_success(t, &cfg);
        b.on_failure(true, t, &cfg);
    }
    assert_eq!(b.state(), BreakerState::Open { until_us: 1_001 });
    assert_eq!(b.trips(), 1);

    // Open: everything sheds, with the exact remaining cooldown.
    match b.check(501, Priority::Probe, &cfg) {
        Gate::Shed { retry_after } => assert_eq!(retry_after, Duration::from_micros(500)),
        g => panic!("cooling breaker must shed even probes, got {g:?}"),
    }

    // Cooldown elapsed: the first consult half-opens. The ramp starts
    // probe-only; each success admits the next rank down.
    let t = 1_001;
    assert!(matches!(b.check(t, Priority::Full, &cfg), Gate::Shed { .. }));
    assert_eq!(b.state(), BreakerState::HalfOpen { ramp_successes: 0 });
    assert!(matches!(b.check(t, Priority::Probe, &cfg), Gate::Probe));
    b.on_success(t, &cfg);
    assert!(matches!(b.check(t, Priority::Bulk, &cfg), Gate::Shed { .. }));
    assert!(matches!(b.check(t, Priority::Partial, &cfg), Gate::Probe));
    b.on_success(t, &cfg);
    assert_eq!(b.state(), BreakerState::HalfOpen { ramp_successes: 2 });
    assert!(matches!(b.check(t, Priority::Full, &cfg), Gate::Probe));
    b.on_success(t, &cfg);

    // Third success closes the breaker with a clean window: the old
    // outage's evidence cannot re-trip the now-healthy shard.
    assert_eq!(b.state(), BreakerState::Closed);
    assert!(matches!(b.check(t, Priority::Bulk, &cfg), Gate::Admit));
    b.on_failure(true, t, &cfg);
    assert_eq!(b.state(), BreakerState::Closed, "window must restart clean after recovery");
}

/// A half-open failure re-opens a *fresh* cooldown from the failure
/// instant, and the ramp restarts probe-only when it next half-opens.
#[test]
fn half_open_failure_restarts_the_lifecycle() {
    let cfg = HealthConfig {
        window: 4,
        trip_error_pct: 50,
        min_volume: 2,
        cooldown: Duration::from_micros(1_000),
        ramp_successes: 2,
        ramp_tokens: 1,
        ramp_interval: Duration::from_micros(100_000),
        jitter_pct: 0,
    };
    let b = Breaker::new(8);
    b.on_failure(true, 0, &cfg);
    b.on_failure(true, 0, &cfg);
    assert_eq!(b.trips(), 1);

    assert!(matches!(b.check(1_001, Priority::Probe, &cfg), Gate::Probe));
    b.on_failure(true, 1_500, &cfg); // the probe fails
    assert_eq!(b.state(), BreakerState::Open { until_us: 2_500 });
    assert_eq!(b.trips(), 2);
    assert!(matches!(b.check(2_499, Priority::Probe, &cfg), Gate::Shed { .. }));
    assert!(matches!(b.check(2_500, Priority::Probe, &cfg), Gate::Probe));
    b.on_success(2_500, &cfg);
    b.on_success(2_500, &cfg);
    assert_eq!(b.state(), BreakerState::Closed);
}
