//! The sharded snapshot front-end.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snapshot_core::{CoreError, Deadline, RequestCtx, ScanStats, SnapshotView, TrySnapshotCore};
use snapshot_obs::{
    Counter, Event, FallbackReason, Gauge, Histogram, LatencySummary, Registry, SpanId, SpanKind,
    SpanStatus, Trace,
};
use snapshot_registers::{CachePadded, ProcessId, RegisterValue};

use crate::clock::{Clock, MonotonicClock};
use crate::coalesce::{Coalescer, Entry};
use crate::health::{Breaker, Gate, HealthConfig};
use crate::load::{LoadReport, Priority, ShardLoad};
use crate::retry::RetryConfig;
use crate::shard::ShardMap;
use crate::ServiceError;

/// Tuning knobs for a [`SnapshotService`].
///
/// Values are normalized at construction: `shards` is clamped into
/// `[1, segments]`, `max_inflight` and `max_partial_rounds` to at
/// least 1 (`retry.max_attempts` is treated as at least 1 at use, and
/// the health window is clamped into `[1, 64]` by the breaker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of shards the segments are partitioned into (contiguous
    /// balanced ranges, each with its own cache-padded coalescing state).
    pub shards: usize,
    /// Admission budget: requests in flight (including scans parked in a
    /// coalescing rendezvous) beyond this are rejected with
    /// [`ServiceError::Overloaded`].
    pub max_inflight: usize,
    /// Whether concurrent scans coalesce onto shared collects. Off, every
    /// scan runs its own collect — the "solo" mode the equivalence tests
    /// compare against.
    pub coalesce: bool,
    /// Certified-collect passes a partial scan attempts before falling
    /// back to a projected full scan (the wait-free escape hatch).
    pub max_partial_rounds: u32,
    /// Retry budget applied when the backing core returns a retryable
    /// [`CoreError`] (infallible in-process cores never do).
    pub retry: RetryConfig,
    /// Per-shard circuit-breaker tuning for health gating.
    pub health: HealthConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            max_inflight: 256,
            coalesce: true,
            max_partial_rounds: 8,
            retry: RetryConfig::default(),
            health: HealthConfig::default(),
        }
    }
}

/// Per-request statistics reported by the `_with_stats` entry points.
#[must_use]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// True if the request was served from another request's collect
    /// (it joined a coalescing cohort and performed no register
    /// operations itself).
    pub coalesced: bool,
    /// The coalescing generation of the view (0 when coalescing was off
    /// or the request never touched a rendezvous).
    pub generation: u64,
    /// True if a partial scan fell back to projecting a full scan.
    pub fallback_full: bool,
    /// True if a partial scan was served by the backing's **native**
    /// subset scan (`core_scan_subset` — O(touched segments)) rather
    /// than service-level certified collects or a projected full scan.
    pub native_subset: bool,
    /// Certified-collect passes a partial scan performed (0 for full
    /// scans and for fallbacks that never certified).
    pub certified_rounds: u32,
    /// Attempts the retry budget consumed *before* the one that
    /// succeeded (0 when the first attempt went through — always 0 for
    /// infallible in-process cores).
    pub retries: u32,
    /// Register-level statistics of the collect this request ran itself;
    /// all zero for coalesced joins.
    pub underlying: ScanStats,
}

/// An instantaneous picture of a subset of segments, as returned by
/// [`ServiceClient::scan_subset`].
///
/// Segment indices are held in strictly increasing order (the service
/// canonicalizes the request), and `values()[k]` is the observed value of
/// `segments()[k]`.
#[derive(Clone, Debug)]
pub struct PartialView<V> {
    segments: Arc<[usize]>,
    values: Arc<[V]>,
}

impl<V> PartialView<V> {
    fn new(segments: &[usize], values: Arc<[V]>) -> Self {
        debug_assert_eq!(segments.len(), values.len());
        PartialView { segments: segments.into(), values }
    }

    /// The covered segment indices, strictly increasing.
    pub fn segments(&self) -> &[usize] {
        &self.segments
    }

    /// The observed values, aligned with [`segments`](Self::segments).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Number of covered segments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the view covers no segments (never produced by the
    /// service, which rejects empty subsets).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The observed value of `segment`, if it is covered.
    pub fn get(&self, segment: usize) -> Option<&V> {
        let k = self.segments.binary_search(&segment).ok()?;
        Some(&self.values[k])
    }

    /// Iterates `(segment, value)` pairs in segment order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> + '_ {
        self.segments.iter().copied().zip(self.values.iter())
    }
}

/// Pre-resolved metric handles (free-standing until a registry is
/// attached, so the hot path never consults a registry).
#[derive(Clone, Debug, Default)]
struct Metrics {
    coalesced: Counter,
    solo: Counter,
    partial: Counter,
    partial_native: Counter,
    fallback_full: Counter,
    /// Permille of served partial scans that did *not* fall back to a
    /// projected full scan; 1000 while no partial has been served.
    partial_certified_ratio: Gauge,
    overloaded: Counter,
    abdicated: Counter,
    backend_errors: Counter,
    retries: Counter,
    retry_exhausted: Counter,
    degraded: Counter,
    breaker_trips: Counter,
    cohort_errors: Counter,
    deadline_exceeded: Counter,
    load_shed: Counter,
    inflight: Gauge,
    load_skew: Gauge,
    load_hot: Gauge,
    /// Per-shard `service.load.shard{i}.*` gauges, refreshed when a
    /// [`LoadReport`] is taken (empty until a registry is attached —
    /// the registry is not retained, so handles resolve eagerly).
    shard_hits: Vec<Gauge>,
    shard_errors: Vec<Gauge>,
    shard_shed: Vec<Gauge>,
    shard_latency: Vec<Gauge>,
    scan_latency: Histogram,
    partial_latency: Histogram,
    update_latency: Histogram,
}

impl Metrics {
    fn from_registry(registry: &Registry, shards: usize) -> Self {
        let per_shard = |field: &str| -> Vec<Gauge> {
            (0..shards).map(|i| registry.gauge(&format!("service.load.shard{i}.{field}"))).collect()
        };
        Metrics {
            coalesced: registry.counter("service.scan.coalesced"),
            solo: registry.counter("service.scan.solo"),
            partial: registry.counter("service.scan.partial"),
            partial_native: registry.counter("service.partial.native"),
            fallback_full: registry.counter("service.partial.fallback_full"),
            partial_certified_ratio: registry.gauge("service.partial.certified_ratio"),
            overloaded: registry.counter("service.overloaded"),
            abdicated: registry.counter("service.coalesce.abdicated"),
            backend_errors: registry.counter("service.fault.backend_errors"),
            retries: registry.counter("service.fault.retries"),
            retry_exhausted: registry.counter("service.fault.retry_exhausted"),
            degraded: registry.counter("service.fault.degraded_shed"),
            breaker_trips: registry.counter("service.fault.breaker_trips"),
            cohort_errors: registry.counter("service.fault.cohort_errors"),
            deadline_exceeded: registry.counter("service.fault.deadline_exceeded"),
            load_shed: registry.counter("service.load.shed"),
            inflight: registry.gauge("service.inflight"),
            load_skew: registry.gauge("service.load.skew_permille"),
            load_hot: registry.gauge("service.load.hot_shard"),
            shard_hits: per_shard("hits"),
            shard_errors: per_shard("errors"),
            shard_shed: per_shard("shed"),
            shard_latency: per_shard("mean_latency_us"),
            scan_latency: registry.histogram("service.scan.latency_us"),
            partial_latency: registry.histogram("service.partial.latency_us"),
            update_latency: registry.histogram("service.update.latency_us"),
        }
    }
}

/// Which shards' health gates an operation touches.
#[derive(Clone, Copy)]
enum Shards<'a> {
    /// Every shard (full scans read all segments).
    All,
    /// One shard (updates, shard-confined partials).
    One(usize),
    /// An explicit sorted set (multi-shard subsets).
    Set(&'a [usize]),
}

/// Why one attempt inside [`SnapshotService::run_with_retry`] ended
/// without a value.
enum AttemptError {
    /// The backend returned a typed error (retryable or terminal) — the
    /// retry loop decides whether another attempt is worth it.
    Backend(CoreError),
    /// The request's own deadline expired mid-attempt (a coalescing wait
    /// timed out, or the attempt observed the expiry directly). The
    /// deadline belongs to the request, not the attempt: there is nothing
    /// to retry.
    Expired,
}

impl From<CoreError> for AttemptError {
    fn from(e: CoreError) -> Self {
        AttemptError::Backend(e)
    }
}

/// How a service-level certified collect over a subset ended.
enum CertifiedOutcome<V> {
    /// Two adjacent passes matched: `values` is an instantaneous picture
    /// of the subset.
    Certified { values: Vec<V>, rounds: u32, stats: ScanStats },
    /// The construction offers no certified reads (and reported no
    /// native subset path before this): only a projected full scan can
    /// serve the subset.
    Uncertified,
    /// Certified reads exist but interference exhausted the round
    /// budget (`max_partial_rounds`).
    Contended,
}

impl<V> CertifiedOutcome<V> {
    /// The trace-visible reason when this outcome forces a projected
    /// full-scan fallback (never called on `Certified`).
    fn reason(&self) -> FallbackReason {
        match self {
            CertifiedOutcome::Contended => FallbackReason::Contended,
            _ => FallbackReason::Uncertified,
        }
    }
}

/// How a subset (or shard-range) collect was served: the values plus the
/// provenance the per-request [`ServiceStats`] report.
struct SubsetServe<V> {
    values: Arc<[V]>,
    /// Certified passes (native double collects or service-level rounds).
    rounds: u32,
    /// Served by the backing's native O(touched) subset scan.
    native: bool,
    /// Fell back to a projected full scan.
    fallback: bool,
    stats: ScanStats,
}

/// Per-op-class latency quantiles, distilled from the service's log₂-µs
/// histograms by [`SnapshotService::latency_summaries`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceLatency {
    /// Full-scan latency quantiles.
    pub scan: LatencySummary,
    /// Partial-scan latency quantiles.
    pub partial: LatencySummary,
    /// Update latency quantiles.
    pub update: LatencySummary,
}

/// Maps a service outcome onto the span status taxonomy, for closing a
/// request's root span.
fn status_of<T>(out: &Result<T, ServiceError>) -> SpanStatus {
    match out {
        Ok(_) => SpanStatus::Ok,
        Err(ServiceError::DeadlineExceeded { .. }) => SpanStatus::Expired,
        Err(ServiceError::Overloaded { .. } | ServiceError::Degraded { .. }) => SpanStatus::Shed,
        Err(_) => SpanStatus::Error,
    }
}

/// Half-open probes claimed at the gate. Dropping releases any claims so
/// a request that never reports a backend outcome (it joined a cohort,
/// or a later shard's gate shed it) cannot wedge a shard in its probing
/// state. Releasing after the outcome was recorded is harmless — the
/// breaker's `on_success`/`on_failure` already cleared the claim.
struct GateClaims<'a> {
    health: &'a [CachePadded<Breaker>],
    claimed: Vec<usize>,
}

impl Drop for GateClaims<'_> {
    fn drop(&mut self) {
        for &s in &self.claimed {
            self.health[s].release_probe();
        }
    }
}

/// A concurrent front-end over one snapshot object.
///
/// The service multiplexes many clients onto any [`TrySnapshotCore`]
/// backing — every infallible in-process [`SnapshotCore`] construction
/// qualifies via its forwarding impl
/// (`snapshot_core::impl_try_snapshot_core!` lifts custom wrappers too),
/// and fallible message-passing cores (`snapshot-abd`'s
/// `AbdSnapshotCore`) plug in directly — adding four things the raw
/// object does not have:
///
/// * **scan coalescing** — concurrent full scans rendezvous so one
///   double-collect pass serves a whole cohort (the `coalesce` module
///   docs give the generation-counter argument tying this to
///   Observation 2);
/// * **partial scans** — [`ServiceClient::scan_subset`] returns an
///   atomic picture of just the requested segments: served by the
///   backing's **native** O(touched-segments) subset scan when it offers
///   one (`core_scan_subset` — all four in-process constructions and the
///   ABD core do), via service-level certified per-segment collects
///   otherwise, with a projected full scan as the always-correct escape
///   hatch (each fallback is traced as [`Event::PartialFallback`] and
///   sags the `service.partial.certified_ratio` gauge);
/// * **admission control** — a bounded in-flight budget with typed
///   [`ServiceError::Overloaded`] rejections instead of unbounded
///   queueing;
/// * **fault tolerance and load management** — typed backend errors are
///   retried under a per-operation budget ([`RetryConfig`]), fanned out
///   to coalescing cohorts (a failed leader wakes every waiter with the
///   error — no request parks forever behind a dead collect), and shed
///   early by per-shard error-rate windowed circuit breakers
///   ([`HealthConfig`]) once a shard's backend degrades
///   ([`ServiceError::Degraded`]). Shedding and half-open recovery are
///   [`Priority`]-aware (probes first, bulk updates last), every request
///   carries a wall-clock deadline budget (it completes or returns
///   [`ServiceError::DeadlineExceeded`] — never parks past it), and
///   [`load_report`](Self::load_report) diagnoses hot-shard skew.
///
/// Everything is observable through [`Registry`] metrics
/// (`service.scan.*`, `service.fault.*`, `service.inflight`, log₂-µs
/// latency histograms) and [`Trace`] events for every coalescing and
/// failure decision.
///
/// Clients are claimed per lane with [`client`](Self::client); the
/// service itself is `Sync` and meant to be shared by reference across
/// threads.
///
/// [`SnapshotCore`]: snapshot_core::SnapshotCore
pub struct SnapshotService<V: RegisterValue, C: TrySnapshotCore<V>> {
    core: C,
    cfg: ServiceConfig,
    map: ShardMap,
    /// Rendezvous for full scans.
    global: CachePadded<Coalescer<SnapshotView<V>>>,
    /// Per-shard rendezvous for subset scans confined to one shard; the
    /// payload is the shard's contiguous range of values.
    shards: Box<[CachePadded<Coalescer<Arc<[V]>>>]>,
    /// Per-shard circuit breakers.
    health: Box<[CachePadded<Breaker>]>,
    /// Per-shard load accumulators feeding [`LoadReport`].
    load: Box<[CachePadded<ShardLoad>]>,
    /// Time source for breaker cooldowns and half-open ramps
    /// (deterministic lifecycle tests inject a manual clock).
    clock: Arc<dyn Clock>,
    inflight: CachePadded<AtomicUsize>,
    /// Partial scans served (`Ok`) and, of those, how many fell back to
    /// a projected full scan — the pair behind the
    /// `service.partial.certified_ratio` permille gauge.
    partial_served: CachePadded<AtomicU64>,
    partial_fallbacks: CachePadded<AtomicU64>,
    lanes: Box<[AtomicBool]>,
    metrics: Metrics,
    trace: Trace,
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> SnapshotService<V, C> {
    /// Fronts `core` with the default configuration.
    pub fn new(core: C) -> Self {
        Self::with_config(core, ServiceConfig::default())
    }

    /// Fronts `core` with an explicit configuration (normalized; see
    /// [`ServiceConfig`]).
    pub fn with_config(core: C, config: ServiceConfig) -> Self {
        let segments = core.segments();
        assert!(segments > 0, "a snapshot service needs at least one segment");
        let map = ShardMap::new(segments, config.shards);
        let cfg = ServiceConfig {
            shards: map.shards(),
            max_inflight: config.max_inflight.max(1),
            coalesce: config.coalesce,
            max_partial_rounds: config.max_partial_rounds.max(1),
            retry: config.retry,
            health: config.health,
        };
        let lanes = (0..core.lanes()).map(|_| AtomicBool::new(false)).collect();
        SnapshotService {
            cfg,
            map,
            global: CachePadded::new(Coalescer::new()),
            shards: (0..map.shards()).map(|_| CachePadded::new(Coalescer::new())).collect(),
            health: (0..map.shards()).map(|s| CachePadded::new(Breaker::new(s as u64))).collect(),
            load: (0..map.shards()).map(|_| CachePadded::new(ShardLoad::default())).collect(),
            clock: Arc::new(MonotonicClock::new()),
            inflight: CachePadded::new(AtomicUsize::new(0)),
            partial_served: CachePadded::new(AtomicU64::new(0)),
            partial_fallbacks: CachePadded::new(AtomicU64::new(0)),
            lanes,
            metrics: Metrics::default(),
            trace: Trace::disabled(),
            core,
        }
    }

    /// Resolves this service's metrics from `registry` (names under
    /// `service.*`).
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = Metrics::from_registry(registry, self.map.shards());
        self
    }

    /// Replaces the health layer's time source. Breaker cooldowns and
    /// half-open ramps read this clock; tests inject a
    /// [`ManualClock`](crate::ManualClock) and advance it by hand to
    /// drive a full breaker lifecycle without sleeping.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Routes coalescing/admission decisions into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The normalized configuration in effect.
    pub fn config(&self) -> ServiceConfig {
        self.cfg
    }

    /// Number of memory segments the backing object has.
    pub fn segments(&self) -> usize {
        self.core.segments()
    }

    /// Number of client lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The backing snapshot object.
    pub fn backing(&self) -> &C {
        &self.core
    }

    /// Requests currently in flight (admitted and not yet finished).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Scans currently parked in a coalescing rendezvous, waiting for a
    /// collect they can accept.
    pub fn coalescing_waiters(&self) -> usize {
        self.global.waiters() + self.shards.iter().map(|s| s.waiters()).sum::<usize>()
    }

    /// Collect leaderships that ended without a published view, across
    /// the global and all shard rendezvous — explicit backend failures
    /// fanned to their cohorts plus drop-abdications.
    pub fn abdications(&self) -> u64 {
        self.global.abdications() + self.shards.iter().map(|s| s.abdications()).sum::<u64>()
    }

    /// Distills the per-op-class latency histograms into p50/p95/p99
    /// summaries (log₂-µs bucket upper bounds; all zero until a registry
    /// is attached via [`with_registry`](Self::with_registry), since the
    /// free-standing histograms record but a summary of an unobserved
    /// class is empty anyway).
    pub fn latency_summaries(&self) -> ServiceLatency {
        ServiceLatency {
            scan: self.metrics.scan_latency.snapshot().summary(),
            partial: self.metrics.partial_latency.snapshot().summary(),
            update: self.metrics.update_latency.snapshot().summary(),
        }
    }

    /// Permille of served partial scans that did **not** fall back to a
    /// projected full scan (native subset scans and service-level
    /// certified collects both count as certified). Reads 1000 until the
    /// first partial is served, so a quiet service reports healthy.
    ///
    /// The same number is exported as the
    /// `service.partial.certified_ratio` gauge and carried in
    /// [`LoadReport::partial_certified_permille`].
    pub fn partial_certified_permille(&self) -> u64 {
        let served = self.partial_served.load(Ordering::Relaxed);
        if served == 0 {
            return 1000;
        }
        let fallbacks = self.partial_fallbacks.load(Ordering::Relaxed).min(served);
        (served - fallbacks) * 1000 / served
    }

    /// Shards whose health gate is currently open (shedding requests).
    pub fn degraded_shards(&self) -> Vec<usize> {
        let now = self.now_us();
        (0..self.health.len()).filter(|&s| self.health[s].is_open(now)).collect()
    }

    /// Takes an instantaneous [`LoadReport`] across shards: per-shard
    /// hit/error/shed/latency rows plus a skew diagnosis flagging the hot
    /// shard once traffic is meaningfully imbalanced.
    ///
    /// The same numbers are exported to the `service.load.*` gauges (when
    /// a registry is attached) and a [`Event::LoadReport`] trace event is
    /// emitted, so dashboards and post-mortems see what the caller saw.
    pub fn load_report(&self) -> LoadReport {
        let now = self.now_us();
        let stats = (0..self.load.len())
            .map(|s| self.load[s].stat(s, self.health[s].is_open(now)))
            .collect();
        let mut report = LoadReport::compute(stats);
        report.partial_certified_permille = self.partial_certified_permille();
        self.metrics
            .partial_certified_ratio
            .set(report.partial_certified_permille.min(i64::MAX as u64) as i64);
        self.metrics.load_skew.set(report.skew_permille.min(i64::MAX as u64) as i64);
        self.metrics.load_hot.set(report.hot_shard.map_or(-1, |s| s as i64));
        for row in &report.shards {
            let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
            if let Some(g) = self.metrics.shard_hits.get(row.shard) {
                g.set(clamp(row.hits));
            }
            if let Some(g) = self.metrics.shard_errors.get(row.shard) {
                g.set(clamp(row.errors));
            }
            if let Some(g) = self.metrics.shard_shed.get(row.shard) {
                g.set(clamp(row.shed));
            }
            if let Some(g) = self.metrics.shard_latency.get(row.shard) {
                g.set(clamp(row.mean_latency_us));
            }
        }
        let open_shards = report.shards.iter().filter(|s| s.open).count() as u32;
        self.trace.emit(
            0,
            Event::LoadReport {
                hot_shard: report.hot_shard.unwrap_or(usize::MAX),
                skewed: report.is_skewed(),
                skew_permille: report.skew_permille,
                open_shards,
            },
        );
        report
    }

    /// Claims the client for `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or already claimed (one client
    /// per lane, mirroring the per-process handle discipline of the
    /// constructions).
    pub fn client(&self, lane: usize) -> ServiceClient<'_, V, C> {
        assert!(lane < self.lanes.len(), "lane {lane} out of range ({} lanes)", self.lanes.len());
        let was = self.lanes[lane].swap(true, Ordering::AcqRel);
        assert!(!was, "client for lane {lane} already claimed");
        ServiceClient { service: self, lane: ProcessId::new(lane) }
    }

    fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Wait-free admission check: takes an in-flight slot or rejects.
    fn admit(&self) -> Result<Admitted<'_, V, C>, ServiceError> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cfg.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.metrics.overloaded.inc();
            self.trace.emit(0, Event::ServiceOverload { inflight: prev });
            return Err(ServiceError::Overloaded { inflight: prev, budget: self.cfg.max_inflight });
        }
        self.metrics.inflight.add(1);
        Ok(Admitted { service: self })
    }

    /// Consults the health gates of every shard the operation touches:
    /// sheds with [`ServiceError::Degraded`] if any breaker is open
    /// (releasing probes claimed on earlier shards), claims half-open
    /// probes otherwise.
    fn gate(
        &self,
        lane: ProcessId,
        shards: impl IntoIterator<Item = usize>,
        priority: Priority,
    ) -> Result<GateClaims<'_>, ServiceError> {
        let now = self.now_us();
        let mut claims = GateClaims { health: &self.health, claimed: Vec::new() };
        for s in shards {
            match self.health[s].check(now, priority, &self.cfg.health) {
                Gate::Admit => {}
                Gate::Probe => claims.claimed.push(s),
                Gate::Shed { retry_after } => {
                    let retry_after = self.shed_hint(s, retry_after);
                    self.load[s].record_shed();
                    self.metrics.degraded.inc();
                    self.metrics.load_shed.inc();
                    self.trace.emit(
                        lane.get(),
                        Event::ShardShed {
                            shard: s,
                            rank: priority.rank(),
                            retry_after_us: retry_after.as_micros().min(u128::from(u64::MAX))
                                as u64,
                        },
                    );
                    return Err(ServiceError::Degraded { shard: s, retry_after });
                }
            }
        }
        Ok(claims)
    }

    /// Stretches a shed hint when `shard` is the hot shard of a skewed
    /// load distribution, so the shed cohort's retries spread out instead
    /// of re-converging on the hotspot the moment it half-opens.
    fn shed_hint(&self, shard: usize, base: Duration) -> Duration {
        let stats = (0..self.load.len()).map(|s| self.load[s].stat(s, false)).collect();
        LoadReport::compute(stats).retry_after_hint(shard, base)
    }

    fn record_ok(&self, shards: Shards<'_>, latency: Duration) {
        let cfg = &self.cfg.health;
        let now = self.now_us();
        let one = |s: usize| {
            if self.health[s].on_success(now, cfg) {
                self.note_breaker_trip(s);
            }
            self.load[s].record_hit(latency);
        };
        match shards {
            Shards::All => (0..self.health.len()).for_each(one),
            Shards::One(s) => one(s),
            Shards::Set(set) => set.iter().copied().for_each(one),
        }
    }

    fn record_err(&self, shards: Shards<'_>, retryable: bool) {
        let now = self.now_us();
        let cfg = &self.cfg.health;
        let one = |s: usize| {
            if self.health[s].on_failure(retryable, now, cfg) {
                self.note_breaker_trip(s);
            }
            self.load[s].record_error();
        };
        match shards {
            Shards::All => (0..self.health.len()).for_each(one),
            Shards::One(s) => one(s),
            Shards::Set(set) => set.iter().copied().for_each(one),
        }
    }

    /// A shard's breaker just tripped open: bump the counter and emit the
    /// trace event (which also wakes any attached flight recorder).
    fn note_breaker_trip(&self, shard: usize) {
        self.metrics.breaker_trips.inc();
        self.trace
            .emit(0, Event::BreakerTrip { shard, trips: self.health[shard].trips() });
    }

    /// Accounting shared by every backend error this request observed
    /// from its *own* core operation (cohort fan-outs are accounted by
    /// the failed leader, not the waiters).
    fn note_backend_error(
        &self,
        lane: ProcessId,
        attempt: u32,
        error: &CoreError,
        shards: Shards<'_>,
    ) {
        self.record_err(shards, error.retryable());
        self.metrics.backend_errors.inc();
        self.trace
            .emit(lane.get(), Event::BackendError { attempt, retryable: error.retryable() });
    }

    /// One core scan with health/metrics accounting, its wait capped by
    /// the request's deadline. `ctx` carries the collect span the scan
    /// runs under, so a fallible core can parent its quorum phases.
    fn core_scan_recorded(
        &self,
        lane: ProcessId,
        attempt: u32,
        shards: Shards<'_>,
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        let started = Instant::now();
        match self.core.try_scan_ctx(lane, deadline, ctx) {
            Ok(out) => {
                self.record_ok(shards, started.elapsed());
                Ok(out)
            }
            Err(e) => {
                self.note_backend_error(lane, attempt, &e, shards);
                Err(e)
            }
        }
    }

    /// Accounting shared by every deadline expiry: typed error, metric,
    /// trace event.
    fn deadline_exceeded(&self, lane: ProcessId, attempts: u32, budget: Duration) -> ServiceError {
        self.metrics.deadline_exceeded.inc();
        self.trace.emit(
            lane.get(),
            Event::DeadlineExceeded {
                attempts,
                budget_us: budget.as_micros().min(u128::from(u64::MAX)) as u64,
            },
        );
        ServiceError::DeadlineExceeded { attempts, budget }
    }

    /// Drives `attempt_fn` under the configured retry budget *and* the
    /// request's deadline: retryable [`CoreError`]s are retried with
    /// capped deterministic backoff until the attempt budget runs out
    /// (→ [`ServiceError::Backend`]); terminal errors surface
    /// immediately. The deadline cuts the loop at three points — before
    /// an attempt starts, when an attempt reports its own expiry (a
    /// coalescing wait timed out), and before a backoff that would sleep
    /// past it — each mapping to [`ServiceError::DeadlineExceeded`].
    ///
    /// Each attempt runs inside its own [`SpanKind::Attempt`] span (the
    /// id is handed to `attempt_fn` so the attempt's collect/park spans
    /// nest under it), and each backoff sleep inside a
    /// [`SpanKind::Backoff`] span — both children of `parent`, so a
    /// stalled request's flight recording names the phase that ate the
    /// budget.
    fn run_with_retry<T>(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        budget: Duration,
        parent: SpanId,
        mut attempt_fn: impl FnMut(u32, SpanId) -> Result<T, AttemptError>,
    ) -> Result<T, ServiceError> {
        let retry = self.cfg.retry;
        let mut backoff = retry.initial_backoff;
        let mut attempts = 0u32;
        loop {
            if deadline.expired() {
                return Err(self.deadline_exceeded(lane, attempts, budget));
            }
            attempts += 1;
            let span = self.trace.span(lane.get(), SpanKind::Attempt, parent);
            span.note("attempt", u64::from(attempts));
            let error = match attempt_fn(attempts, span.id()) {
                Ok(v) => {
                    span.end(SpanStatus::Ok);
                    return Ok(v);
                }
                Err(AttemptError::Expired) => {
                    span.end(SpanStatus::Expired);
                    return Err(self.deadline_exceeded(lane, attempts, budget));
                }
                Err(AttemptError::Backend(e)) => {
                    span.end(SpanStatus::Error);
                    e
                }
            };
            if !error.retryable() || attempts >= retry.max_attempts.max(1) {
                self.metrics.retry_exhausted.inc();
                self.trace.emit(lane.get(), Event::RetryExhausted { attempts });
                return Err(ServiceError::Backend { attempts, error });
            }
            if deadline.remaining().is_some_and(|left| left <= backoff) {
                // The backoff would sleep past the deadline: fail fast
                // instead of napping into a guaranteed expiry.
                return Err(self.deadline_exceeded(lane, attempts, budget));
            }
            self.metrics.retries.inc();
            let pause = self.trace.span(lane.get(), SpanKind::Backoff, parent);
            pause.note("backoff_us", backoff.as_micros().min(u128::from(u64::MAX)) as u64);
            std::thread::sleep(backoff);
            pause.end(SpanStatus::Ok);
            backoff = retry.next_backoff(backoff);
        }
    }

    /// One full scan, coalesced when enabled, under the retry budget.
    /// Counts toward `service.scan.solo` (ran the collect) or
    /// `service.scan.coalesced` (joined someone else's).
    fn full_scan(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        budget: Duration,
        parent: SpanId,
    ) -> Result<(SnapshotView<V>, ServiceStats), ServiceError> {
        self.run_with_retry(lane, deadline, budget, parent, |attempt, span| {
            self.scan_attempt(lane, attempt, deadline, span)
        })
    }

    /// One attempt of a full scan: join, fail over, or lead-and-collect.
    /// `parent` is the attempt span: the rendezvous park and the lead's
    /// collect open as its children, and a joiner's park records a
    /// `follows` edge to the lead's collect span.
    fn scan_attempt(
        &self,
        lane: ProcessId,
        attempt: u32,
        deadline: Deadline,
        parent: SpanId,
    ) -> Result<(SnapshotView<V>, ServiceStats), AttemptError> {
        let retries = attempt - 1;
        if !self.cfg.coalesce {
            let collect = self.trace.span(lane.get(), SpanKind::Collect, parent);
            let ctx = RequestCtx::under(collect.id());
            return match self.core_scan_recorded(lane, attempt, Shards::All, deadline, ctx) {
                Ok((view, stats)) => {
                    collect.end(SpanStatus::Ok);
                    self.metrics.solo.inc();
                    Ok((view, ServiceStats { retries, underlying: stats, ..ServiceStats::default() }))
                }
                Err(e) => {
                    collect.end(SpanStatus::Error);
                    Err(e.into())
                }
            };
        }
        let park = self.trace.span(lane.get(), SpanKind::CoalescePark, parent);
        match self.global.enter(deadline) {
            Entry::Expired => {
                park.end(SpanStatus::Expired);
                Err(AttemptError::Expired)
            }
            Entry::Joined { generation, view, lead_span } => {
                park.follows_from(SpanId::from_raw(lead_span));
                park.end(SpanStatus::Ok);
                self.metrics.coalesced.inc();
                self.trace.emit(lane.get(), Event::CoalesceJoin { generation });
                Ok((
                    view,
                    ServiceStats { coalesced: true, generation, retries, ..ServiceStats::default() },
                ))
            }
            Entry::Failed { error, .. } => {
                // The leader elected to serve this request died; its error
                // reaches us through the rendezvous. It already did the
                // health/backend accounting — we only consume our own
                // retry budget on it.
                park.end(SpanStatus::Error);
                self.metrics.cohort_errors.inc();
                Err(error.into())
            }
            Entry::Lead(token) => {
                park.end(SpanStatus::Ok);
                let generation = token.generation();
                self.trace.emit(lane.get(), Event::CoalesceLead { generation });
                let collect = self.trace.span(lane.get(), SpanKind::Collect, parent);
                collect.note("generation", generation);
                let ctx = RequestCtx::under(collect.id());
                match self.core_scan_recorded(lane, attempt, Shards::All, deadline, ctx) {
                    Ok((view, stats)) => {
                        let collect_span = collect.id().raw();
                        collect.end(SpanStatus::Ok);
                        token.publish(view.clone(), collect_span);
                        self.metrics.solo.inc();
                        Ok((
                            view,
                            ServiceStats {
                                generation,
                                retries,
                                underlying: stats,
                                ..ServiceStats::default()
                            },
                        ))
                    }
                    Err(e) => {
                        // Cohort-safe abdication: fan the error out so no
                        // waiter parks forever behind this dead collect.
                        collect.end(SpanStatus::Error);
                        self.metrics.abdicated.inc();
                        self.trace.emit(lane.get(), Event::CoalesceAbdicate { generation });
                        token.fail(e.clone());
                        Err(e.into())
                    }
                }
            }
        }
    }

    /// Double collect over `subset` using certified reads: two adjacent
    /// passes whose certificates all match make the second pass an
    /// instantaneous picture of the subset (Observation 1 projected —
    /// certificates are ABA-free, so unchanged certificates mean *no
    /// write at all* completed in between). The service-level layer
    /// behind constructions without a native subset path; backend errors
    /// surface as `Err`.
    fn certified_collect(
        &self,
        lane: ProcessId,
        subset: &[usize],
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<CertifiedOutcome<V>, CoreError> {
        let mut stats = ScanStats::default();
        let read_all = |stats: &mut ScanStats| -> Result<Option<Vec<(V, u64)>>, CoreError> {
            stats.reads += subset.len() as u64;
            subset
                .iter()
                .map(|&s| self.core.try_certified_read_ctx(lane, s, deadline, ctx))
                .collect()
        };
        let Some(mut prev) = read_all(&mut stats)? else {
            return Ok(CertifiedOutcome::Uncertified);
        };
        for round in 1..=self.cfg.max_partial_rounds {
            let Some(next) = read_all(&mut stats)? else {
                return Ok(CertifiedOutcome::Uncertified);
            };
            let clean = prev.iter().zip(&next).all(|(a, b)| a.1 == b.1);
            if clean {
                stats.double_collects = round;
                let values = next.into_iter().map(|(v, _)| v).collect();
                return Ok(CertifiedOutcome::Certified { values, rounds: round, stats });
            }
            prev = next;
        }
        Ok(CertifiedOutcome::Contended)
    }

    /// One native subset scan on the backing, if it offers one.
    /// `Ok(None)` means "no certified subset view this time" — either the
    /// construction has no native path, or a bounded interference budget
    /// ran out — and the caller proceeds to service-level certified
    /// collects and the projected-full-scan escape hatch.
    fn native_collect(
        &self,
        lane: ProcessId,
        subset: &[usize],
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        let out = self.core.try_scan_subset_ctx(lane, subset, deadline, ctx)?;
        if out.is_some() {
            self.metrics.partial_native.inc();
        }
        Ok(out)
    }

    /// Produces the value range of one shard: the backing's native subset
    /// scan over the range when it has one, a certified collect
    /// otherwise, and a projected full collect as the escape hatch — run
    /// directly on the core (not through the global rendezvous: a shard
    /// leader must make progress without waiting on other leaders).
    fn shard_collect(
        &self,
        lane: ProcessId,
        shard: usize,
        attempt: u32,
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<SubsetServe<V>, CoreError> {
        let range = self.map.range(shard);
        let segs: Vec<usize> = range.clone().collect();
        let started = Instant::now();
        match self.native_collect(lane, &segs, deadline, ctx) {
            Ok(Some((values, stats))) => {
                self.record_ok(Shards::One(shard), started.elapsed());
                return Ok(SubsetServe {
                    values: values.into(),
                    rounds: stats.double_collects,
                    native: true,
                    fallback: false,
                    stats,
                });
            }
            Ok(None) => {}
            Err(e) => {
                self.note_backend_error(lane, attempt, &e, Shards::One(shard));
                return Err(e);
            }
        }
        match self.certified_collect(lane, &segs, deadline, ctx) {
            Ok(CertifiedOutcome::Certified { values, rounds, stats }) => {
                self.record_ok(Shards::One(shard), started.elapsed());
                Ok(SubsetServe { values: values.into(), rounds, native: false, fallback: false, stats })
            }
            Ok(outcome) => {
                self.trace.emit(
                    lane.get(),
                    Event::PartialFallback { segments: segs.len(), reason: outcome.reason() },
                );
                let (view, stats) =
                    self.core_scan_recorded(lane, attempt, Shards::One(shard), deadline, ctx)?;
                Ok(SubsetServe {
                    values: view[range].iter().cloned().collect(),
                    rounds: 0,
                    native: false,
                    fallback: true,
                    stats,
                })
            }
            Err(e) => {
                self.note_backend_error(lane, attempt, &e, Shards::One(shard));
                Err(e)
            }
        }
    }

    /// The partial-scan brain: single-shard subsets go through the
    /// shard's rendezvous; anything else runs a direct certified collect,
    /// falling back to a projected full collect (wait-free: the full scan
    /// is the constructions' own bounded algorithm). `covered` is the
    /// sorted set of shards the subset touches (for health accounting).
    fn partial_scan(
        &self,
        lane: ProcessId,
        subset: &[usize],
        covered: &[usize],
        deadline: Deadline,
        budget: Duration,
        parent: SpanId,
    ) -> Result<(PartialView<V>, ServiceStats), ServiceError> {
        let segments = self.core.segments();
        if subset.len() == segments {
            // Full coverage: this *is* a full scan, serve it as one (the
            // full-scan path owns its retry budget).
            let (view, stats) = self.full_scan(lane, deadline, budget, parent)?;
            let values: Arc<[V]> = view.iter().cloned().collect();
            return Ok((PartialView::new(subset, values), stats));
        }
        self.run_with_retry(lane, deadline, budget, parent, |attempt, span| {
            self.partial_attempt(lane, subset, covered, attempt, deadline, span)
        })
    }

    /// One attempt of a non-full-coverage partial scan. `parent` is the
    /// attempt span (see [`scan_attempt`](Self::scan_attempt) for the
    /// park/collect span discipline, identical here).
    fn partial_attempt(
        &self,
        lane: ProcessId,
        subset: &[usize],
        covered: &[usize],
        attempt: u32,
        deadline: Deadline,
        parent: SpanId,
    ) -> Result<(PartialView<V>, ServiceStats), AttemptError> {
        let retries = attempt - 1;
        if self.cfg.coalesce {
            if let Some(shard) = self.map.shard_containing(subset) {
                let start = self.map.range(shard).start;
                let project = |range_values: &[V]| -> Arc<[V]> {
                    subset.iter().map(|&s| range_values[s - start].clone()).collect()
                };
                let park = self.trace.span(lane.get(), SpanKind::CoalescePark, parent);
                return match self.shards[shard].enter(deadline) {
                    Entry::Expired => {
                        park.end(SpanStatus::Expired);
                        Err(AttemptError::Expired)
                    }
                    Entry::Joined { generation, view, lead_span } => {
                        park.follows_from(SpanId::from_raw(lead_span));
                        park.end(SpanStatus::Ok);
                        self.metrics.coalesced.inc();
                        self.trace.emit(lane.get(), Event::CoalesceJoin { generation });
                        let stats = ServiceStats {
                            coalesced: true,
                            generation,
                            retries,
                            ..ServiceStats::default()
                        };
                        Ok((PartialView::new(subset, project(&view)), stats))
                    }
                    Entry::Failed { error, .. } => {
                        park.end(SpanStatus::Error);
                        self.metrics.cohort_errors.inc();
                        Err(error.into())
                    }
                    Entry::Lead(token) => {
                        park.end(SpanStatus::Ok);
                        let generation = token.generation();
                        self.trace.emit(lane.get(), Event::CoalesceLead { generation });
                        let collect = self.trace.span(lane.get(), SpanKind::Collect, parent);
                        collect.note("generation", generation);
                        collect.note("shard", shard as u64);
                        let ctx = RequestCtx::under(collect.id());
                        match self.shard_collect(lane, shard, attempt, deadline, ctx) {
                            Ok(serve) => {
                                let collect_span = collect.id().raw();
                                collect.end(SpanStatus::Ok);
                                token.publish(serve.values.clone(), collect_span);
                                self.metrics.solo.inc();
                                let stats = ServiceStats {
                                    generation,
                                    fallback_full: serve.fallback,
                                    native_subset: serve.native,
                                    certified_rounds: serve.rounds,
                                    retries,
                                    underlying: serve.stats,
                                    ..ServiceStats::default()
                                };
                                Ok((PartialView::new(subset, project(&serve.values)), stats))
                            }
                            Err(e) => {
                                collect.end(SpanStatus::Error);
                                self.metrics.abdicated.inc();
                                self.trace.emit(lane.get(), Event::CoalesceAbdicate { generation });
                                token.fail(e.clone());
                                Err(e.into())
                            }
                        }
                    }
                };
            }
        }
        let started = Instant::now();
        let collect = self.trace.span(lane.get(), SpanKind::Collect, parent);
        let ctx = RequestCtx::under(collect.id());
        // Native first: the backing reads exactly the touched segments.
        match self.native_collect(lane, subset, deadline, ctx) {
            Ok(Some((values, stats))) => {
                collect.end(SpanStatus::Ok);
                self.record_ok(Shards::Set(covered), started.elapsed());
                self.metrics.solo.inc();
                let stats = ServiceStats {
                    native_subset: true,
                    certified_rounds: stats.double_collects,
                    retries,
                    underlying: stats,
                    ..ServiceStats::default()
                };
                return Ok((PartialView::new(subset, values.into()), stats));
            }
            Ok(None) => {}
            Err(e) => {
                collect.end(SpanStatus::Error);
                self.note_backend_error(lane, attempt, &e, Shards::Set(covered));
                return Err(e.into());
            }
        }
        match self.certified_collect(lane, subset, deadline, ctx) {
            Ok(CertifiedOutcome::Certified { values, rounds, stats }) => {
                collect.end(SpanStatus::Ok);
                self.record_ok(Shards::Set(covered), started.elapsed());
                self.metrics.solo.inc();
                let stats = ServiceStats {
                    certified_rounds: rounds,
                    retries,
                    underlying: stats,
                    ..ServiceStats::default()
                };
                Ok((PartialView::new(subset, values.into()), stats))
            }
            Ok(outcome) => {
                // Projected full-collect fallback, run directly on the
                // core: the outer loop owns the retry budget, and routing
                // it through the global rendezvous would stack a second
                // budget on top.
                self.trace.emit(
                    lane.get(),
                    Event::PartialFallback { segments: subset.len(), reason: outcome.reason() },
                );
                match self.core_scan_recorded(lane, attempt, Shards::Set(covered), deadline, ctx) {
                    Ok((view, stats)) => {
                        collect.end(SpanStatus::Ok);
                        self.metrics.solo.inc();
                        let values: Arc<[V]> = subset.iter().map(|&s| view[s].clone()).collect();
                        let stats = ServiceStats {
                            fallback_full: true,
                            retries,
                            underlying: stats,
                            ..ServiceStats::default()
                        };
                        Ok((PartialView::new(subset, values), stats))
                    }
                    Err(e) => {
                        collect.end(SpanStatus::Error);
                        Err(e.into())
                    }
                }
            }
            Err(e) => {
                collect.end(SpanStatus::Error);
                self.note_backend_error(lane, attempt, &e, Shards::Set(covered));
                Err(e.into())
            }
        }
    }

    fn check_segment(&self, segment: usize) -> Result<(), ServiceError> {
        let segments = self.core.segments();
        if segment >= segments {
            return Err(ServiceError::InvalidSegment { segment, segments });
        }
        Ok(())
    }

    /// Sorted, deduplicated, validated copy of a requested subset.
    fn canonical_subset(&self, segments: &[usize]) -> Result<Vec<usize>, ServiceError> {
        if segments.is_empty() {
            return Err(ServiceError::EmptySubset);
        }
        let mut subset = segments.to_vec();
        subset.sort_unstable();
        subset.dedup();
        self.check_segment(*subset.last().expect("non-empty"))?;
        Ok(subset)
    }

    /// The sorted set of shards a canonical (sorted) subset touches.
    fn covered_shards(&self, subset: &[usize]) -> Vec<usize> {
        let mut shards: Vec<usize> = subset.iter().map(|&s| self.map.shard_of(s)).collect();
        shards.dedup(); // sorted subset → monotone shard indices
        shards
    }
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> std::fmt::Debug for SnapshotService<V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotService")
            .field("segments", &self.core.segments())
            .field("lanes", &self.lanes.len())
            .field("config", &self.cfg)
            .finish()
    }
}

/// RAII in-flight slot.
struct Admitted<'a, V: RegisterValue, C: TrySnapshotCore<V>> {
    service: &'a SnapshotService<V, C>,
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> Drop for Admitted<'_, V, C> {
    fn drop(&mut self) {
        self.service.inflight.fetch_sub(1, Ordering::AcqRel);
        self.service.metrics.inflight.add(-1);
    }
}

/// One lane's interface to a [`SnapshotService`].
///
/// Operations take `&mut self`: a lane runs at most one request at a
/// time, which is exactly the discipline the constructions' handle
/// registry enforces underneath.
pub struct ServiceClient<'a, V: RegisterValue, C: TrySnapshotCore<V>> {
    service: &'a SnapshotService<V, C>,
    lane: ProcessId,
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> ServiceClient<'_, V, C> {
    /// The lane this client owns.
    pub fn lane(&self) -> usize {
        self.lane.get()
    }

    /// The service this client belongs to.
    pub fn service(&self) -> &SnapshotService<V, C> {
        self.service
    }

    /// A full scan: an instantaneous view of all segments.
    pub fn scan(&mut self) -> Result<SnapshotView<V>, ServiceError> {
        self.scan_with_stats().map(|(view, _)| view)
    }

    /// Like [`scan`](Self::scan), but under an explicit wall-clock
    /// budget: the request either completes within `budget` or returns
    /// [`ServiceError::DeadlineExceeded`] — it never parks past it. The
    /// deadline is carried through admission, the coalescing rendezvous
    /// (a waiter honors its *own* budget, never the leader's), retry
    /// backoffs, and a fallible backend's quorum waits.
    pub fn scan_within(&mut self, budget: Duration) -> Result<SnapshotView<V>, ServiceError> {
        self.scan_budgeted(Deadline::after(budget), budget).map(|(view, _)| view)
    }

    /// Like [`scan`](Self::scan), also reporting how the request was
    /// served. The default budget is the retry deadline
    /// ([`RetryConfig::deadline`]).
    pub fn scan_with_stats(
        &mut self,
    ) -> Result<(SnapshotView<V>, ServiceStats), ServiceError> {
        let budget = self.service.cfg.retry.deadline;
        self.scan_budgeted(Deadline::after(budget), budget)
    }

    fn scan_budgeted(
        &mut self,
        deadline: Deadline,
        budget: Duration,
    ) -> Result<(SnapshotView<V>, ServiceStats), ServiceError> {
        let svc = self.service;
        // The root span opens before admission and the deadline check, so
        // sheds and instant expiries still appear in the request's tree.
        let root = svc.trace.root_span(self.lane.get(), SpanKind::Scan);
        let out = (|| {
            if deadline.expired() {
                return Err(svc.deadline_exceeded(self.lane, 0, budget));
            }
            let _slot = svc.admit()?;
            let _claims = svc.gate(self.lane, 0..svc.map.shards(), Priority::Full)?;
            let start = Instant::now();
            let out = svc.full_scan(self.lane, deadline, budget, root.id());
            svc.metrics.scan_latency.record(start.elapsed());
            out
        })();
        root.end(status_of(&out));
        out
    }

    /// A partial scan: an instantaneous picture of `segments` only
    /// (deduplicated and sorted; the view reports the canonical order).
    pub fn scan_subset(&mut self, segments: &[usize]) -> Result<PartialView<V>, ServiceError> {
        self.scan_subset_with_stats(segments).map(|(view, _)| view)
    }

    /// Like [`scan_subset`](Self::scan_subset) under an explicit
    /// wall-clock budget (see [`scan_within`](Self::scan_within) for the
    /// deadline rules).
    pub fn scan_subset_within(
        &mut self,
        segments: &[usize],
        budget: Duration,
    ) -> Result<PartialView<V>, ServiceError> {
        self.subset_budgeted(segments, Deadline::after(budget), budget).map(|(view, _)| view)
    }

    /// Like [`scan_subset`](Self::scan_subset), also reporting how the
    /// request was served.
    pub fn scan_subset_with_stats(
        &mut self,
        segments: &[usize],
    ) -> Result<(PartialView<V>, ServiceStats), ServiceError> {
        let budget = self.service.cfg.retry.deadline;
        self.subset_budgeted(segments, Deadline::after(budget), budget)
    }

    fn subset_budgeted(
        &mut self,
        segments: &[usize],
        deadline: Deadline,
        budget: Duration,
    ) -> Result<(PartialView<V>, ServiceStats), ServiceError> {
        let svc = self.service;
        let root = svc.trace.root_span(self.lane.get(), SpanKind::PartialScan);
        let out = (|| {
            let subset = svc.canonical_subset(segments)?;
            let covered = svc.covered_shards(&subset);
            if deadline.expired() {
                return Err(svc.deadline_exceeded(self.lane, 0, budget));
            }
            let _slot = svc.admit()?;
            let _claims = svc.gate(self.lane, covered.iter().copied(), Priority::Partial)?;
            let start = Instant::now();
            let out =
                svc.partial_scan(self.lane, &subset, &covered, deadline, budget, root.id());
            svc.metrics.partial.inc();
            svc.metrics.partial_latency.record(start.elapsed());
            if let Ok((_, stats)) = &out {
                svc.partial_served.fetch_add(1, Ordering::Relaxed);
                if stats.fallback_full {
                    svc.partial_fallbacks.fetch_add(1, Ordering::Relaxed);
                    svc.metrics.fallback_full.inc();
                }
                svc.metrics
                    .partial_certified_ratio
                    .set(svc.partial_certified_permille().min(i64::MAX as u64) as i64);
                svc.trace.emit(
                    self.lane.get(),
                    Event::PartialCollect {
                        segments: subset.len(),
                        rounds: stats.certified_rounds,
                        fallback: stats.fallback_full,
                    },
                );
            }
            out
        })();
        root.end(status_of(&out));
        out
    }

    /// Writes `value` to `segment`.
    ///
    /// For single-writer constructions `segment` must equal this client's
    /// lane ([`ServiceError::NotOwner`] otherwise); multi-writer backings
    /// accept any segment.
    ///
    /// A failed update ([`ServiceError::Backend`]) is **indeterminate**:
    /// the write may or may not have taken effect (retries re-apply the
    /// same value, which is idempotent at the snapshot level). This is
    /// the same boundary an ABD write that loses its quorum sits on.
    pub fn update(&mut self, segment: usize, value: V) -> Result<(), ServiceError> {
        self.update_with_stats(segment, value).map(|_| ())
    }

    /// Like [`update`](Self::update) under an explicit wall-clock budget
    /// (see [`scan_within`](Self::scan_within) for the deadline rules).
    /// A [`ServiceError::DeadlineExceeded`] whose attempt count is
    /// nonzero is **indeterminate**, exactly like a failed
    /// [`Backend`](ServiceError::Backend) update.
    pub fn update_within(
        &mut self,
        segment: usize,
        value: V,
        budget: Duration,
    ) -> Result<(), ServiceError> {
        self.update_budgeted(segment, value, Deadline::after(budget), budget).map(|_| ())
    }

    /// Like [`update`](Self::update), also reporting the embedded scan's
    /// statistics.
    pub fn update_with_stats(
        &mut self,
        segment: usize,
        value: V,
    ) -> Result<ScanStats, ServiceError> {
        let budget = self.service.cfg.retry.deadline;
        self.update_budgeted(segment, value, Deadline::after(budget), budget)
    }

    fn update_budgeted(
        &mut self,
        segment: usize,
        value: V,
        deadline: Deadline,
        budget: Duration,
    ) -> Result<ScanStats, ServiceError> {
        let svc = self.service;
        let root = svc.trace.root_span(self.lane.get(), SpanKind::Update);
        let out = (|| {
            svc.check_segment(segment)?;
            if svc.core.single_writer() && segment != self.lane.get() {
                return Err(ServiceError::NotOwner { lane: self.lane.get(), segment });
            }
            if deadline.expired() {
                return Err(svc.deadline_exceeded(self.lane, 0, budget));
            }
            let _slot = svc.admit()?;
            let shard = svc.map.shard_of(segment);
            let _claims = svc.gate(self.lane, [shard], Priority::Bulk)?;
            let start = Instant::now();
            let out = svc.run_with_retry(self.lane, deadline, budget, root.id(), |attempt, span| {
                let op_start = Instant::now();
                let ctx = RequestCtx::under(span);
                match svc.core.try_update_ctx(self.lane, segment, value.clone(), deadline, ctx) {
                    Ok(stats) => {
                        svc.record_ok(Shards::One(shard), op_start.elapsed());
                        Ok(stats)
                    }
                    Err(e) => {
                        svc.note_backend_error(self.lane, attempt, &e, Shards::One(shard));
                        Err(e.into())
                    }
                }
            });
            svc.metrics.update_latency.record(start.elapsed());
            out
        })();
        root.end(status_of(&out));
        out
    }

    /// A single-shard health probe: the cheapest read that produces
    /// backend evidence for `shard`'s breaker. Probe-class traffic is the
    /// first class a half-open breaker re-admits, so probing a degraded
    /// shard drives its recovery instead of waiting for organic traffic
    /// to ramp it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn probe_shard(&mut self, shard: usize) -> Result<(), ServiceError> {
        let svc = self.service;
        assert!(
            shard < svc.map.shards(),
            "shard {shard} out of range ({} shards)",
            svc.map.shards()
        );
        let budget = svc.cfg.retry.deadline;
        let deadline = Deadline::after(budget);
        let root = svc.trace.root_span(self.lane.get(), SpanKind::Probe);
        let out = (|| {
            let _slot = svc.admit()?;
            let _claims = svc.gate(self.lane, [shard], Priority::Probe)?;
            let segment = svc.map.range(shard).start;
            svc.run_with_retry(self.lane, deadline, budget, root.id(), |attempt, span| {
                let started = Instant::now();
                let ctx = RequestCtx::under(span);
                let outcome = match svc.core.try_certified_read_ctx(
                    self.lane, segment, deadline, ctx,
                ) {
                    Ok(Some(_)) => Ok(()),
                    // No certified reads: fall back to a full collect run
                    // directly on the core (still evidence the shard's
                    // backend answers).
                    Ok(None) => svc.core.try_scan_ctx(self.lane, deadline, ctx).map(|_| ()),
                    Err(e) => Err(e),
                };
                match outcome {
                    Ok(()) => {
                        svc.record_ok(Shards::One(shard), started.elapsed());
                        Ok(())
                    }
                    Err(e) => {
                        svc.note_backend_error(self.lane, attempt, &e, Shards::One(shard));
                        Err(e.into())
                    }
                }
            })
        })();
        root.end(status_of(&out));
        out
    }
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> Drop for ServiceClient<'_, V, C> {
    fn drop(&mut self) {
        self.service.lanes[self.lane.get()].store(false, Ordering::Release);
    }
}

impl<V: RegisterValue, C: TrySnapshotCore<V>> std::fmt::Debug for ServiceClient<'_, V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient").field("lane", &self.lane).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_core::{BoundedSnapshot, LockSnapshot, MultiWriterSnapshot, UnboundedSnapshot};

    #[test]
    fn quiescent_scan_and_update_round_trip() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u64));
        let mut c1 = svc.client(1);
        c1.update(1, 11).unwrap();
        let view = c1.scan().unwrap();
        assert_eq!(view.to_vec(), vec![0, 11, 0, 0]);
    }

    #[test]
    fn partial_scan_projects_the_memory() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(5, 0u64));
        let mut c0 = svc.client(0);
        let mut c3 = svc.client(3);
        c0.update(0, 7).unwrap();
        c3.update(3, 9).unwrap();
        let (view, stats) = c0.scan_subset_with_stats(&[3, 0]).unwrap();
        assert_eq!(view.segments(), &[0, 3]);
        assert_eq!(view.values(), &[7, 9]);
        assert_eq!(view.get(3), Some(&9));
        assert_eq!(view.get(1), None);
        // The unbounded backing serves subsets natively, so no fallback.
        assert!(stats.native_subset);
        assert!(!stats.fallback_full);
        assert_eq!(svc.partial_certified_permille(), 1000);
    }

    #[test]
    fn duplicate_and_unsorted_subsets_are_canonicalized() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u32));
        let mut c = svc.client(0);
        let view = c.scan_subset(&[2, 0, 2, 0]).unwrap();
        assert_eq!(view.segments(), &[0, 2]);
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn subset_errors_are_typed() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(3, 0u32));
        let mut c = svc.client(0);
        assert_eq!(c.scan_subset(&[]).unwrap_err(), ServiceError::EmptySubset);
        assert_eq!(
            c.scan_subset(&[1, 3]).unwrap_err(),
            ServiceError::InvalidSegment { segment: 3, segments: 3 }
        );
        assert_eq!(
            c.update(1, 5).unwrap_err(),
            ServiceError::NotOwner { lane: 0, segment: 1 }
        );
        assert_eq!(
            c.update(9, 5).unwrap_err(),
            ServiceError::InvalidSegment { segment: 9, segments: 3 }
        );
    }

    #[test]
    fn multiwriter_backing_allows_any_segment() {
        let svc = SnapshotService::new(MultiWriterSnapshot::new(2, 6, 0u32));
        assert_eq!(svc.segments(), 6);
        assert_eq!(svc.lanes(), 2);
        let mut c = svc.client(1);
        c.update(4, 44).unwrap();
        assert_eq!(c.scan_subset(&[4]).unwrap().values(), &[44]);
    }

    /// A backing with no certified reads *and* no native subset path —
    /// the shape the projected-full-scan escape hatch exists for (every
    /// in-tree construction now serves subsets natively, so tests reach
    /// the fallback through this wrapper).
    struct Opaque<C>(C);

    impl<V, C: snapshot_core::SnapshotCore<V>> snapshot_core::SnapshotCore<V> for Opaque<C> {
        fn segments(&self) -> usize {
            self.0.segments()
        }
        fn lanes(&self) -> usize {
            self.0.lanes()
        }
        fn single_writer(&self) -> bool {
            self.0.single_writer()
        }
        fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
            self.0.core_scan(lane)
        }
        fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
            self.0.core_update(lane, segment, value)
        }
        fn certified_read(&self, _reader: ProcessId, _segment: usize) -> Option<(V, u64)> {
            None
        }
        // `core_scan_subset` keeps its default: no native subset path.
    }
    snapshot_core::impl_try_snapshot_core!(
        [V, C: snapshot_core::SnapshotCore<V>] V, Opaque<C>
    );

    #[test]
    fn bounded_and_locked_backings_serve_subsets_natively() {
        // Previously fallback-only constructions (no certified reads) now
        // answer subsets through their native O(touched) scans.
        let svc = SnapshotService::with_config(
            BoundedSnapshot::new(4, 0u32),
            ServiceConfig { shards: 2, ..ServiceConfig::default() },
        );
        let mut c = svc.client(0);
        c.update(0, 5).unwrap();
        let (view, stats) = c.scan_subset_with_stats(&[0, 3]).unwrap(); // spans both shards
        assert_eq!(view.values(), &[5, 0]);
        assert!(stats.native_subset);
        assert!(!stats.fallback_full);

        let (view, stats) = c.scan_subset_with_stats(&[0, 1]).unwrap(); // single shard
        assert_eq!(view.values(), &[5, 0]);
        assert!(stats.native_subset, "shard leaders use the native path too");
        assert!(!stats.fallback_full);
        assert_eq!(svc.partial_certified_permille(), 1000);
    }

    #[test]
    fn uncertified_backings_fall_back_to_projected_full_scans() {
        // An opaque core (no certified reads, no native subset path): a
        // multi-shard subset must fall back (single-shard ones are
        // coalesced via the shard rendezvous, also fallback-collected by
        // the leader), and the certified ratio sags to zero.
        let svc = SnapshotService::with_config(
            Opaque(BoundedSnapshot::new(4, 0u32)),
            ServiceConfig { shards: 2, ..ServiceConfig::default() },
        );
        let mut c = svc.client(0);
        c.update(0, 5).unwrap();
        let (view, stats) = c.scan_subset_with_stats(&[0, 3]).unwrap(); // spans both shards
        assert_eq!(view.values(), &[5, 0]);
        assert!(stats.fallback_full);
        assert!(!stats.native_subset);
        assert_eq!(stats.certified_rounds, 0);

        let (view, stats) = c.scan_subset_with_stats(&[0, 1]).unwrap(); // single shard
        assert_eq!(view.values(), &[5, 0]);
        assert!(stats.fallback_full, "shard leader must report its fallback");
        assert_eq!(svc.partial_certified_permille(), 0);
        let report = svc.load_report();
        assert_eq!(report.partial_certified_permille, 0);
    }

    #[test]
    fn locked_backing_works_end_to_end() {
        let svc = SnapshotService::new(LockSnapshot::new(3, 0u8));
        let mut c = svc.client(2);
        c.update(2, 9).unwrap();
        assert_eq!(c.scan().unwrap().to_vec(), vec![0, 0, 9]);
        assert_eq!(c.scan_subset(&[2]).unwrap().values(), &[9]);
    }

    #[test]
    fn full_coverage_subset_is_served_as_a_full_scan() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(3, 0u32));
        let mut c = svc.client(0);
        c.update(0, 1).unwrap();
        let (view, stats) = c.scan_subset_with_stats(&[0, 1, 2]).unwrap();
        assert_eq!(view.values(), &[1, 0, 0]);
        assert!(!stats.fallback_full);
        assert_eq!(stats.certified_rounds, 0);
    }

    #[test]
    fn solo_mode_never_coalesces() {
        let registry = Registry::new();
        let svc = SnapshotService::with_config(
            UnboundedSnapshot::new(2, 0u32),
            ServiceConfig { coalesce: false, ..ServiceConfig::default() },
        )
        .with_registry(&registry);
        let mut c = svc.client(0);
        for _ in 0..5 {
            let (_, stats) = c.scan_with_stats().unwrap();
            assert!(!stats.coalesced);
            assert_eq!(stats.retries, 0, "infallible cores never consume retries");
        }
        assert_eq!(registry.counter("service.scan.solo").get(), 5);
        assert_eq!(registry.counter("service.scan.coalesced").get(), 0);
        assert_eq!(registry.counter("service.fault.backend_errors").get(), 0);
    }

    #[test]
    fn sequential_scans_never_reuse_a_view() {
        // Each scan's request starts after the previous collect, so the
        // generation rule forces a fresh collect every time.
        let svc = SnapshotService::new(UnboundedSnapshot::new(2, 0u32));
        let mut c = svc.client(0);
        let (_, s1) = c.scan_with_stats().unwrap();
        let (_, s2) = c.scan_with_stats().unwrap();
        assert!(!s1.coalesced && !s2.coalesced);
        assert!(s2.generation > s1.generation);
    }

    #[test]
    fn inflight_budget_rejects_with_typed_error() {
        let svc = SnapshotService::with_config(
            UnboundedSnapshot::new(2, 0u32),
            ServiceConfig { max_inflight: 1, ..ServiceConfig::default() },
        );
        // Hold the only slot by faking an admitted request.
        let slot = svc.admit().unwrap();
        let mut c = svc.client(0);
        assert_eq!(
            c.scan().unwrap_err(),
            ServiceError::Overloaded { inflight: 1, budget: 1 }
        );
        drop(slot);
        assert!(c.scan().is_ok());
    }

    #[test]
    fn healthy_service_reports_no_degraded_shards() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u32));
        let mut c = svc.client(0);
        c.update(0, 1).unwrap();
        c.scan().unwrap();
        assert!(svc.degraded_shards().is_empty());
        assert_eq!(svc.abdications(), 0);
    }

    #[test]
    fn zero_budget_requests_fail_fast_with_deadline_exceeded() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u64));
        let mut c = svc.client(0);
        match c.scan_within(Duration::ZERO).unwrap_err() {
            ServiceError::DeadlineExceeded { attempts, budget } => {
                assert_eq!(attempts, 0, "the request never reached the backend");
                assert_eq!(budget, Duration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(matches!(
            c.scan_subset_within(&[1], Duration::ZERO),
            Err(ServiceError::DeadlineExceeded { .. })
        ));
        assert!(matches!(
            c.update_within(0, 7, Duration::ZERO),
            Err(ServiceError::DeadlineExceeded { .. })
        ));
        // Sane budgets succeed against an in-process (wait-free) core.
        assert!(c.scan_within(Duration::from_secs(5)).is_ok());
        assert!(c.scan_subset_within(&[1], Duration::from_secs(5)).is_ok());
        assert!(c.update_within(0, 7, Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn probe_and_load_report_round_trip() {
        let registry = Registry::new();
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u64)).with_registry(&registry);
        let mut c = svc.client(0);
        c.probe_shard(0).unwrap();
        c.update(0, 1).unwrap();
        c.scan().unwrap();
        let report = svc.load_report();
        assert!(!report.is_skewed(), "three quiet requests are not skew");
        assert!(report.shards.iter().all(|s| !s.open));
        assert!(report.shards[0].hits >= 3, "probe + update + scan all hit shard 0");
        assert!(registry.gauge("service.load.shard0.hits").get() >= 3);
        assert_eq!(registry.gauge("service.load.hot_shard").get(), -1);
    }

    #[test]
    fn lanes_are_exclusive_until_dropped() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(2, 0u32));
        let c = svc.client(0);
        drop(c);
        let _c2 = svc.client(0);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_client_panics() {
        let svc = SnapshotService::new(UnboundedSnapshot::new(2, 0u32));
        let _a = svc.client(0);
        let _b = svc.client(0);
    }

    #[test]
    fn concurrent_scans_coalesce_under_load() {
        // Liveness + counter smoke: with many scanning threads, at least
        // one join happens and every scan returns a plausible view.
        let registry = Registry::new();
        let svc = SnapshotService::new(UnboundedSnapshot::new(4, 0u64)).with_registry(&registry);
        std::thread::scope(|s| {
            for lane in 0..4 {
                let svc = &svc;
                s.spawn(move || {
                    let mut c = svc.client(lane);
                    for k in 1..=200u64 {
                        c.update(lane, k).unwrap();
                        let view = c.scan().unwrap();
                        assert_eq!(view.len(), 4);
                    }
                });
            }
        });
        let solo = registry.counter("service.scan.solo").get();
        let coalesced = registry.counter("service.scan.coalesced").get();
        assert_eq!(solo + coalesced, 4 * 200);
        assert!(solo > 0);
    }
}
