//! Per-shard health gating: a consecutive-failure circuit breaker.
//!
//! When a backing core keeps erroring, letting every request run its full
//! retry budget against a dead backend multiplies latency for no
//! information. Each shard therefore carries a tiny three-state breaker:
//!
//! * **closed** — requests pass; consecutive backend failures are
//!   counted, successes reset the count;
//! * **open** — tripped by [`HealthConfig::failure_threshold`]
//!   consecutive failures (or immediately by a terminal, non-retryable
//!   error such as a poisoned replica fleet): requests are shed with
//!   [`ServiceError::Degraded`](crate::ServiceError::Degraded) carrying a
//!   `retry_after` hint, touching no registers at all;
//! * **half-open** — after [`HealthConfig::cooldown`], exactly one
//!   request is admitted as a *probe* (claimed by compare-and-swap, so
//!   a thundering herd stays shed); its success closes the breaker, its
//!   failure re-opens the cooldown.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Circuit-breaker tuning for the per-shard health gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive backend failures that trip a shard's breaker open (at
    /// least 1). Terminal (non-retryable) errors trip it immediately
    /// regardless of the count.
    pub failure_threshold: u32,
    /// How long an open breaker sheds load before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { failure_threshold: 5, cooldown: Duration::from_millis(250) }
    }
}

impl HealthConfig {
    /// A gate that never trips (the threshold is unreachable): useful for
    /// tests that isolate retry/fan-out behavior from load shedding.
    pub fn disabled() -> Self {
        HealthConfig { failure_threshold: u32::MAX, ..HealthConfig::default() }
    }
}

/// Outcome of consulting a shard's gate at admission.
pub(crate) enum Gate {
    /// Breaker closed: proceed normally.
    Admit,
    /// Breaker half-open and this request won the probe claim: proceed,
    /// and *must* resolve the probe via `on_success`/`on_failure` (or
    /// `release_probe`).
    Probe,
    /// Breaker open (or another probe is in flight): shed the request.
    Shed {
        /// Time until the breaker half-opens (a retry hint, not a
        /// guarantee).
        retry_after: Duration,
    },
}

/// One shard's breaker state, all atomics (the gate sits on the admission
/// fast path and must not lock).
#[derive(Debug, Default)]
pub(crate) struct ShardHealth {
    /// Consecutive backend failures since the last success.
    consecutive: AtomicU32,
    /// Microseconds (on the service's epoch clock) when an open breaker
    /// may admit a probe; 0 = closed.
    open_until_us: AtomicU64,
    /// A half-open probe is in flight.
    probing: AtomicBool,
}

impl ShardHealth {
    pub(crate) fn new() -> Self {
        ShardHealth::default()
    }

    /// Consults the gate at `now_us` on the service's epoch clock.
    pub(crate) fn check(&self, now_us: u64, cfg: &HealthConfig) -> Gate {
        let open_until = self.open_until_us.load(Ordering::Acquire);
        if open_until == 0 {
            return Gate::Admit;
        }
        if now_us < open_until {
            return Gate::Shed { retry_after: Duration::from_micros(open_until - now_us) };
        }
        // Cooldown elapsed: admit exactly one probe; everyone else keeps
        // shedding until the probe resolves.
        if self
            .probing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Gate::Probe
        } else {
            Gate::Shed { retry_after: cfg.cooldown }
        }
    }

    /// Un-claims a probe that never reached the backend (e.g. another
    /// shard's gate shed the request). Idempotent.
    pub(crate) fn release_probe(&self) {
        self.probing.store(false, Ordering::Release);
    }

    /// A backend operation through this shard succeeded: close the
    /// breaker and reset the failure count.
    pub(crate) fn on_success(&self) {
        self.consecutive.store(0, Ordering::Release);
        self.open_until_us.store(0, Ordering::Release);
        self.probing.store(false, Ordering::Release);
    }

    /// A backend operation through this shard failed. Trips the breaker
    /// open (until `now_us + cooldown`) once the consecutive-failure
    /// threshold is reached — immediately for non-retryable errors.
    pub(crate) fn on_failure(&self, retryable: bool, now_us: u64, cfg: &HealthConfig) {
        let consecutive = self.consecutive.fetch_add(1, Ordering::AcqRel).saturating_add(1);
        if !retryable || consecutive >= cfg.failure_threshold.max(1) {
            self.open_until_us
                .store(now_us + cfg.cooldown.as_micros().min(u128::from(u64::MAX)) as u64, Ordering::Release);
            self.probing.store(false, Ordering::Release);
        }
    }

    /// True if the breaker currently sheds (open and cooling down).
    pub(crate) fn is_open(&self, now_us: u64) -> bool {
        let open_until = self.open_until_us.load(Ordering::Acquire);
        open_until != 0 && now_us < open_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: HealthConfig =
        HealthConfig { failure_threshold: 2, cooldown: Duration::from_micros(100) };

    #[test]
    fn trips_after_threshold_and_sheds() {
        let h = ShardHealth::new();
        assert!(matches!(h.check(0, &CFG), Gate::Admit));
        h.on_failure(true, 0, &CFG);
        assert!(matches!(h.check(0, &CFG), Gate::Admit), "below threshold");
        h.on_failure(true, 0, &CFG);
        assert!(h.is_open(50));
        match h.check(50, &CFG) {
            Gate::Shed { retry_after } => assert_eq!(retry_after, Duration::from_micros(50)),
            _ => panic!("open breaker must shed"),
        }
    }

    #[test]
    fn terminal_errors_trip_immediately() {
        let h = ShardHealth::new();
        h.on_failure(false, 0, &CFG);
        assert!(h.is_open(0), "one non-retryable failure is enough");
    }

    #[test]
    fn half_open_admits_one_probe_then_success_closes() {
        let h = ShardHealth::new();
        h.on_failure(true, 0, &CFG);
        h.on_failure(true, 0, &CFG);
        // Cooldown elapsed: first consult wins the probe, the second sheds.
        assert!(matches!(h.check(200, &CFG), Gate::Probe));
        assert!(matches!(h.check(200, &CFG), Gate::Shed { .. }));
        h.on_success();
        assert!(matches!(h.check(200, &CFG), Gate::Admit));
        assert!(!h.is_open(200));
    }

    #[test]
    fn failed_probe_reopens_the_cooldown() {
        let h = ShardHealth::new();
        h.on_failure(true, 0, &CFG);
        h.on_failure(true, 0, &CFG);
        assert!(matches!(h.check(200, &CFG), Gate::Probe));
        h.on_failure(true, 200, &CFG);
        assert!(h.is_open(250));
        // After the fresh cooldown, probing is available again.
        assert!(matches!(h.check(301, &CFG), Gate::Probe));
    }

    #[test]
    fn released_probe_can_be_reclaimed() {
        let h = ShardHealth::new();
        h.on_failure(false, 0, &CFG);
        assert!(matches!(h.check(200, &CFG), Gate::Probe));
        h.release_probe();
        assert!(matches!(h.check(200, &CFG), Gate::Probe));
    }
}
