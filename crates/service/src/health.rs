//! Per-shard health gating: an error-rate windowed circuit breaker with
//! priority-aware half-open recovery.
//!
//! When a backing core keeps erroring, letting every request run its full
//! retry budget against a dead backend multiplies latency for no
//! information. Each shard therefore carries a [`Breaker`]:
//!
//! * **closed** — requests pass; the outcomes of the last
//!   [`window`](HealthConfig::window) backend operations are kept in a
//!   sliding window. The breaker trips when the window's **error rate**
//!   reaches [`trip_error_pct`](HealthConfig::trip_error_pct) *and* the
//!   window holds at least [`min_volume`](HealthConfig::min_volume)
//!   outcomes (the volume guard: one unlucky burst on a quiet shard is
//!   not a sick shard). A terminal, non-retryable error (a poisoned
//!   replica fleet) trips immediately. Unlike a consecutive-failure
//!   counter, a shard failing every *other* request — degrading, but
//!   never twice in a row — still trips;
//! * **open** — requests are shed with
//!   [`ServiceError::Degraded`](crate::ServiceError::Degraded) carrying a
//!   **jittered** `retry_after` hint (so a shed cohort does not
//!   thundering-herd the shard the moment it half-opens), touching no
//!   registers at all, until [`cooldown`](HealthConfig::cooldown) passes;
//! * **half-open** — recovery is a *priority ramp*, not a floodgate:
//!   admission is token-bucketed
//!   ([`ramp_tokens`](HealthConfig::ramp_tokens) per
//!   [`ramp_interval`](HealthConfig::ramp_interval)) and gated by
//!   [`Priority`] — probe-class traffic is admitted immediately, each
//!   ramp interval (or recorded success) lowers the admitted rank by one,
//!   so partial scans, then full scans, then bulk updates follow. Enough
//!   successes ([`ramp_successes`](HealthConfig::ramp_successes)) close
//!   the breaker; any failure re-opens a fresh cooldown.
//!
//! Time enters only as a `now_us` reading from the service's injectable
//! [`Clock`](crate::Clock), so every lifecycle here is testable without a
//! single `sleep`.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::load::Priority;

/// Circuit-breaker tuning for the per-shard health gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Backend outcomes the sliding window holds, clamped into `[1, 64]`.
    pub window: u32,
    /// Error-rate trip threshold, in percent of the window (a window at
    /// or above this rate trips the breaker). Values above 100 make rate
    /// trips impossible (see [`disabled`](Self::disabled)).
    pub trip_error_pct: u8,
    /// Volume guard: the window must hold at least this many outcomes
    /// before the rate can trip. Values above [`window`](Self::window)
    /// make rate trips impossible.
    pub min_volume: u32,
    /// How long an open breaker sheds load before half-opening.
    pub cooldown: Duration,
    /// Successes recorded in half-open that fully close the breaker (at
    /// least 1).
    pub ramp_successes: u32,
    /// Admission tokens granted per elapsed ramp interval while
    /// half-open (at least 1): the recovery rate limit.
    pub ramp_tokens: u32,
    /// Half-open ramp step: each elapsed interval lowers the minimum
    /// admitted [`Priority`] rank by one (probes first, bulk last) and
    /// grants another round of tokens.
    pub ramp_interval: Duration,
    /// Jitter applied to every `retry_after` hint, in ± percent (clamped
    /// to 100). Zero disables jitter.
    pub jitter_pct: u8,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 32,
            trip_error_pct: 50,
            min_volume: 8,
            cooldown: Duration::from_millis(250),
            ramp_successes: 4,
            ramp_tokens: 2,
            ramp_interval: Duration::from_millis(5),
            jitter_pct: 25,
        }
    }
}

impl HealthConfig {
    /// A gate that never trips on error *rate* (the rate threshold and
    /// volume guard are unreachable): useful for tests that isolate
    /// retry/fan-out behavior from load shedding. Terminal errors still
    /// trip it — a poisoned backend is sick no matter the tuning.
    pub fn disabled() -> Self {
        HealthConfig {
            trip_error_pct: 101,
            min_volume: u32::MAX,
            ..HealthConfig::default()
        }
    }
}

/// Outcome of consulting a shard's gate at admission.
#[derive(Debug)]
pub enum Gate {
    /// Breaker closed: proceed normally.
    Admit,
    /// Breaker half-open and this request was granted a ramp token:
    /// proceed, and *must* resolve the token via
    /// `on_success`/`on_failure` (or `release_probe`).
    Probe,
    /// Breaker open, or the half-open ramp is not yet admitting this
    /// request's priority class: shed.
    Shed {
        /// Jittered hint for when a retry is worth attempting (not a
        /// guarantee).
        retry_after: Duration,
    },
}

/// Breaker mode for [`Breaker::state`] (diagnostics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting normally, watching the outcome window.
    Closed,
    /// Shedding until the cooldown instant.
    Open {
        /// Microsecond reading at which the breaker half-opens.
        until_us: u64,
    },
    /// Ramping recovery traffic by priority.
    HalfOpen {
        /// Successes recorded so far toward closing.
        ramp_successes: u32,
    },
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// Sliding outcome window plus half-open ramp bookkeeping, under one
/// mutex (consulted only off the closed-breaker fast path).
#[derive(Debug, Default)]
struct Window {
    /// Outcome bits, newest at bit 0; set bit = error.
    bits: u64,
    /// Outcomes currently held (≤ 64).
    len: u32,
    /// Set bits in `bits`.
    errors: u32,
    /// `now_us` when the breaker last half-opened.
    half_open_since_us: u64,
    /// Successes recorded since half-opening.
    ramp_successes: u32,
    /// Ramp tokens consumed since half-opening.
    tokens_used: u32,
}

impl Window {
    fn push(&mut self, err: bool, window: u32) {
        let window = window.clamp(1, 64);
        while self.len >= window {
            let oldest = 1u64 << (self.len - 1);
            if self.bits & oldest != 0 {
                self.errors -= 1;
            }
            self.bits &= !oldest;
            self.len -= 1;
        }
        self.bits <<= 1;
        if err {
            self.bits |= 1;
            self.errors += 1;
        }
        self.len += 1;
    }

    fn rate_tripped(&self, cfg: &HealthConfig) -> bool {
        self.len >= cfg.min_volume
            && u64::from(self.errors) * 100 >= u64::from(cfg.trip_error_pct) * u64::from(self.len)
    }

    fn reset(&mut self) {
        *self = Window::default();
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// One shard's error-rate windowed circuit breaker.
///
/// The closed-state admission check is a single atomic load (the gate
/// sits on the request fast path); window and ramp bookkeeping live
/// behind a mutex taken only on failures, on half-open traffic, and on
/// closed-state success recording.
#[derive(Debug)]
pub struct Breaker {
    /// `CLOSED` / `OPEN` / `HALF_OPEN` fast-path mode. Transitions happen
    /// under `window`'s lock; this is the lock-free read hint.
    mode: AtomicU8,
    /// Microsecond reading when an open breaker may half-open.
    open_until_us: AtomicU64,
    /// Consecutive backend failures since the last success (diagnostic;
    /// trips no longer key off it). Saturates at `u32::MAX`.
    consecutive: AtomicU32,
    /// Times this breaker has tripped open.
    trips: AtomicU64,
    /// Jitter sequence counter (deterministic splitmix64 stream).
    jitter_seq: AtomicU64,
    /// Per-breaker jitter seed (the shard index, so shards de-correlate).
    seed: u64,
    window: Mutex<Window>,
}

impl Breaker {
    /// A closed breaker. `seed` de-correlates this breaker's jitter
    /// stream from its siblings' (the service passes the shard index).
    pub fn new(seed: u64) -> Self {
        Breaker {
            mode: AtomicU8::new(CLOSED),
            open_until_us: AtomicU64::new(0),
            consecutive: AtomicU32::new(0),
            trips: AtomicU64::new(0),
            jitter_seq: AtomicU64::new(0),
            seed,
            window: Mutex::new(Window::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Window> {
        self.window.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `base` ± `jitter_pct`%, drawn from this breaker's deterministic
    /// jitter stream.
    fn jittered(&self, base: Duration, cfg: &HealthConfig) -> Duration {
        let pct = u64::from(cfg.jitter_pct.min(100));
        let base_us = duration_us(base);
        if pct == 0 || base_us == 0 {
            return base;
        }
        let n = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ n);
        let span = base_us / 100 * pct + base_us % 100 * pct / 100;
        Duration::from_micros(base_us - span + z % (2 * span + 1))
    }

    /// Consults the gate at `now_us` for a request of class `priority`.
    pub fn check(&self, now_us: u64, priority: Priority, cfg: &HealthConfig) -> Gate {
        if self.mode.load(Ordering::Acquire) == CLOSED {
            return Gate::Admit;
        }
        self.check_slow(now_us, priority, cfg)
    }

    fn check_slow(&self, now_us: u64, priority: Priority, cfg: &HealthConfig) -> Gate {
        let mut w = self.lock();
        match self.mode.load(Ordering::Acquire) {
            CLOSED => return Gate::Admit, // raced with a close
            OPEN => {
                let open_until = self.open_until_us.load(Ordering::Acquire);
                if now_us < open_until {
                    let left = Duration::from_micros(open_until - now_us);
                    return Gate::Shed { retry_after: self.jittered(left, cfg) };
                }
                // Cooldown elapsed: half-open and start the ramp fresh.
                self.mode.store(HALF_OPEN, Ordering::Release);
                w.half_open_since_us = now_us;
                w.ramp_successes = 0;
                w.tokens_used = 0;
            }
            _ => {}
        }
        // Half-open: the priority ramp. Each elapsed interval (or
        // recorded success) lowers the required rank by one, starting at
        // probe-only; tokens refill per interval.
        let interval_us = duration_us(cfg.ramp_interval).max(1);
        let elapsed_intervals = now_us.saturating_sub(w.half_open_since_us) / interval_us;
        let progress = u64::from(w.ramp_successes).saturating_add(elapsed_intervals);
        let required = 3u64.saturating_sub(progress.min(3));
        if u64::from(priority.rank()) < required {
            let wait = required - u64::from(priority.rank());
            let hint = cfg.ramp_interval.saturating_mul(wait.min(4) as u32);
            return Gate::Shed { retry_after: self.jittered(hint, cfg) };
        }
        let granted = u64::from(cfg.ramp_tokens.max(1)).saturating_mul(1 + elapsed_intervals);
        if u64::from(w.tokens_used) >= granted {
            return Gate::Shed { retry_after: self.jittered(cfg.ramp_interval, cfg) };
        }
        w.tokens_used += 1;
        Gate::Probe
    }

    /// Refunds a ramp token claimed by [`check`](Self::check) that never
    /// reached the backend (e.g. another shard's gate shed the request).
    /// Idempotent for requests whose outcome was recorded instead.
    pub fn release_probe(&self) {
        let mut w = self.lock();
        if self.mode.load(Ordering::Acquire) == HALF_OPEN && w.tokens_used > 0 {
            w.tokens_used -= 1;
        }
    }

    /// A backend operation through this shard succeeded. The window rule
    /// is evaluated on *every* recorded outcome: a success that lifts the
    /// window past the volume guard can still reveal a rate already over
    /// the threshold and trip the breaker.
    ///
    /// Returns `true` exactly when this outcome tripped the breaker open,
    /// so the caller can surface the transition (trace event, flight
    /// recorder) without polling [`state`](Self::state).
    pub fn on_success(&self, now_us: u64, cfg: &HealthConfig) -> bool {
        self.consecutive.store(0, Ordering::Release);
        let mut w = self.lock();
        match self.mode.load(Ordering::Acquire) {
            CLOSED => {
                w.push(false, cfg.window);
                if w.rate_tripped(cfg) {
                    self.trip(&mut w, now_us, cfg);
                    return true;
                }
            }
            HALF_OPEN => {
                // The resolved probe frees its admission slot: the bucket
                // bounds *outstanding* half-open traffic per interval, so
                // a quick success lets the newly eligible rank through
                // without waiting out the interval.
                w.tokens_used = w.tokens_used.saturating_sub(1);
                w.ramp_successes = w.ramp_successes.saturating_add(1);
                if w.ramp_successes >= cfg.ramp_successes.max(1) {
                    // Recovered: close with a clean window, so old outage
                    // evidence cannot re-trip the healthy shard.
                    self.mode.store(CLOSED, Ordering::Release);
                    self.open_until_us.store(0, Ordering::Release);
                    w.reset();
                }
            }
            // A success from an operation admitted before the trip: the
            // cooldown stands (the ramp, not a straggler, closes it).
            _ => {}
        }
        false
    }

    /// A backend operation through this shard failed. Rate-over-threshold
    /// (with the volume guard) trips a closed breaker; terminal errors
    /// trip immediately; any half-open failure re-opens a fresh cooldown.
    ///
    /// Returns `true` exactly when this outcome tripped the breaker open
    /// (closed→open or half-open→open), so the caller can surface the
    /// transition (trace event, flight recorder) at the moment it happens.
    pub fn on_failure(&self, retryable: bool, now_us: u64, cfg: &HealthConfig) -> bool {
        // Saturating, not wrapping: a counter that wraps to zero after
        // u32::MAX failures would report a long-dead shard as healthy.
        let _ = self
            .consecutive
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| Some(c.saturating_add(1)));
        let mut w = self.lock();
        if !retryable {
            self.trip(&mut w, now_us, cfg);
            return true;
        }
        match self.mode.load(Ordering::Acquire) {
            CLOSED => {
                w.push(true, cfg.window);
                if w.rate_tripped(cfg) {
                    self.trip(&mut w, now_us, cfg);
                    return true;
                }
            }
            HALF_OPEN => {
                self.trip(&mut w, now_us, cfg);
                return true;
            }
            // Already open: a straggler from before the trip.
            _ => {}
        }
        false
    }

    fn trip(&self, w: &mut Window, now_us: u64, cfg: &HealthConfig) {
        self.open_until_us
            .store(now_us.saturating_add(duration_us(cfg.cooldown)), Ordering::Release);
        self.mode.store(OPEN, Ordering::Release);
        self.trips.fetch_add(1, Ordering::Relaxed);
        w.reset();
    }

    /// True if the breaker currently sheds unconditionally (open and
    /// cooling down). A half-open breaker is *not* open: it admits (some)
    /// traffic.
    pub fn is_open(&self, now_us: u64) -> bool {
        self.mode.load(Ordering::Acquire) == OPEN
            && now_us < self.open_until_us.load(Ordering::Acquire)
    }

    /// Consecutive backend failures since the last success (saturating).
    pub fn consecutive(&self) -> u32 {
        self.consecutive.load(Ordering::Acquire)
    }

    /// Times this breaker has tripped open since construction.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Acquire)
    }

    /// The breaker's current mode (diagnostics and tests).
    pub fn state(&self) -> BreakerState {
        match self.mode.load(Ordering::Acquire) {
            OPEN => BreakerState::Open { until_us: self.open_until_us.load(Ordering::Acquire) },
            HALF_OPEN => BreakerState::HalfOpen { ramp_successes: self.lock().ramp_successes },
            _ => BreakerState::Closed,
        }
    }
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact-assertion config: no jitter, tight window.
    const CFG: HealthConfig = HealthConfig {
        window: 8,
        trip_error_pct: 50,
        min_volume: 4,
        cooldown: Duration::from_micros(100),
        ramp_successes: 2,
        ramp_tokens: 1,
        ramp_interval: Duration::from_micros(10),
        jitter_pct: 0,
    };

    fn fail_n(b: &Breaker, n: usize, now_us: u64) {
        for _ in 0..n {
            b.on_failure(true, now_us, &CFG);
        }
    }

    #[test]
    fn volume_guard_blocks_low_sample_trips() {
        let b = Breaker::new(1);
        fail_n(&b, 3, 0); // 100% error rate but below min_volume = 4
        assert!(matches!(b.check(0, Priority::Full, &CFG), Gate::Admit));
        assert_eq!(b.trips(), 0);
        b.on_failure(true, 0, &CFG); // volume reached, rate 100%
        assert!(b.is_open(50));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn alternating_failures_trip_the_windowed_breaker() {
        // The consecutive-failure counter this breaker replaced reset on
        // every success: an alternating shard never tripped it. A 50%
        // window rate trips here as soon as the volume guard is met.
        let b = Breaker::new(2);
        for _ in 0..2 {
            b.on_success(0, &CFG);
            b.on_failure(true, 0, &CFG);
        }
        assert!(b.is_open(0), "S F S F is a 50% window: must trip");
    }

    #[test]
    fn below_rate_windows_never_trip() {
        let b = Breaker::new(3);
        for _ in 0..20 {
            b.on_success(0, &CFG);
            b.on_success(0, &CFG);
            b.on_success(0, &CFG);
            b.on_failure(true, 0, &CFG); // 25% < 50%
        }
        assert!(matches!(b.check(0, Priority::Bulk, &CFG), Gate::Admit));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn terminal_errors_trip_immediately() {
        let b = Breaker::new(4);
        b.on_failure(false, 0, &CFG);
        assert!(b.is_open(0), "one non-retryable failure is enough");
    }

    #[test]
    fn open_breaker_sheds_with_remaining_cooldown() {
        let b = Breaker::new(5);
        fail_n(&b, 4, 0);
        match b.check(40, Priority::Full, &CFG) {
            Gate::Shed { retry_after } => {
                assert_eq!(retry_after, Duration::from_micros(60), "no jitter configured")
            }
            g => panic!("open breaker must shed, got {g:?}"),
        }
    }

    #[test]
    fn half_open_ramp_admits_by_priority_then_closes() {
        let b = Breaker::new(6);
        fail_n(&b, 4, 0);
        let t = 150; // past cooldown: first consult half-opens
        // Ramp step 0: probe-class only.
        assert!(matches!(b.check(t, Priority::Full, &CFG), Gate::Shed { .. }));
        assert!(matches!(b.check(t, Priority::Probe, &CFG), Gate::Probe));
        b.on_success(0, &CFG); // ramp 1/2: partials now eligible
        assert!(matches!(b.check(t, Priority::Partial, &CFG), Gate::Probe));
        assert!(matches!(b.check(t, Priority::Full, &CFG), Gate::Shed { .. }));
        b.on_success(0, &CFG); // ramp 2/2: fully closed
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(matches!(b.check(t, Priority::Bulk, &CFG), Gate::Admit));
        assert!(!b.is_open(t));
    }

    #[test]
    fn elapsed_ramp_intervals_lower_the_admitted_rank() {
        // Liveness without probe traffic: rank descends with time alone.
        let b = Breaker::new(7);
        fail_n(&b, 4, 0);
        assert!(matches!(b.check(150, Priority::Bulk, &CFG), Gate::Shed { .. }));
        // 3 intervals after half-opening at t=150, even bulk is eligible.
        assert!(matches!(b.check(150 + 30, Priority::Bulk, &CFG), Gate::Probe));
    }

    #[test]
    fn ramp_tokens_bound_half_open_admissions() {
        let b = Breaker::new(8);
        fail_n(&b, 4, 0);
        assert!(matches!(b.check(150, Priority::Probe, &CFG), Gate::Probe));
        // One token per interval; the same instant has none left.
        assert!(matches!(b.check(150, Priority::Probe, &CFG), Gate::Shed { .. }));
        // A released (unused) token can be reclaimed.
        b.release_probe();
        assert!(matches!(b.check(150, Priority::Probe, &CFG), Gate::Probe));
        // The next interval grants a fresh one.
        assert!(matches!(b.check(161, Priority::Probe, &CFG), Gate::Probe));
    }

    #[test]
    fn failed_probe_reopens_a_fresh_cooldown() {
        let b = Breaker::new(9);
        fail_n(&b, 4, 0);
        assert!(matches!(b.check(150, Priority::Probe, &CFG), Gate::Probe));
        b.on_failure(true, 150, &CFG);
        assert!(b.is_open(200), "failed probe re-opens");
        assert!(matches!(b.check(151, Priority::Probe, &CFG), Gate::Shed { .. }));
        assert!(matches!(b.check(251, Priority::Probe, &CFG), Gate::Probe));
    }

    #[test]
    fn disabled_config_never_rate_trips() {
        let cfg = HealthConfig::disabled();
        let b = Breaker::new(10);
        for _ in 0..1000 {
            b.on_failure(true, 0, &cfg);
        }
        assert!(matches!(b.check(0, Priority::Full, &cfg), Gate::Admit));
        // ... but terminal errors still trip it.
        b.on_failure(false, 0, &cfg);
        assert!(b.is_open(0));
    }

    #[test]
    fn consecutive_counter_saturates_instead_of_wrapping() {
        // Regression: `fetch_add` wraps at u32::MAX, so a long outage
        // would roll the diagnostic counter back to zero.
        let b = Breaker::new(11);
        b.consecutive.store(u32::MAX - 1, Ordering::Release);
        b.on_failure(true, 0, &CFG);
        assert_eq!(b.consecutive(), u32::MAX);
        b.on_failure(true, 0, &CFG);
        assert_eq!(b.consecutive(), u32::MAX, "must saturate, not wrap to 0");
        b.on_success(0, &CFG);
        assert_eq!(b.consecutive(), 0);
    }

    #[test]
    fn retry_hints_are_jittered_within_the_band() {
        let cfg = HealthConfig { jitter_pct: 25, ..CFG };
        let b = Breaker::new(12);
        b.on_failure(false, 0, &cfg); // open until 100µs
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            match b.check(0, Priority::Full, &cfg) {
                Gate::Shed { retry_after } => {
                    let us = retry_after.as_micros() as u64;
                    assert!((75..=125).contains(&us), "hint {us}µs outside ±25% of 100µs");
                    seen.insert(us);
                }
                g => panic!("open breaker must shed, got {g:?}"),
            }
        }
        assert!(seen.len() > 1, "jitter must actually vary the hints");
    }

    #[test]
    fn shrinking_window_evicts_oldest_outcomes() {
        let mut w = Window::default();
        for _ in 0..8 {
            w.push(true, 8);
        }
        assert_eq!((w.len, w.errors), (8, 8));
        w.push(false, 4); // window shrank: evict down to 3 then push
        assert_eq!(w.len, 4);
        assert_eq!(w.errors, 3);
    }
}
