//! Typed service errors.

use std::fmt;

/// Why the service refused a request.
///
/// All variants are *caller-visible backpressure or usage errors*; the
/// underlying snapshot object is never left in a partial state (rejected
/// requests perform no register operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded in-flight budget was exhausted. Retry later (the
    /// admission check is wait-free; there is no queue to sit in).
    Overloaded {
        /// Requests in flight when the rejection was issued.
        inflight: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A segment index was out of range.
    InvalidSegment {
        /// The offending index.
        segment: usize,
        /// Number of segments the object has.
        segments: usize,
    },
    /// `scan_subset` was called with an empty segment list.
    EmptySubset,
    /// An update named a segment the lane does not own (the backing
    /// construction is single-writer).
    NotOwner {
        /// The requesting lane.
        lane: usize,
        /// The foreign segment it tried to write.
        segment: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServiceError::Overloaded { inflight, budget } => {
                write!(f, "service overloaded: {inflight} requests in flight (budget {budget})")
            }
            ServiceError::InvalidSegment { segment, segments } => {
                write!(f, "segment {segment} out of range (object has {segments} segments)")
            }
            ServiceError::EmptySubset => f.write_str("scan_subset requires at least one segment"),
            ServiceError::NotOwner { lane, segment } => {
                write!(
                    f,
                    "lane {lane} cannot update segment {segment}: the backing construction \
                     is single-writer"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Overloaded { inflight: 9, budget: 8 };
        assert!(e.to_string().contains("budget 8"));
        assert!(ServiceError::EmptySubset.to_string().contains("at least one"));
    }
}
