//! Typed service errors.

use std::fmt;
use std::time::Duration;

use snapshot_core::CoreError;

/// Why the service refused (or could not complete) a request.
///
/// The first four variants are *caller-visible backpressure or usage
/// errors*: rejected requests perform no register operations and the
/// underlying snapshot object is never left in a partial state.
/// [`Degraded`](ServiceError::Degraded) likewise touches no registers —
/// the shard's health gate shed the request before it reached the
/// backend. [`Backend`](ServiceError::Backend) is the one variant that
/// *did* reach the backend: the operation's retry budget was consumed by
/// [`CoreError`]s. For scans that is harmless (reads leave no trace); a
/// failed update is **indeterminate** — the write may or may not have
/// taken effect, exactly like an ABD write that lost its quorum.
/// [`DeadlineExceeded`](ServiceError::DeadlineExceeded) is the wall-clock
/// twin of `Backend`: the request's time budget, not its attempt budget,
/// ran out — with the same indeterminacy rule for updates that had
/// already reached the backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded in-flight budget was exhausted. Retry later (the
    /// admission check is wait-free; there is no queue to sit in).
    Overloaded {
        /// Requests in flight when the rejection was issued.
        inflight: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A segment index was out of range.
    InvalidSegment {
        /// The offending index.
        segment: usize,
        /// Number of segments the object has.
        segments: usize,
    },
    /// `scan_subset` was called with an empty segment list.
    EmptySubset,
    /// An update named a segment the lane does not own (the backing
    /// construction is single-writer).
    NotOwner {
        /// The requesting lane.
        lane: usize,
        /// The foreign segment it tried to write.
        segment: usize,
    },
    /// A shard's health gate is open (its circuit breaker tripped on
    /// consecutive backend failures): the request was shed without
    /// touching the backend.
    Degraded {
        /// The unhealthy shard.
        shard: usize,
        /// How long until the breaker half-opens and admits a probe — a
        /// retry hint, not a guarantee.
        retry_after: Duration,
    },
    /// The backing core kept erroring until the operation's retry budget
    /// (attempts or deadline) ran out, or failed terminally.
    Backend {
        /// Attempts consumed, including the first.
        attempts: u32,
        /// The final backend error.
        error: CoreError,
    },
    /// The request's deadline budget ran out before the operation could
    /// finish: it failed fast (admission, a coalescing wait, a retry
    /// backoff, or an ABD quorum wait was cut short) instead of parking
    /// past its budget. An update that reached the backend before the
    /// deadline expired is **indeterminate**, exactly like
    /// [`Backend`](ServiceError::Backend).
    DeadlineExceeded {
        /// Attempts started before the budget expired (0 if admission
        /// itself was past the deadline).
        attempts: u32,
        /// The budget the request was given.
        budget: Duration,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { inflight, budget } => {
                write!(f, "service overloaded: {inflight} requests in flight (budget {budget})")
            }
            ServiceError::InvalidSegment { segment, segments } => {
                write!(f, "segment {segment} out of range (object has {segments} segments)")
            }
            ServiceError::EmptySubset => f.write_str("scan_subset requires at least one segment"),
            ServiceError::NotOwner { lane, segment } => {
                write!(
                    f,
                    "lane {lane} cannot update segment {segment}: the backing construction \
                     is single-writer"
                )
            }
            ServiceError::Degraded { shard, retry_after } => {
                write!(
                    f,
                    "shard {shard} degraded: health gate open, retry after {:?}",
                    retry_after
                )
            }
            ServiceError::Backend { attempts, error } => {
                write!(f, "backend failed after {attempts} attempt(s): {error}")
            }
            ServiceError::DeadlineExceeded { attempts, budget } => {
                write!(
                    f,
                    "deadline exceeded: {attempts} attempt(s) could not finish within {budget:?}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Backend { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Overloaded { inflight: 9, budget: 8 };
        assert!(e.to_string().contains("budget 8"));
        assert!(ServiceError::EmptySubset.to_string().contains("at least one"));
        let d = ServiceError::Degraded { shard: 3, retry_after: Duration::from_millis(10) };
        assert!(d.to_string().contains("shard 3"));
        let b = ServiceError::Backend {
            attempts: 4,
            error: CoreError::Unavailable { reason: "quorum lost".into() },
        };
        assert!(b.to_string().contains("4 attempt(s)"));
        assert!(b.to_string().contains("quorum lost"));
        let t = ServiceError::DeadlineExceeded {
            attempts: 2,
            budget: Duration::from_millis(50),
        };
        assert!(t.to_string().contains("deadline exceeded"));
        assert!(t.to_string().contains("50ms"));
    }

    #[test]
    fn backend_errors_expose_their_source() {
        use std::error::Error as _;
        let b = ServiceError::Backend {
            attempts: 1,
            error: CoreError::Failed { reason: "poisoned".into() },
        };
        assert!(b.source().is_some());
        assert!(ServiceError::EmptySubset.source().is_none());
    }
}
