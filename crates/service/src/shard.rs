//! Contiguous partitioning of segments across shards.
//!
//! Shards exist for two reasons: per-shard coalescing state lives on its
//! own cache line (scans of disjoint shard ranges never contend on one
//! rendezvous mutex), and a subset scan confined to one shard can be
//! served from that shard's coalesced range view instead of touching the
//! whole memory.

use std::ops::Range;

/// Balanced contiguous partition of `segments` segments into `shards`
/// shards: shard `i` owns `[i*segments/shards, (i+1)*segments/shards)`,
/// so shard sizes differ by at most one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ShardMap {
    segments: usize,
    shards: usize,
}

impl ShardMap {
    /// Creates the map, clamping the shard count into `[1, segments]`.
    pub(crate) fn new(segments: usize, shards: usize) -> Self {
        assert!(segments > 0, "a shard map needs at least one segment");
        ShardMap { segments, shards: shards.clamp(1, segments) }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `segment`.
    pub(crate) fn shard_of(&self, segment: usize) -> usize {
        debug_assert!(segment < self.segments);
        // Inverse of `start(i) = i * segments / shards`: the largest `i`
        // with `start(i) <= segment`.
        ((segment + 1) * self.shards - 1) / self.segments
    }

    /// The contiguous segment range shard `shard` owns.
    pub(crate) fn range(&self, shard: usize) -> Range<usize> {
        debug_assert!(shard < self.shards);
        (shard * self.segments / self.shards)..((shard + 1) * self.segments / self.shards)
    }

    /// The single shard containing every segment of a **sorted** subset,
    /// or `None` if the subset spans shard boundaries.
    pub(crate) fn shard_containing(&self, sorted_subset: &[usize]) -> Option<usize> {
        let first = self.shard_of(*sorted_subset.first()?);
        let last = self.shard_of(*sorted_subset.last()?);
        (first == last).then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_segments() {
        for segments in 1..=17 {
            for shards in 1..=segments + 3 {
                let map = ShardMap::new(segments, shards);
                let mut covered = Vec::new();
                for s in 0..map.shards() {
                    let r = map.range(s);
                    assert!(!r.is_empty(), "empty shard {s} for {segments}/{shards}");
                    for seg in r {
                        assert_eq!(map.shard_of(seg), s);
                        covered.push(seg);
                    }
                }
                assert_eq!(covered, (0..segments).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let map = ShardMap::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|s| map.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&l| l == 2 || l == 3), "{sizes:?}");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardMap::new(3, 0).shards(), 1);
        assert_eq!(ShardMap::new(3, 99).shards(), 3);
    }

    #[test]
    fn subset_confinement() {
        let map = ShardMap::new(8, 4); // shards of 2
        assert_eq!(map.shard_containing(&[2, 3]), Some(1));
        assert_eq!(map.shard_containing(&[3, 4]), None);
        assert_eq!(map.shard_containing(&[7]), Some(3));
        assert_eq!(map.shard_containing(&[]), None);
    }
}
