//! # snapshot-service — a sharded front-end for atomic snapshot objects
//!
//! The constructions in [`snapshot_core`] give each process a private
//! handle to one shared snapshot object. This crate puts a *service* in
//! front of any of them ([`TrySnapshotCore`] is the adapter trait —
//! every infallible [`SnapshotCore`] construction carries a forwarding
//! impl (wrappers opt in via `snapshot_core::impl_try_snapshot_core!`),
//! and fallible message-passing cores such as `snapshot-abd`'s
//! `AbdSnapshotCore` plug in directly) and adds the things a shared
//! front-end can provide that the raw objects cannot:
//!
//! ## Scan coalescing
//!
//! Under a scan-heavy load every caller runs its own double collect —
//! `Θ(n)` register reads each, all observing nearly the same memory. The
//! service instead lets concurrent scans rendezvous: one caller (the
//! *leader*) runs the collect, everyone in the cohort returns the same
//! view. This is sound for exactly the reason the paper's Observation 2 /
//! Lemma 4.1 lets a scanner borrow an embedded view from a writer it saw
//! move twice: a view may be borrowed only if the collect that produced
//! it is nested inside the borrower's own operation interval. The
//! coalescer enforces that with a generation counter — a request only
//! accepts a view whose collect was *elected after the request arrived* —
//! so a coalesced scan linearizes at the shared collect's linearization
//! point, inside every cohort member's interval.
//!
//! ## Partial scans
//!
//! [`ServiceClient::scan_subset`] returns an atomic picture of just the
//! requested segments. Where the backing construction exposes ABA-free
//! per-segment certificates ([`SnapshotCore::certified_read`] — the
//! unbounded construction's sequence numbers qualify; bounded handshake
//! bits do not), the service runs a *projected double collect*: two
//! adjacent passes over the subset with unchanged certificates certify
//! that no write to those segments completed in between, which is
//! Observation 1 restricted to the projection. Otherwise it falls back to
//! projecting a full scan — still wait-free, because the constructions'
//! own scans are. `snapshot-lin` ships a projected sequential spec
//! (`check_partial_history`) so these histories can be checked by the
//! Wing & Gong backtracking checker.
//!
//! ## Sharding and admission control
//!
//! Segments are partitioned into contiguous shards, each with its own
//! cache-padded rendezvous, so subset scans confined to one shard
//! coalesce among themselves without contending with full scans. A
//! bounded in-flight budget turns overload into a typed
//! [`ServiceError::Overloaded`] rejection (wait-free admission — there is
//! no queue), and everything is observable through `snapshot-obs`
//! metrics (`service.scan.coalesced`, `service.scan.solo`,
//! `service.fault.*`, `service.inflight`, log₂-µs latency histograms)
//! and trace events for each coalescing and failure decision.
//!
//! ## Fault tolerance and adaptive load management
//!
//! When the backing core is fallible (its collects run over emulated
//! message-passing registers that can lose their quorum), failure is a
//! typed value all the way up, never a hang:
//!
//! * each operation runs under a **retry budget** ([`RetryConfig`]):
//!   retryable `CoreError`s are retried with capped backoff until an
//!   attempt count runs out, then surface as [`ServiceError::Backend`];
//! * each operation also carries a **wall-clock deadline budget**
//!   (`Deadline`, threaded through admission, the coalescing rendezvous,
//!   retry backoffs, and a fallible backend's quorum waits): it either
//!   completes within its budget or returns a typed
//!   [`ServiceError::DeadlineExceeded`] — it never parks past it, and a
//!   coalesced waiter honors its *own* budget, never its leader's;
//! * a coalescing leader whose collect fails **fans the error out** to
//!   every waiter its collect was serving and frees the seat, so no
//!   request parks forever behind a dead collect and post-heal views
//!   still satisfy the Observation-2 nesting rule (see the `coalesce`
//!   module docs);
//! * per-shard **error-rate windowed circuit breakers**
//!   ([`HealthConfig`], [`Breaker`]) trip when the sliding window of
//!   backend outcomes crosses an error-rate threshold past a minimum
//!   volume (so a shard failing every *other* request still trips, and
//!   one unlucky burst on a quiet shard does not), shed requests early
//!   with [`ServiceError::Degraded`] carrying a **jittered**
//!   `retry_after` hint, and recover through a **priority-aware
//!   half-open ramp** ([`Priority`]: health probes first, then partial
//!   scans, full scans, and bulk updates, token-bucketed per ramp
//!   interval);
//! * a **metrics-driven load report**
//!   ([`SnapshotService::load_report`]) aggregates per-shard
//!   hit/error/latency counts into a hot-shard skew diagnosis
//!   (`service.load.*` gauges) that also stretches the hot shard's
//!   `retry_after` hints so shed cohorts spread out.
//!
//! Breaker lifecycles read an injectable [`Clock`]; tests drive a full
//! closed → open → half-open → closed sequence with a [`ManualClock`]
//! and zero sleeps.
//!
//! ## Causal span tracing
//!
//! With a trace attached ([`SnapshotService::with_trace`]) every client
//! operation opens a request-scoped **span tree** on the shared trace
//! plane (DESIGN.md §12): a root span per op (`scan` / `partial_scan` /
//! `update` / `probe`, closed with the op's typed outcome), an
//! `attempt` span per retry rung, `coalesce_park` for the rendezvous
//! wait, `collect` for the lead's double collect, `backoff` for retry
//! sleeps — and, on an ABD backing, `quorum_query`/`quorum_store`
//! phases nested under the collect via `snapshot_core::RequestCtx`. A
//! coalesced joiner records a *follows* edge to the lead's collect span
//! (a flow arrow in the chrome://tracing export), so "who actually ran
//! my collect" is reconstructable after the fact;
//! `snapshot_obs::SpanForest::attribute_stall` names the phase a slow
//! request spent its time in. Wire a `snapshot_obs::FlightRecorder`
//! into the same trace and every `DeadlineExceeded`, breaker trip, or
//! `Overloaded` shed freezes a black-box dump of the events (spans
//! included) leading up to it. Per-op-class latency quantiles come from
//! [`SnapshotService::latency_summaries`].
//!
//! ## Quickstart
//!
//! ```
//! use snapshot_core::UnboundedSnapshot;
//! use snapshot_service::{ServiceConfig, SnapshotService};
//!
//! let service = SnapshotService::with_config(
//!     UnboundedSnapshot::new(4, 0u64),
//!     ServiceConfig { shards: 2, max_inflight: 64, ..ServiceConfig::default() },
//! );
//!
//! std::thread::scope(|s| {
//!     for lane in 0..4 {
//!         let service = &service;
//!         s.spawn(move || {
//!             let mut client = service.client(lane);
//!             client.update(lane, 7 * lane as u64 + 1).unwrap();
//!             let view = client.scan().unwrap();          // possibly coalesced
//!             assert_eq!(view.len(), 4);
//!             let pair = client.scan_subset(&[0, 1]).unwrap(); // partial scan
//!             assert_eq!(pair.segments(), &[0, 1]);
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod coalesce;
mod error;
mod health;
mod load;
mod retry;
mod service;
mod shard;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use error::ServiceError;
pub use health::{Breaker, BreakerState, Gate, HealthConfig};
pub use load::{LoadReport, Priority, ShardLoadStat};
pub use retry::RetryConfig;
pub use service::{
    PartialView, ServiceClient, ServiceConfig, ServiceLatency, ServiceStats, SnapshotService,
};
