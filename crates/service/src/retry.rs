//! Per-operation retry budget for fallible backing cores.

use std::time::Duration;

/// How the service retries an operation whose backing core errored.
///
/// Mirrors the shape of `snapshot-abd`'s `RetryPolicy` (capped exponential
/// backoff), one layer up: the abd policy paces *retransmissions inside
/// one register operation*, this one paces *whole snapshot operations*
/// after a typed [`CoreError`](snapshot_core::CoreError). The budget is
/// two-dimensional — at most [`max_attempts`](RetryConfig::max_attempts)
/// attempts, all inside one [`deadline`](RetryConfig::deadline) — so a
/// caller is guaranteed an answer (a view or a typed error) within a
/// bounded wall-clock window. Backoff is deterministic (no jitter): the
/// register layer underneath already jitters its retransmissions.
///
/// Only [retryable](snapshot_core::CoreError::retryable) errors consume
/// backoff sleeps; a terminal error surfaces immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Maximum operation attempts, including the first (at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on the backoff.
    pub max_backoff: Duration,
    /// Backoff growth factor per retry (values `< 1` behave as `1`).
    pub multiplier: u32,
    /// Overall per-operation deadline across all attempts: a retry that
    /// cannot start before the deadline is not started.
    pub deadline: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            initial_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
            multiplier: 2,
            deadline: Duration::from_secs(5),
        }
    }
}

impl RetryConfig {
    /// A single-attempt budget: the first backend error surfaces to the
    /// caller untouched.
    pub fn no_retries() -> Self {
        RetryConfig { max_attempts: 1, ..RetryConfig::default() }
    }

    /// The backoff following `current`: multiplied and capped.
    pub(crate) fn next_backoff(&self, current: Duration) -> Duration {
        current.saturating_mul(self.multiplier.max(1)).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = RetryConfig {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            multiplier: 2,
            ..RetryConfig::default()
        };
        let b1 = cfg.next_backoff(cfg.initial_backoff);
        assert_eq!(b1, Duration::from_millis(2));
        assert_eq!(cfg.next_backoff(b1), Duration::from_millis(4));
        assert_eq!(cfg.next_backoff(Duration::from_millis(4)), Duration::from_millis(4));
    }

    #[test]
    fn degenerate_multiplier_behaves_as_one() {
        let cfg = RetryConfig { multiplier: 0, ..RetryConfig::default() };
        let b = Duration::from_millis(3);
        assert_eq!(cfg.next_backoff(b), b);
    }
}
