//! Priority classes and the metrics-driven hot-shard load report.
//!
//! Wait-freedom is a per-operation promise; at service scale the matching
//! promise is *graceful degradation*: when a shard sickens or load skews,
//! the service keeps answering — it just answers some classes of traffic
//! before others. This module defines the classification
//! ([`Priority`]: health probes over partial scans over full scans over
//! update bulk) and the [`LoadReport`] view that aggregates per-shard
//! hit/error/latency counts into a skew diagnosis, feeding `retry_after`
//! hints and laying the seam for generation-swapped shard maps later.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How important a request class is when a breaker sheds or ramps.
///
/// Ordered by shed resistance: under pressure the service drops
/// [`Bulk`](Priority::Bulk) first and [`Probe`](Priority::Probe) last,
/// and a half-open breaker re-admits classes in the opposite order
/// (probes first — they are cheap, single-shard, and produce exactly the
/// health evidence recovery needs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Update traffic: retried writes are idempotent at the snapshot
    /// level, so bulk is the safest class to delay.
    Bulk,
    /// Full scans: touch every shard, so one sick shard sheds them all.
    Full,
    /// Partial scans: confined to the shards they actually read; sheds
    /// only when one of *those* is sick.
    Partial,
    /// Health probes: minimal single-shard reads admitted first during
    /// half-open recovery.
    Probe,
}

impl Priority {
    /// Numeric rank, higher = shed-resistant (`Bulk` = 0 … `Probe` = 3).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Bulk => 0,
            Priority::Full => 1,
            Priority::Partial => 2,
            Priority::Probe => 3,
        }
    }

    /// Stable lowercase name for metrics/traces.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Bulk => "bulk",
            Priority::Full => "full",
            Priority::Partial => "partial",
            Priority::Probe => "probe",
        }
    }
}

/// Lock-free per-shard load accumulators (service-internal).
#[derive(Debug, Default)]
pub(crate) struct ShardLoad {
    hits: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latency_us_total: AtomicU64,
    latency_samples: AtomicU64,
}

impl ShardLoad {
    pub(crate) fn record_hit(&self, latency: Duration) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_us_total.fetch_add(us, Ordering::Relaxed);
        self.latency_samples.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stat(&self, shard: usize, open: bool) -> ShardLoadStat {
        let samples = self.latency_samples.load(Ordering::Relaxed);
        let total = self.latency_us_total.load(Ordering::Relaxed);
        ShardLoadStat {
            shard,
            hits: self.hits.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            mean_latency_us: if samples == 0 { 0 } else { total / samples },
            open,
        }
    }
}

/// One shard's row in a [`LoadReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoadStat {
    /// The shard index.
    pub shard: usize,
    /// Backend operations that reached this shard and succeeded.
    pub hits: u64,
    /// Backend operations that reached this shard and errored.
    pub errors: u64,
    /// Requests shed at this shard's gate without touching the backend.
    pub shed: u64,
    /// Mean backend latency of this shard's hits, in microseconds.
    pub mean_latency_us: u64,
    /// True if the shard's breaker was open when the report was taken.
    pub open: bool,
}

/// Minimum total hits before the report diagnoses skew — below this the
/// sample is noise, not a hot shard.
const SKEW_VOLUME_FLOOR: u64 = 64;

/// Hot-shard threshold: a shard is hot when its hits are at least double
/// the per-shard mean, expressed in permille (‰ of the mean).
const SKEW_HOT_PERMILLE: u64 = 2000;

/// An instantaneous diagnosis of load distribution across shards.
///
/// Taken with [`SnapshotService::load_report`]; the same numbers are
/// exported as `service.load.*` gauges. `hot_shard` flags the busiest
/// shard once traffic is meaningfully skewed — the seam a later
/// generation-swapped shard map will consume to rebalance ranges.
///
/// [`SnapshotService::load_report`]: crate::SnapshotService::load_report
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Per-shard rows, indexed by shard.
    pub shards: Vec<ShardLoadStat>,
    /// The busiest shard's hit share, in permille of the per-shard mean
    /// (1000 = perfectly balanced; 2000 = double its fair share). Zero
    /// when there is no traffic.
    pub skew_permille: u64,
    /// The busiest shard, if traffic is skewed enough to matter (volume
    /// past a floor and the leader at ≥ 2× the mean).
    pub hot_shard: Option<usize>,
    /// Permille of served partial scans that did **not** fall back to a
    /// projected full scan — native subset scans and certified collects
    /// both count as certified. 1000 until the first partial is served
    /// (a quiet service reads as healthy); a sagging ratio means subset
    /// traffic is paying full-scan cost and the backing (or contention
    /// profile) deserves a look.
    pub partial_certified_permille: u64,
}

impl LoadReport {
    /// Builds the report from per-shard rows.
    pub(crate) fn compute(shards: Vec<ShardLoadStat>) -> Self {
        let n = shards.len().max(1) as u64;
        let total: u64 = shards.iter().map(|s| s.hits).sum();
        let (leader, leader_hits) = shards
            .iter()
            .map(|s| (s.shard, s.hits))
            .max_by_key(|&(_, hits)| hits)
            .unwrap_or((0, 0));
        let skew_permille = if total == 0 { 0 } else { leader_hits * 1000 * n / total };
        let hot = shards.len() > 1
            && total >= SKEW_VOLUME_FLOOR
            && skew_permille >= SKEW_HOT_PERMILLE;
        LoadReport {
            shards,
            skew_permille,
            hot_shard: hot.then_some(leader),
            partial_certified_permille: 1000,
        }
    }

    /// True if the report flags a hot shard.
    pub fn is_skewed(&self) -> bool {
        self.hot_shard.is_some()
    }

    /// Scales a breaker's `retry_after` hint by this report's view of
    /// `shard`: a hot shard gets a longer hint (up to 4× `base`) so its
    /// retry cohort spreads out instead of re-converging on the hotspot.
    pub fn retry_after_hint(&self, shard: usize, base: Duration) -> Duration {
        if self.hot_shard != Some(shard) {
            return base;
        }
        // skew_permille ≥ 2000 here; 2000‰ → 2×, capped at 4×.
        let factor_permille = self.skew_permille.min(4000);
        base.saturating_mul((factor_permille / 1000).max(1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(shard: usize, hits: u64) -> ShardLoadStat {
        ShardLoadStat { shard, hits, ..ShardLoadStat::default() }
    }

    #[test]
    fn priority_order_matches_shed_resistance() {
        assert!(Priority::Probe > Priority::Partial);
        assert!(Priority::Partial > Priority::Full);
        assert!(Priority::Full > Priority::Bulk);
        assert_eq!(Priority::Bulk.rank(), 0);
        assert_eq!(Priority::Probe.rank(), 3);
        assert_eq!(Priority::Partial.name(), "partial");
    }

    #[test]
    fn balanced_load_reports_no_hot_shard() {
        let r = LoadReport::compute(vec![stat(0, 100), stat(1, 100), stat(2, 100)]);
        assert_eq!(r.skew_permille, 1000);
        assert!(!r.is_skewed());
        assert_eq!(r.hot_shard, None);
    }

    #[test]
    fn skewed_load_flags_the_leader() {
        let r = LoadReport::compute(vec![stat(0, 10), stat(1, 180), stat(2, 10)]);
        assert!(r.skew_permille >= 2000, "{}", r.skew_permille);
        assert_eq!(r.hot_shard, Some(1));
    }

    #[test]
    fn low_volume_never_diagnoses_skew() {
        let r = LoadReport::compute(vec![stat(0, 0), stat(1, 10)]);
        assert!(!r.is_skewed(), "10 hits total is noise, not skew");
    }

    #[test]
    fn empty_and_single_shard_reports_are_quiet() {
        assert!(!LoadReport::compute(vec![]).is_skewed());
        let r = LoadReport::compute(vec![stat(0, 1_000_000)]);
        assert!(!r.is_skewed(), "one shard cannot be hotter than the mean");
    }

    #[test]
    fn hints_stretch_only_for_the_hot_shard() {
        let r = LoadReport::compute(vec![stat(0, 10), stat(1, 300), stat(2, 10)]);
        let base = Duration::from_millis(10);
        assert_eq!(r.retry_after_hint(0, base), base);
        let hot = r.retry_after_hint(1, base);
        assert!(hot >= 2 * base, "{hot:?}");
        assert!(hot <= 4 * base, "{hot:?}");
    }

    #[test]
    fn shard_load_accumulates_means() {
        let l = ShardLoad::default();
        l.record_hit(Duration::from_micros(100));
        l.record_hit(Duration::from_micros(300));
        l.record_error();
        l.record_shed();
        let s = l.stat(3, true);
        assert_eq!(s.shard, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.mean_latency_us, 200);
        assert!(s.open);
    }
}
