//! The scan-coalescing rendezvous.
//!
//! [`Coalescer`] lets many concurrent scan requests share one underlying
//! collect, with the paper's borrowed-view discipline (Observation 2 /
//! Lemma 4.1) lifted to the service layer: a request may return a view
//! produced by someone else **only if** the collect that produced it
//! started after the request did — then the collect interval is nested in
//! the request interval, so the collect's linearization point is a valid
//! linearization point for the borrowing request too.
//!
//! The protocol is a generation counter under one mutex:
//!
//! * `started` — bumped by a leader at election, which is also when its
//!   collect starts (the leader runs the collect immediately after
//!   [`enter`](Coalescer::enter) returns);
//! * `published` — the generation of the newest completed view;
//! * `failed` — the generation of the newest *failed* collect (fallible
//!   backing cores can error instead of publishing).
//!
//! A request records `my_gen = started` on entry. It may accept a
//! published view iff `published > my_gen`: such a view's collect was
//! elected — and therefore started — after the request entered. When no
//! acceptable view exists, the request becomes the leader if the seat is
//! free, else parks on a condvar. In particular a request that arrives
//! *during* collect `g` never accepts `g` (some of `g`'s reads may
//! precede the request); it is served by collect `g + 1`, whose leader is
//! elected from the parked cohort when `g` publishes. Every request
//! therefore waits for at most two collects, and each collect serves the
//! whole cohort parked before its election — the coalescing win.
//!
//! # Failure fan-out
//!
//! A leader whose collect errors calls [`LeadToken::fail`] instead of
//! publishing. The same generation rule then routes the *error*: a waiter
//! observing `failed > my_gen` learns that the collect elected to serve it
//! died, and returns [`Entry::Failed`] instead of parking forever. A
//! waiter that arrived *during* the failing collect (`my_gen = failed`)
//! is untouched by the error — the dead collect was never acceptable to
//! it anyway — and simply re-elects on the freed seat, exactly as it
//! would after a leader crash ([`LeadToken`]'s drop-abdication). Both
//! paths wake the whole cohort, so no waiter can park forever behind a
//! failed collect.
//!
//! Failed generations keep `started` bumped and never rewind. That is
//! what preserves the Observation-2 nesting condition across a
//! fault/heal boundary: any request re-entering after a fan-out error
//! records a *fresh* `my_gen ≥ failed`, so the only views it can ever
//! accept come from collects started after the re-entry — a post-heal
//! view can never be smuggled to a pre-fault request whose interval it
//! does not nest inside.

use std::sync::{Condvar, Mutex, MutexGuard};

use snapshot_core::{CoreError, Deadline};

struct CoalState<T> {
    /// Generation of the most recently elected leader (its collect starts
    /// at election).
    started: u64,
    /// Whether a leader is currently elected and collecting.
    leading: bool,
    /// Generation of the newest published view (0 = none yet).
    published: u64,
    /// The newest published view.
    view: Option<T>,
    /// Span id of the collect that produced `view` (0 = untraced): handed
    /// to joiners so their park spans can record a causal `follows` edge
    /// to the lead's collect.
    view_span: u64,
    /// Generation of the newest failed collect (0 = none yet).
    failed: u64,
    /// The error the newest failed collect died with.
    error: Option<CoreError>,
    /// Leaders that ended without publishing: explicit failures plus
    /// drop-abdications.
    abdications: u64,
    /// Requests currently parked on the condvar (observability; tests use
    /// it to stage deterministic cohorts).
    waiting: usize,
}

/// A generation-counted rendezvous point for coalescing scans.
#[derive(Debug)]
pub(crate) struct Coalescer<T> {
    state: Mutex<CoalState<T>>,
    cv: Condvar,
}

impl<T> std::fmt::Debug for CoalState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoalState")
            .field("started", &self.started)
            .field("leading", &self.leading)
            .field("published", &self.published)
            .field("failed", &self.failed)
            .field("abdications", &self.abdications)
            .field("waiting", &self.waiting)
            .finish()
    }
}

/// Outcome of [`Coalescer::enter`].
pub(crate) enum Entry<'a, T> {
    /// An acceptable view was (or became) available: its collect started
    /// after this request entered.
    Joined {
        /// The generation of the accepted view.
        generation: u64,
        /// The accepted view.
        view: T,
        /// Span id of the lead's collect span (0 when the lead was
        /// untraced): the joiner's causal link to the work it borrowed.
        lead_span: u64,
    },
    /// The collect elected to serve this request failed: the leader's
    /// error, fanned out to the cohort. The caller decides whether to
    /// re-enter (a fresh entry re-elects) or surface the error.
    Failed {
        /// The generation of the failed collect.
        generation: u64,
        /// The error the leader's collect died with.
        error: CoreError,
    },
    /// This request was elected leader: it must run the collect and
    /// [`publish`](LeadToken::publish) the result (or
    /// [`fail`](LeadToken::fail) it).
    Lead(LeadToken<'a, T>),
    /// The request's own deadline expired before any resolution arrived:
    /// it leaves the rendezvous empty-handed rather than parking past its
    /// budget. Crucially a waiter measures *its own* deadline here — it
    /// never inherits the (possibly longer) budget of the leader whose
    /// collect it was waiting on.
    Expired,
}

/// Leadership of one collect generation.
///
/// A leader ends its generation one of three ways: [`publish`] a
/// completed view, [`fail`] with the collect's typed error (fanned out to
/// the cohort), or drop without either (the collect panicked), which
/// abdicates — the seat is freed and waiters are woken so one of them can
/// take over. A stuck leader never wedges the cohort.
///
/// [`publish`]: LeadToken::publish
/// [`fail`]: LeadToken::fail
pub(crate) struct LeadToken<'a, T> {
    coalescer: &'a Coalescer<T>,
    generation: u64,
    done: bool,
}

fn lock<T>(m: &Mutex<CoalState<T>>) -> MutexGuard<'_, CoalState<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T: Clone> Coalescer<T> {
    pub(crate) fn new() -> Self {
        Coalescer {
            state: Mutex::new(CoalState {
                started: 0,
                leading: false,
                published: 0,
                view: None,
                view_span: 0,
                failed: 0,
                error: None,
                abdications: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Joins the rendezvous: returns an acceptable published view, the
    /// fanned-out error of the collect that was serving this request,
    /// leadership of the next collect, or [`Entry::Expired`] once the
    /// request's own `deadline` passes unresolved. Blocks (without
    /// holding the lock, and never past `deadline`) while another
    /// leader's collect is in flight and none of those resolutions is
    /// available yet.
    pub(crate) fn enter(&self, deadline: Deadline) -> Entry<'_, T> {
        let mut s = lock(&self.state);
        let my_gen = s.started;
        loop {
            // Success is checked before failure: if a newer collect
            // published after an older one failed, the view serves this
            // request and the stale error is irrelevant to it.
            if s.published > my_gen {
                let generation = s.published;
                let view = s.view.clone().expect("published generation without a view");
                return Entry::Joined { generation, view, lead_span: s.view_span };
            }
            if s.failed > my_gen {
                let generation = s.failed;
                let error = s.error.clone().expect("failed generation without an error");
                return Entry::Failed { generation, error };
            }
            // Deadline before leadership: an out-of-budget request must
            // not start a collect it has no time to run.
            if deadline.expired() {
                return Entry::Expired;
            }
            if !s.leading {
                s.leading = true;
                s.started += 1;
                let generation = s.started;
                return Entry::Lead(LeadToken { coalescer: self, generation, done: false });
            }
            s.waiting += 1;
            s = match deadline.remaining() {
                None => self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(left) => {
                    // Timed park: on timeout the loop re-checks — a view
                    // or error that raced the deadline still wins.
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(s, left)
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
            };
            s.waiting -= 1;
        }
    }

    /// Number of requests currently parked waiting for a collect.
    pub(crate) fn waiters(&self) -> usize {
        lock(&self.state).waiting
    }

    /// Number of leaderships that ended without a published view
    /// (explicit failures plus drop-abdications).
    pub(crate) fn abdications(&self) -> u64 {
        lock(&self.state).abdications
    }
}

impl<T> LeadToken<'_, T> {
    /// The generation this leader's collect carries.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Publishes the completed collect's view and wakes the cohort.
    /// `span` is the id of the collect span that produced the view (0
    /// when untraced); joiners record it as a causal `follows` edge.
    pub(crate) fn publish(mut self, view: T, span: u64) {
        let mut s = lock(&self.coalescer.state);
        debug_assert_eq!(s.started, self.generation, "interleaved leaders");
        s.leading = false;
        s.published = self.generation;
        s.view = Some(view);
        s.view_span = span;
        self.done = true;
        drop(s);
        self.coalescer.cv.notify_all();
    }

    /// Ends the generation with the collect's error and wakes the cohort.
    ///
    /// Every waiter this collect was serving (`my_gen < generation`)
    /// receives [`Entry::Failed`] with this error; waiters that arrived
    /// during the collect re-elect on the freed seat.
    pub(crate) fn fail(mut self, error: CoreError) {
        let mut s = lock(&self.coalescer.state);
        debug_assert_eq!(s.started, self.generation, "interleaved leaders");
        s.leading = false;
        s.failed = self.generation;
        s.error = Some(error);
        s.abdications += 1;
        self.done = true;
        drop(s);
        self.coalescer.cv.notify_all();
    }
}

impl<T> Drop for LeadToken<'_, T> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Abdication: free the seat so a waiter can lead the generation's
        // retry. `started` stays bumped — waiters from before this failed
        // election still need a collect that starts after them, which the
        // successor provides.
        let mut s = lock(&self.coalescer.state);
        s.leading = false;
        s.abdications += 1;
        drop(s);
        self.coalescer.cv.notify_all();
    }
}

impl<T> std::fmt::Debug for LeadToken<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeadToken")
            .field("generation", &self.generation)
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unavailable() -> CoreError {
        CoreError::Unavailable { reason: "quorum lost".into() }
    }

    #[test]
    fn first_entrant_leads_generation_one() {
        let c: Coalescer<u32> = Coalescer::new();
        match c.enter(Deadline::none()) {
            Entry::Lead(t) => assert_eq!(t.generation(), 1),
            _ => panic!("nothing published yet"),
        };
    }

    #[test]
    fn entrant_after_publish_must_not_accept_the_old_view() {
        // The published collect started before this entrant's request, so
        // the generation rule forces a fresh collect.
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t) = c.enter(Deadline::none()) else { panic!("expected lead") };
        t.publish(7, 0);
        match c.enter(Deadline::none()) {
            Entry::Lead(t) => assert_eq!(t.generation(), 2),
            _ => panic!("stale view accepted"),
        };
    }

    #[test]
    fn waiter_parked_during_a_collect_joins_the_next_generation() {
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match c.enter(Deadline::none()) {
                // Parked during collect 1 → elected for collect 2.
                Entry::Lead(t2) => {
                    assert_eq!(t2.generation(), 2);
                    t2.publish(8, 0);
                    8
                }
                _ => panic!("must not accept generation 1"),
            });
            while c.waiters() == 0 {
                std::thread::yield_now();
            }
            t1.publish(7, 0);
            assert_eq!(waiter.join().unwrap(), 8);
        });
        // A cohort parked during collect 2 would have accepted it; a fresh
        // entrant (request started after collect 2) must not.
        assert!(matches!(c.enter(Deadline::none()), Entry::Lead(_)));
    }

    #[test]
    fn cohort_parked_before_election_accepts_the_published_view() {
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let followers: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| match c.enter(Deadline::none()) {
                        Entry::Joined { generation, view, .. } => (generation, view, false),
                        Entry::Lead(t) => {
                            let g = t.generation();
                            t.publish(90 + g as u32, 0);
                            (g, 90 + g as u32, true)
                        }
                        Entry::Failed { .. } => panic!("nothing failed"),
                        Entry::Expired => panic!("unbounded deadlines never expire"),
                    })
                })
                .collect();
            while c.waiters() < 4 {
                std::thread::yield_now();
            }
            // All four parked during collect 1: exactly one leads collect
            // 2, the other three join it.
            t1.publish(70, 0);
            let results: Vec<_> = followers.into_iter().map(|f| f.join().unwrap()).collect();
            assert_eq!(results.iter().filter(|r| r.2).count(), 1, "one leader");
            for (generation, view, _) in results {
                assert_eq!(generation, 2);
                assert_eq!(view, 92);
            }
        });
    }

    #[test]
    fn dropped_leadership_is_taken_over_by_a_waiter() {
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match c.enter(Deadline::none()) {
                Entry::Lead(t) => {
                    t.publish(5, 0);
                    true
                }
                _ => false,
            });
            while c.waiters() == 0 {
                std::thread::yield_now();
            }
            drop(t1); // leader "crashed" without publishing
            assert!(waiter.join().unwrap(), "waiter must inherit the seat");
        });
        assert_eq!(c.abdications(), 1);
    }

    #[test]
    fn failure_fans_out_to_the_cohort_the_collect_served() {
        // Three waiters park during collect 1. The leader abdicates, one
        // waiter inherits the seat as collect 2 — elected to serve the
        // other two — and its collect fails: both must receive the error
        // rather than park forever.
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| match c.enter(Deadline::none()) {
                        Entry::Lead(t) => {
                            assert_eq!(t.generation(), 2);
                            t.fail(unavailable());
                            None
                        }
                        Entry::Failed { generation, error } => Some((generation, error)),
                        Entry::Joined { .. } => panic!("nothing publishable"),
                        Entry::Expired => panic!("unbounded deadlines never expire"),
                    })
                })
                .collect();
            while c.waiters() < 3 {
                std::thread::yield_now();
            }
            drop(t1);
            let results: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
            let fanned: Vec<_> = results.iter().flatten().collect();
            assert_eq!(fanned.len(), 2, "exactly one waiter led, two got the fan-out");
            for (generation, error) in fanned {
                assert_eq!(*generation, 2);
                assert_eq!(*error, unavailable());
            }
        });
        assert_eq!(c.abdications(), 2, "one drop + one explicit failure");
    }

    #[test]
    fn waiters_parked_during_the_failing_collect_reelect() {
        // A waiter that arrived during collect 1 is NOT served by it — it
        // ignores the failure and simply inherits the seat, like after a
        // crash.
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match c.enter(Deadline::none()) {
                Entry::Lead(t) => {
                    assert_eq!(t.generation(), 2);
                    t.publish(9, 0);
                    true
                }
                _ => false,
            });
            while c.waiters() == 0 {
                std::thread::yield_now();
            }
            t1.fail(unavailable());
            assert!(waiter.join().unwrap(), "waiter must re-elect, not receive gen-1's error");
        });
    }

    #[test]
    fn expired_entrant_leaves_without_taking_the_seat() {
        use std::time::{Duration, Instant};
        let c: Coalescer<u32> = Coalescer::new();
        // The seat is free, but an expired request must not lead.
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(matches!(c.enter(past), Entry::Expired));
        // The rendezvous is untouched: a live request leads generation 1.
        let entry = c.enter(Deadline::none());
        match entry {
            Entry::Lead(t) => assert_eq!(t.generation(), 1),
            _ => panic!("expired entrant must not consume a generation"),
        }
    }

    #[test]
    fn waiter_honors_its_own_deadline_not_the_leaders() {
        use std::time::Duration;
        // The leader (unbounded budget) parks the cohort. A waiter with a
        // short budget must give up with Expired instead of inheriting
        // the leader's patience; a resolution arriving later is ignored.
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let d = Deadline::after(Duration::from_millis(20));
                let started = std::time::Instant::now();
                let out = c.enter(d);
                (matches!(out, Entry::Expired), started.elapsed())
            });
            let (expired, waited) = waiter.join().unwrap();
            assert!(expired, "short-budget waiter must expire, not park");
            assert!(waited < Duration::from_secs(5), "must not wait for the leader");
            t1.publish(7, 0); // the leader finishing later is fine
        });
        assert_eq!(c.waiters(), 0, "expired waiters un-count themselves");
    }

    #[test]
    fn fresh_entrant_after_a_failure_never_sees_the_stale_error() {
        let c: Coalescer<u32> = Coalescer::new();
        let Entry::Lead(t1) = c.enter(Deadline::none()) else { panic!("expected lead") };
        t1.fail(unavailable());
        // my_gen = started = 1 = failed: the failure predates this request
        // and must not leak into it.
        let Entry::Lead(t2) = c.enter(Deadline::none()) else { panic!("stale error leaked") };
        assert_eq!(t2.generation(), 2);
        t2.publish(11, 0);
        // And the post-heal view obeys the same generation rule as ever: a
        // request entering now must not accept collect 2.
        assert!(matches!(c.enter(Deadline::none()), Entry::Lead(_)));
    }
}
