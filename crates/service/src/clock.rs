//! Injectable time source for the health layer.
//!
//! The circuit breakers reason about time as microseconds on a monotone
//! service-local clock. Production uses [`MonotonicClock`] (an `Instant`
//! epoch); lifecycle tests inject a [`ManualClock`] and *advance it by
//! hand*, so a full closed → open → half-open → closed sequence runs
//! deterministically without a single `sleep`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone microsecond clock the service consults for breaker
/// cooldowns and half-open ramps.
///
/// Implementations must be monotone (never run backwards); the absolute
/// origin is irrelevant, only differences are used.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds elapsed since this clock's epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: wall time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

/// A hand-advanced clock for deterministic breaker lifecycle tests.
///
/// Starts at zero; [`advance`](Self::advance) and [`set_us`](Self::set_us)
/// move it forward. Time shared across threads moves atomically.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_us: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at microsecond zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `by` (saturating).
    pub fn advance(&self, by: Duration) {
        let us = by.as_micros().min(u128::from(u64::MAX)) as u64;
        self.now_us.fetch_add(us, Ordering::AcqRel);
    }

    /// Moves the clock to an absolute microsecond reading. Monotonicity
    /// is the caller's responsibility; moving backwards is ignored.
    pub fn set_us(&self, us: u64) {
        self.now_us.fetch_max(us, Ordering::AcqRel);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now_us(), 250);
        c.set_us(1000);
        assert_eq!(c.now_us(), 1000);
        c.set_us(10); // backwards: ignored
        assert_eq!(c.now_us(), 1000);
    }
}
