//! The versioned protocol: every message that crosses a replica
//! connection, with hand-rolled canonical encode/decode.
//!
//! # Wire format
//!
//! Every frame body begins with a one-byte kind discriminant; all
//! integers are little-endian (see DESIGN.md §14 for the field table).
//!
//! | kind | frame        | body after the kind byte                                  |
//! |------|--------------|-----------------------------------------------------------|
//! | 1    | `Hello`      | magic `[u8;4]`, version `u16`, client `u32`               |
//! | 2    | `HelloAck`   | magic `[u8;4]`, version `u16`, replica `u32`              |
//! | 3    | `Query`      | id `u64`, lane `u32`, segment `u32`                       |
//! | 4    | `Store`      | id `u64`, lane `u32`, segment `u32`, tag, value `bytes`   |
//! | 5    | `QueryReply` | id `u64`, tag, present `u8`, \[value `bytes`\]            |
//! | 6    | `StoreAck`   | id `u64`                                                  |
//! | 7    | `Error`      | id `u64`, code `u16`, detail `string`                     |
//!
//! where `tag` is seq `u64` + writer `u32`, and `bytes`/`string` are
//! `u32`-length-prefixed. Registers are addressed as `(lane, segment)`
//! pairs — the snapshot construction's own coordinates — so a replica
//! dump is legible without a register-id allocation table.

use std::fmt;

use crate::error::WireError;
use crate::value::{put_bytes, Reader};

/// The four magic bytes opening every handshake frame.
pub const MAGIC: [u8; 4] = *b"SNAP";

/// The protocol version this build speaks.
///
/// v2 added the per-frame body CRC-32 to the framing layer; a v1 peer
/// desyncs at the first frame and is dropped before the handshake can
/// even report the mismatch, which is the correct outcome for an
/// incompatible framing.
pub const PROTOCOL_VERSION: u16 = 2;

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_QUERY: u8 = 3;
const KIND_STORE: u8 = 4;
const KIND_QUERY_REPLY: u8 = 5;
const KIND_STORE_ACK: u8 = 6;
const KIND_ERROR: u8 = 7;

/// The ABD logical timestamp as it crosses the wire: `(seq, writer)`,
/// compared lexicographically exactly like the in-process `Tag`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireTag {
    /// Logical sequence number.
    pub seq: u64,
    /// Writer process id (tie-breaker).
    pub writer: u32,
}

impl WireTag {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.writer.to_le_bytes());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireTag {
            seq: r.u64()?,
            writer: r.u32()?,
        })
    }
}

/// Typed error classes an [`Frame::Error`] reply carries.
///
/// Unknown discriminants decode as [`ErrorCode::Unknown`] instead of
/// failing the frame, so a newer replica can refuse a request with a
/// code this build has never heard of and the client still sees a typed
/// error reply rather than a dead connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request frame did not decode.
    Malformed,
    /// The request kind (or protocol version) is not supported.
    Unsupported,
    /// The request or its reply would exceed the frame-size cap.
    TooLarge,
    /// The replica failed internally.
    Internal,
    /// A code minted by a protocol revision this build does not know.
    Unknown(
        /// The raw discriminant.
        u16,
    ),
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::TooLarge => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Unknown(c) => c,
        }
    }

    fn from_u16(c: u16) -> Self {
        match c {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::Internal,
            other => ErrorCode::Unknown(other),
        }
    }

    /// Stable lowercase name (diagnostics, metrics).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Internal => "internal",
            ErrorCode::Unknown(_) => "unknown",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol message.
///
/// A connection opens with `Hello`/`HelloAck` (magic + version check),
/// then carries any number of `Query`/`Store` requests answered by
/// `QueryReply`/`StoreAck`/`Error`, matched by request id. Requests are
/// retransmission-safe: replicas dedupe `Store` by id and answer every
/// `Query` delivery, exactly like the simulated network's replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client opening handshake.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Client identity (diagnostics only; quorum math is positional).
        client: u32,
    },
    /// Replica handshake acceptance.
    HelloAck {
        /// Protocol version the replica speaks.
        version: u16,
        /// The replica's index in the cluster.
        replica: u32,
    },
    /// "Send me your `(tag, value)` for this register."
    Query {
        /// Request id (dedup + reply matching).
        id: u64,
        /// The register's lane coordinate.
        lane: u32,
        /// The register's segment coordinate.
        segment: u32,
    },
    /// "Store this `(tag, value)` if it exceeds yours, then ack."
    Store {
        /// Request id (dedup + reply matching).
        id: u64,
        /// The register's lane coordinate.
        lane: u32,
        /// The register's segment coordinate.
        segment: u32,
        /// The ABD timestamp of the value.
        tag: WireTag,
        /// The encoded register value.
        value: Vec<u8>,
    },
    /// Reply to [`Frame::Query`]: the replica's current `(tag, value)`
    /// (`value` absent if it has never stored this register).
    QueryReply {
        /// The request id this answers.
        id: u64,
        /// The replica's current tag for the register.
        tag: WireTag,
        /// The encoded value, if any.
        value: Option<Vec<u8>>,
    },
    /// Reply to [`Frame::Store`]: applied (or recognized as a duplicate
    /// and re-acked).
    StoreAck {
        /// The request id this answers.
        id: u64,
    },
    /// Typed refusal: the request was received but not served.
    Error {
        /// The request id this answers (0 when the request's id was
        /// itself unreadable).
        id: u64,
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl Frame {
    /// Encodes this frame's body (the framing layer adds the length
    /// prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Frame::Hello { version, client } => {
                out.push(KIND_HELLO);
                out.extend_from_slice(&MAGIC);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&client.to_le_bytes());
            }
            Frame::HelloAck { version, replica } => {
                out.push(KIND_HELLO_ACK);
                out.extend_from_slice(&MAGIC);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&replica.to_le_bytes());
            }
            Frame::Query { id, lane, segment } => {
                out.push(KIND_QUERY);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&lane.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
            }
            Frame::Store {
                id,
                lane,
                segment,
                tag,
                value,
            } => {
                out.push(KIND_STORE);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&lane.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
                tag.encode_into(&mut out);
                put_bytes(&mut out, value);
            }
            Frame::QueryReply { id, tag, value } => {
                out.push(KIND_QUERY_REPLY);
                out.extend_from_slice(&id.to_le_bytes());
                tag.encode_into(&mut out);
                match value {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_bytes(&mut out, v);
                    }
                }
            }
            Frame::StoreAck { id } => {
                out.push(KIND_STORE_ACK);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Frame::Error { id, code, detail } => {
                out.push(KIND_ERROR);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&code.to_u16().to_le_bytes());
                put_bytes(&mut out, detail.as_bytes());
            }
        }
        out
    }

    /// Decodes one frame body. Never panics: every malformation maps to a
    /// typed [`WireError`].
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(body);
        let frame = match r.u8()? {
            kind @ (KIND_HELLO | KIND_HELLO_ACK) => {
                let magic: [u8; 4] = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
                if magic != MAGIC {
                    return Err(WireError::BadMagic(magic));
                }
                let version = r.u16()?;
                let peer = r.u32()?;
                if kind == KIND_HELLO {
                    Frame::Hello {
                        version,
                        client: peer,
                    }
                } else {
                    Frame::HelloAck {
                        version,
                        replica: peer,
                    }
                }
            }
            KIND_QUERY => Frame::Query {
                id: r.u64()?,
                lane: r.u32()?,
                segment: r.u32()?,
            },
            KIND_STORE => Frame::Store {
                id: r.u64()?,
                lane: r.u32()?,
                segment: r.u32()?,
                tag: WireTag::decode_from(&mut r)?,
                value: r.bytes("store.value")?.to_vec(),
            },
            KIND_QUERY_REPLY => {
                let id = r.u64()?;
                let tag = WireTag::decode_from(&mut r)?;
                let value = match r.u8()? {
                    0 => None,
                    _ => Some(r.bytes("query_reply.value")?.to_vec()),
                };
                Frame::QueryReply { id, tag, value }
            }
            KIND_STORE_ACK => Frame::StoreAck { id: r.u64()? },
            KIND_ERROR => Frame::Error {
                id: r.u64()?,
                code: ErrorCode::from_u16(r.u16()?),
                detail: r.string("error.detail")?,
            },
            other => return Err(WireError::UnknownFrameKind(other)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// The request id this frame carries (handshake frames have none).
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Frame::Hello { .. } | Frame::HelloAck { .. } => None,
            Frame::Query { id, .. }
            | Frame::Store { id, .. }
            | Frame::QueryReply { id, .. }
            | Frame::StoreAck { id }
            | Frame::Error { id, .. } => Some(*id),
        }
    }

    /// Stable lowercase name of the frame kind (diagnostics, metrics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Query { .. } => "query",
            Frame::Store { .. } => "store",
            Frame::QueryReply { .. } => "query_reply",
            Frame::StoreAck { .. } => "store_ack",
            Frame::Error { .. } => "error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                client: 3,
            },
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
                replica: 1,
            },
            Frame::Query {
                id: 42,
                lane: 2,
                segment: 7,
            },
            Frame::Store {
                id: u64::MAX,
                lane: 0,
                segment: u32::MAX,
                tag: WireTag {
                    seq: 99,
                    writer: 4,
                },
                value: vec![1, 2, 3],
            },
            Frame::QueryReply {
                id: 7,
                tag: WireTag::default(),
                value: None,
            },
            Frame::QueryReply {
                id: 7,
                tag: WireTag { seq: 1, writer: 0 },
                value: Some(vec![]),
            },
            Frame::StoreAck { id: 1 },
            Frame::Error {
                id: 0,
                code: ErrorCode::Malformed,
                detail: String::from("kind 200 unknown"),
            },
            Frame::Error {
                id: 5,
                code: ErrorCode::Unknown(700),
                detail: String::new(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in all_frames() {
            let body = frame.encode();
            assert_eq!(Frame::decode(&body).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for frame in all_frames() {
            let body = frame.encode();
            for cut in 0..body.len() {
                match Frame::decode(&body[..cut]) {
                    Err(_) => {}
                    Ok(f) => panic!("{cut}-byte prefix of {frame:?} decoded as {f:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Frame::StoreAck { id: 9 }.encode();
        body.push(0);
        assert_eq!(
            Frame::decode(&body),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_kind_and_bad_magic_are_typed() {
        assert_eq!(Frame::decode(&[200]), Err(WireError::UnknownFrameKind(200)));
        assert_eq!(
            Frame::decode(&[]),
            Err(WireError::Truncated {
                expected: 1,
                got: 0
            })
        );
        let mut hello = Frame::Hello {
            version: 1,
            client: 0,
        }
        .encode();
        hello[1] = b'X';
        assert!(matches!(Frame::decode(&hello), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn unknown_error_codes_still_decode() {
        let body = Frame::Error {
            id: 3,
            code: ErrorCode::Unknown(612),
            detail: String::from("future"),
        }
        .encode();
        match Frame::decode(&body).unwrap() {
            Frame::Error {
                code: ErrorCode::Unknown(612),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }
}
