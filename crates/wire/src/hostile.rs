//! Byte-level fault injection for the real transport: the socket
//! analogue of the simulated network's `FaultPlan`.
//!
//! The simulated `Network` in `snapshot-abd` drops, duplicates, reorders
//! and delays whole messages; a real socket fails differently — bytes
//! get corrupted in flight, writes land partially, middleboxes stall,
//! connections reset mid-frame, and hostile peers trickle handshakes
//! one byte at a time. This module injects exactly those failures,
//! deterministically:
//!
//! * [`HostileKnobs`] — the shared, runtime-adjustable fault intensity
//!   (probabilities in parts-per-million, stall/trickle durations).
//!   Knobs are atomics, so a nemesis thread can re-profile a proxy
//!   mid-flight the way the sim's `Nemesis` re-profiles links between
//!   phases; [`HostileProfile`] names the canned phase settings.
//! * [`HostileStream`] — wraps any writer and applies the knobs to
//!   every write: seeded per-byte corruption, partial writes, stalls,
//!   mid-frame resets, and slow-loris trickling of a connection's
//!   first bytes (the handshake).
//! * [`HostileProxy`] — a man-in-the-middle relay between a client and
//!   a real replica endpoint, pumping both directions through
//!   [`HostileStream`]s. Point a `RemoteTransport` at the proxy's
//!   endpoint and every byte of the conversation crosses the fault
//!   plan.
//!
//! Everything is seeded ([`HostileProxy::spawn`] takes the seed) and
//! every injected fault is counted, so a soak that passes proves the
//! faults actually fired.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::net::{Endpoint, WireStream};

/// How many leading bytes of a connection count as "the handshake" for
/// slow-loris trickling.
const TRICKLE_WINDOW: u64 = 64;

/// Minimal xorshift64* PRNG — reproducible fault injection without an
/// external randomness dependency.
#[derive(Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// True with probability `ppm` parts-per-million.
    fn chance(&mut self, ppm: u32) -> bool {
        ppm > 0 && (self.next_u64() % 1_000_000) < ppm as u64
    }
}

/// Canned fault profiles, one per nemesis phase. Each maps to a knob
/// setting via [`HostileKnobs::apply`]; mixing custom intensities is a
/// matter of calling the individual setters instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostileProfile {
    /// No injected faults (heal phase).
    Clean,
    /// Flip roughly one byte per two thousand in flight.
    Corrupt,
    /// Split writes and stall between the pieces.
    Stall,
    /// Reset connections mid-frame.
    Reset,
    /// Trickle each connection's first bytes one at a time, slowly.
    SlowLoris,
}

/// Shared, runtime-adjustable fault intensities, plus counters proving
/// what actually fired. All fields are atomics: a test's nemesis thread
/// flips profiles while the pumps are mid-write.
#[derive(Debug, Default)]
pub struct HostileKnobs {
    /// Per-byte corruption probability, parts-per-million.
    corrupt_ppm: AtomicU32,
    /// Per-write probability of writing only a prefix, ppm.
    partial_ppm: AtomicU32,
    /// Per-write probability of a stall, ppm.
    stall_ppm: AtomicU32,
    /// Stall duration, milliseconds.
    stall_ms: AtomicU32,
    /// Per-write probability of a mid-frame connection reset, ppm.
    reset_ppm: AtomicU32,
    /// Slow-loris delay per trickled handshake byte, milliseconds
    /// (zero disables trickling).
    trickle_ms: AtomicU32,

    /// Bytes corrupted so far.
    corrupted_bytes: AtomicU64,
    /// Writes cut short so far.
    partial_writes: AtomicU64,
    /// Stalls injected so far.
    stalls: AtomicU64,
    /// Connections reset mid-frame so far.
    resets: AtomicU64,
    /// Handshake bytes trickled so far.
    trickled_bytes: AtomicU64,
}

impl HostileKnobs {
    /// Fresh knobs with every fault disabled.
    pub fn new() -> Arc<Self> {
        Arc::new(HostileKnobs::default())
    }

    /// Applies a canned profile, replacing every knob.
    pub fn apply(&self, profile: HostileProfile) {
        let (corrupt, partial, stall_p, stall_ms, reset, trickle) = match profile {
            HostileProfile::Clean => (0, 0, 0, 0, 0, 0),
            HostileProfile::Corrupt => (500, 0, 0, 0, 0, 0),
            HostileProfile::Stall => (0, 300_000, 200_000, 30, 0, 0),
            HostileProfile::Reset => (0, 0, 0, 0, 60_000, 0),
            HostileProfile::SlowLoris => (0, 0, 0, 0, 0, 5),
        };
        self.corrupt_ppm.store(corrupt, Ordering::Relaxed);
        self.partial_ppm.store(partial, Ordering::Relaxed);
        self.stall_ppm.store(stall_p, Ordering::Relaxed);
        self.stall_ms.store(stall_ms, Ordering::Relaxed);
        self.reset_ppm.store(reset, Ordering::Relaxed);
        self.trickle_ms.store(trickle, Ordering::Relaxed);
    }

    /// Sets the per-byte corruption probability (parts-per-million).
    pub fn set_corrupt_ppm(&self, ppm: u32) {
        self.corrupt_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Sets the partial-write probability (parts-per-million).
    pub fn set_partial_ppm(&self, ppm: u32) {
        self.partial_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Sets the stall probability (ppm) and duration (milliseconds).
    pub fn set_stall(&self, ppm: u32, ms: u32) {
        self.stall_ppm.store(ppm, Ordering::Relaxed);
        self.stall_ms.store(ms, Ordering::Relaxed);
    }

    /// Sets the mid-frame reset probability (parts-per-million).
    pub fn set_reset_ppm(&self, ppm: u32) {
        self.reset_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Sets the slow-loris per-byte trickle delay (ms; zero disables).
    pub fn set_trickle_ms(&self, ms: u32) {
        self.trickle_ms.store(ms, Ordering::Relaxed);
    }

    /// Bytes corrupted since construction.
    pub fn corrupted_bytes(&self) -> u64 {
        self.corrupted_bytes.load(Ordering::Relaxed)
    }

    /// Writes cut short since construction.
    pub fn partial_writes(&self) -> u64 {
        self.partial_writes.load(Ordering::Relaxed)
    }

    /// Stalls injected since construction.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Connections reset mid-frame since construction.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Handshake bytes trickled since construction.
    pub fn trickled_bytes(&self) -> u64 {
        self.trickled_bytes.load(Ordering::Relaxed)
    }

    /// Total faults of any kind injected since construction.
    pub fn total_faults(&self) -> u64 {
        self.corrupted_bytes()
            + self.partial_writes()
            + self.stalls()
            + self.resets()
            + self.trickled_bytes()
    }
}

/// One phase of a hostile schedule: hold `profile` for `dwell` — the
/// real-socket mirror of the sim nemesis's `(NemesisEvent, Dwell)`
/// pairs.
#[derive(Clone, Copy, Debug)]
pub struct HostilePhase {
    /// The fault profile to hold.
    pub profile: HostileProfile,
    /// How long to hold it.
    pub dwell: Duration,
}

impl HostilePhase {
    /// A phase holding `profile` for `dwell`.
    pub fn new(profile: HostileProfile, dwell: Duration) -> Self {
        HostilePhase { profile, dwell }
    }
}

/// Walks `phases` against `knobs` in real time, ending on
/// [`HostileProfile::Clean`]. Blocking — callers wanting a background
/// nemesis spawn a thread around this.
pub fn drive_phases(knobs: &HostileKnobs, phases: &[HostilePhase]) {
    for phase in phases {
        knobs.apply(phase.profile);
        std::thread::sleep(phase.dwell);
    }
    knobs.apply(HostileProfile::Clean);
}

/// A writer that pushes every byte through the fault plan: corruption,
/// partial writes, stalls, mid-frame resets, and slow-loris trickling,
/// all seeded and all counted on the shared [`HostileKnobs`].
#[derive(Debug)]
pub struct HostileStream<W> {
    inner: W,
    knobs: Arc<HostileKnobs>,
    rng: XorShift,
    written: u64,
    dead: bool,
}

impl<W: Write> HostileStream<W> {
    /// Wraps `inner`, injecting faults per `knobs`, deterministically
    /// from `seed`.
    pub fn new(inner: W, knobs: Arc<HostileKnobs>, seed: u64) -> Self {
        HostileStream { inner, knobs, rng: XorShift::new(seed), written: 0, dead: false }
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for HostileStream<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected reset"));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }

        // Mid-frame reset: push a prefix through (so the peer sees a
        // frame cut off mid-body, not a clean close), then die.
        if self.rng.chance(self.knobs.reset_ppm.load(Ordering::Relaxed)) {
            self.dead = true;
            self.knobs.resets.fetch_add(1, Ordering::Relaxed);
            let cut = (self.rng.next_u64() as usize) % buf.len();
            if cut > 0 {
                let _ = self.inner.write_all(&buf[..cut]);
                let _ = self.inner.flush();
            }
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected reset"));
        }

        // Stall: hold the bytes hostage for a while first.
        if self.rng.chance(self.knobs.stall_ppm.load(Ordering::Relaxed)) {
            self.knobs.stalls.fetch_add(1, Ordering::Relaxed);
            let ms = self.knobs.stall_ms.load(Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(ms as u64));
        }

        // Slow loris: the connection's first bytes go out one at a
        // time, each after a delay.
        let trickle_ms = self.knobs.trickle_ms.load(Ordering::Relaxed);
        if trickle_ms > 0 && self.written < TRICKLE_WINDOW {
            std::thread::sleep(Duration::from_millis(trickle_ms as u64));
            let mut byte = [buf[0]];
            if self.rng.chance(self.knobs.corrupt_ppm.load(Ordering::Relaxed)) {
                byte[0] ^= (self.rng.next_u64() as u8) | 1;
                self.knobs.corrupted_bytes.fetch_add(1, Ordering::Relaxed);
            }
            self.inner.write_all(&byte)?;
            self.inner.flush()?;
            self.written += 1;
            self.knobs.trickled_bytes.fetch_add(1, Ordering::Relaxed);
            return Ok(1);
        }

        // Partial write: hand the caller a short count. Honest `Write`
        // users loop; a pump that doesn't models a lossy middlebox.
        let mut len = buf.len();
        if len > 1 && self.rng.chance(self.knobs.partial_ppm.load(Ordering::Relaxed)) {
            len = 1 + (self.rng.next_u64() as usize) % (len - 1);
            self.knobs.partial_writes.fetch_add(1, Ordering::Relaxed);
        }

        // Corruption: flip bytes with the configured per-byte odds.
        let corrupt_ppm = self.knobs.corrupt_ppm.load(Ordering::Relaxed);
        if corrupt_ppm > 0 {
            let mut mangled = buf[..len].to_vec();
            let mut touched = false;
            for b in mangled.iter_mut() {
                if self.rng.chance(corrupt_ppm) {
                    *b ^= (self.rng.next_u64() as u8) | 1;
                    self.knobs.corrupted_bytes.fetch_add(1, Ordering::Relaxed);
                    touched = true;
                }
            }
            if touched {
                let n = self.inner.write(&mangled)?;
                self.written += n as u64;
                return Ok(n);
            }
        }
        let n = self.inner.write(&buf[..len])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct ProxyShared {
    knobs: Arc<HostileKnobs>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<WireStream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A man-in-the-middle relay: clients dial the proxy's endpoint, the
/// proxy dials the real replica, and both directions are pumped through
/// [`HostileStream`]s sharing one [`HostileKnobs`].
pub struct HostileProxy {
    endpoint: Endpoint,
    target: Endpoint,
    shared: Arc<ProxyShared>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl HostileProxy {
    /// Binds `listen`, relaying every accepted connection to `target`
    /// through the fault plan. `seed` makes the whole proxy's fault
    /// sequence reproducible.
    pub fn spawn(
        listen: Endpoint,
        target: Endpoint,
        knobs: Arc<HostileKnobs>,
        seed: u64,
    ) -> io::Result<HostileProxy> {
        let listener = listen.bind()?;
        let endpoint = listener.local_endpoint()?;
        let shared = Arc::new(ProxyShared {
            knobs,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_target = target.clone();
        let accept = std::thread::Builder::new()
            .name("hostile-proxy-accept".into())
            .spawn(move || {
                let mut conn_seed = seed;
                loop {
                    let client = match listener.accept() {
                        Ok(s) => s,
                        Err(_) => {
                            if accept_shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                    };
                    if accept_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    conn_seed = conn_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    let server = match accept_target.dial() {
                        Ok(s) => s,
                        Err(_) => continue, // replica down: drop the client
                    };
                    relay(&accept_shared, client, server, conn_seed);
                }
                listener.cleanup();
            })
            .expect("spawning hostile proxy accept thread");
        Ok(HostileProxy { endpoint, target, shared, accept: Mutex::new(Some(accept)) })
    }

    /// The endpoint clients should dial (instead of the real replica).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The replica endpoint being fronted.
    pub fn target(&self) -> &Endpoint {
        &self.target
    }

    /// The shared fault knobs (adjust mid-flight to drive phases).
    pub fn knobs(&self) -> &Arc<HostileKnobs> {
        &self.shared.knobs
    }

    /// Stops accepting, severs every relayed connection, joins the
    /// pumps. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.endpoint.dial(); // unblock accept
        for conn in self.shared.conns.lock().unwrap().iter() {
            conn.shutdown();
        }
        if let Some(t) = self.accept.lock().unwrap().take() {
            let _ = t.join();
        }
        let pumps = std::mem::take(&mut *self.shared.pumps.lock().unwrap());
        for t in pumps {
            let _ = t.join();
        }
    }
}

impl Drop for HostileProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for HostileProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostileProxy")
            .field("endpoint", &self.endpoint)
            .field("target", &self.target)
            .finish()
    }
}

/// Spawns the two directional pumps for one relayed connection.
fn relay(shared: &Arc<ProxyShared>, client: WireStream, server: WireStream, seed: u64) {
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    {
        let mut conns = shared.conns.lock().unwrap();
        if let Ok(c) = client.try_clone() {
            conns.push(c);
        }
        if let Ok(s) = server.try_clone() {
            conns.push(s);
        }
        // Bound growth across many short connections.
        if conns.len() > 256 {
            conns.drain(..128);
        }
    }
    let up = pump_thread("hostile-up", client_r, server, Arc::clone(&shared.knobs), seed);
    let down =
        pump_thread("hostile-down", server_r, client, Arc::clone(&shared.knobs), seed ^ 0x5A5A);
    let mut pumps = shared.pumps.lock().unwrap();
    pumps.push(up);
    pumps.push(down);
    // Reap pumps whose connections already died.
    let handles = std::mem::take(&mut *pumps);
    for handle in handles {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            pumps.push(handle);
        }
    }
}

fn pump_thread(
    name: &str,
    mut src: WireStream,
    dst: WireStream,
    knobs: Arc<HostileKnobs>,
    seed: u64,
) -> JoinHandle<()> {
    let dst_raw = dst.try_clone();
    let mut hostile = HostileStream::new(dst, knobs, seed);
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                let n = match src.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                // write (not write_all): a partial-write fault drops the
                // suffix on the floor, exactly like a lossy middlebox.
                match hostile.write(&buf[..n]) {
                    Ok(_) => {
                        let _ = hostile.flush();
                    }
                    Err(_) => break,
                }
            }
            // Sever both halves so the peer sees the break promptly.
            src.shutdown();
            hostile.get_ref().shutdown();
            if let Ok(raw) = dst_raw {
                raw.shutdown();
            }
        })
        .expect("spawning hostile pump thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, FrameRead, DEFAULT_MAX_FRAME};
    use crate::net::Endpoint;
    use crate::proto::{Frame, WireTag, PROTOCOL_VERSION};
    use crate::server::{ReplicaServer, ServerConfig};

    #[test]
    fn clean_knobs_relay_frames_untouched() {
        let server = ReplicaServer::spawn(ServerConfig::new(
            Endpoint::Tcp("127.0.0.1:0".into()),
            0,
        ))
        .unwrap();
        let proxy = HostileProxy::spawn(
            Endpoint::Tcp("127.0.0.1:0".into()),
            server.endpoint().clone(),
            HostileKnobs::new(),
            7,
        )
        .unwrap();

        let mut c = proxy.endpoint().dial().unwrap();
        let hello = Frame::Hello { version: PROTOCOL_VERSION, client: 1 };
        write_frame(&mut c, &hello.encode(), DEFAULT_MAX_FRAME).unwrap();
        match read_frame(&mut c, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(body) => match Frame::decode(&body).unwrap() {
                Frame::HelloAck { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
                other => panic!("{other:?}"),
            },
            FrameRead::Eof => panic!("eof"),
        }
        let store = Frame::Store {
            id: 2,
            lane: 0,
            segment: 0,
            tag: WireTag { seq: 1, writer: 0 },
            value: vec![5],
        };
        write_frame(&mut c, &store.encode(), DEFAULT_MAX_FRAME).unwrap();
        match read_frame(&mut c, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(body) => {
                assert_eq!(Frame::decode(&body).unwrap(), Frame::StoreAck { id: 2 });
            }
            FrameRead::Eof => panic!("eof"),
        }
        assert_eq!(proxy.knobs().total_faults(), 0);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn corruption_profile_actually_corrupts_and_is_counted() {
        let knobs = HostileKnobs::new();
        knobs.set_corrupt_ppm(200_000); // 20% per byte
        let mut sink = Vec::new();
        {
            let mut hostile = HostileStream::new(&mut sink, Arc::clone(&knobs), 42);
            let payload = vec![0u8; 4096];
            let mut off = 0;
            while off < payload.len() {
                off += hostile.write(&payload[off..]).unwrap();
            }
        }
        assert_eq!(sink.len(), 4096);
        let flipped = sink.iter().filter(|&&b| b != 0).count() as u64;
        assert!(flipped > 0, "corruption never fired");
        assert_eq!(knobs.corrupted_bytes(), flipped);
    }

    #[test]
    fn reset_profile_kills_the_stream_with_a_typed_error() {
        let knobs = HostileKnobs::new();
        knobs.apply(HostileProfile::Reset);
        let mut sink = Vec::new();
        let mut hostile = HostileStream::new(&mut sink, Arc::clone(&knobs), 9);
        let payload = [0xAAu8; 512];
        let mut died = false;
        for _ in 0..400 {
            match hostile.write(&payload) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    died = true;
                    break;
                }
            }
        }
        assert!(died, "reset never fired at 6% per write");
        assert_eq!(knobs.resets(), 1);
        // Once dead, always dead.
        assert!(hostile.write(&payload).is_err());
    }

    #[test]
    fn slow_loris_trickles_the_first_bytes_then_opens_up() {
        let knobs = HostileKnobs::new();
        knobs.set_trickle_ms(1);
        let mut sink = Vec::new();
        {
            let mut hostile = HostileStream::new(&mut sink, Arc::clone(&knobs), 3);
            let payload = [7u8; 200];
            let mut off = 0;
            while off < payload.len() {
                off += hostile.write(&payload[off..]).unwrap();
            }
        }
        assert_eq!(sink.len(), 200);
        assert_eq!(knobs.trickled_bytes(), TRICKLE_WINDOW);
    }

    #[test]
    fn drive_phases_walks_profiles_and_ends_clean() {
        let knobs = HostileKnobs::new();
        drive_phases(
            &knobs,
            &[
                HostilePhase::new(HostileProfile::Corrupt, Duration::from_millis(1)),
                HostilePhase::new(HostileProfile::Reset, Duration::from_millis(1)),
            ],
        );
        assert_eq!(knobs.corrupt_ppm.load(Ordering::Relaxed), 0);
        assert_eq!(knobs.reset_ppm.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn corrupted_relay_surfaces_as_typed_errors_not_hangs() {
        let server = ReplicaServer::spawn(ServerConfig::new(
            Endpoint::Tcp("127.0.0.1:0".into()),
            0,
        ))
        .unwrap();
        let knobs = HostileKnobs::new();
        knobs.set_corrupt_ppm(30_000); // 3% per byte: most frames damaged
        let proxy = HostileProxy::spawn(
            Endpoint::Tcp("127.0.0.1:0".into()),
            server.endpoint().clone(),
            Arc::clone(&knobs),
            1990,
        )
        .unwrap();

        // Hammer the proxy with handshakes; every outcome must be a
        // frame, a typed error, an io error, or EOF — never a hang
        // (read timeout enforces that) and never a panic.
        let mut clean_acks = 0;
        for attempt in 0..20u64 {
            let Ok(mut c) = proxy.endpoint().dial() else { continue };
            c.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let hello = Frame::Hello { version: PROTOCOL_VERSION, client: attempt as u32 };
            if write_frame(&mut c, &hello.encode(), DEFAULT_MAX_FRAME).is_err() {
                continue;
            }
            match read_frame(&mut c, DEFAULT_MAX_FRAME) {
                Ok(FrameRead::Frame(body)) => {
                    if let Ok(Frame::HelloAck { .. }) = Frame::decode(&body) {
                        clean_acks += 1;
                    }
                }
                Ok(FrameRead::Eof) | Err(_) => {}
            }
        }
        assert!(knobs.corrupted_bytes() > 0, "the fault plan never fired");
        // Not asserting clean_acks > 0: at 3% per byte a clean round
        // trip is likely but not guaranteed; the invariant is typed
        // handling, which reaching this line proves.
        let _ = clean_acks;
        proxy.shutdown();
        server.shutdown();
    }
}
