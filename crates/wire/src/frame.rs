//! The framing layer: length-prefixed, CRC-guarded frames over a byte
//! stream.
//!
//! Every protocol message travels as one *frame*: a little-endian `u32`
//! length prefix, a little-endian CRC-32 of the body, then exactly
//! `len` body bytes. The reader enforces a maximum frame size **before**
//! allocating, so a corrupt or hostile length prefix can never balloon
//! memory — it surfaces as the typed [`FrameIoError::TooLarge`] and the
//! connection is dropped. The CRC closes the other half of the threat
//! model: a frame whose *body* was damaged in flight (a lossy middlebox,
//! a flipped bit) fails the checksum and surfaces as
//! [`FrameIoError::Corrupt`] instead of silently decoding into a
//! plausible-but-wrong store or reply. Either way the stream is no
//! longer trustworthy and costs at most its own connection.

use std::io::{self, Read, Write};

use crate::error::WireError;
use crate::store::crc32;

/// Default upper bound on one frame's body, in bytes (1 MiB).
///
/// Generous for the snapshot workload (a frame carries one register
/// record), small enough that a garbage length prefix cannot cause a
/// multi-gigabyte allocation.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Outcome of reading one frame from a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame body.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly (EOF on a frame boundary).
    Eof,
}

/// Typed failure of the frame read path.
#[derive(Debug)]
pub enum FrameIoError {
    /// The underlying stream failed (including EOF *inside* a frame,
    /// which surfaces as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// The length prefix exceeds the configured maximum frame size. The
    /// body was **not** read (let alone allocated); the stream is no
    /// longer frame-aligned and must be dropped.
    TooLarge {
        /// The advertised body length.
        len: u32,
        /// The configured maximum.
        max: u32,
    },
    /// The body failed its CRC-32 check: the bytes were damaged between
    /// the peer's checksum and ours. The stream may also be desynced
    /// (the length prefix itself could be the damaged part) and must be
    /// dropped.
    Corrupt {
        /// The checksum the frame header promised.
        expected: u32,
        /// The checksum of the body as received.
        got: u32,
    },
}

impl std::fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameIoError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameIoError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameIoError::Corrupt { expected, got } => write!(
                f,
                "frame body failed its crc32 check (expected {expected:#010x}, got {got:#010x})"
            ),
        }
    }
}

impl std::error::Error for FrameIoError {}

impl From<io::Error> for FrameIoError {
    fn from(e: io::Error) -> Self {
        FrameIoError::Io(e)
    }
}

impl FrameIoError {
    /// The oversize case as a protocol-level [`WireError`] (for callers
    /// folding both error planes into one report).
    pub fn as_wire_error(&self) -> Option<WireError> {
        match self {
            FrameIoError::TooLarge { len, max } => Some(WireError::FrameTooLarge {
                len: u64::from(*len),
                max: u64::from(*max),
            }),
            FrameIoError::Io(_) | FrameIoError::Corrupt { .. } => None,
        }
    }
}

/// Writes one frame (length prefix + body CRC + body) to `w`.
///
/// Refuses bodies longer than `max` with [`FrameIoError::TooLarge`]
/// *before* touching the stream, so a local encoding bug cannot desync
/// the peer.
pub fn write_frame(w: &mut impl Write, body: &[u8], max: u32) -> Result<(), FrameIoError> {
    let len = u32::try_from(body.len()).map_err(|_| FrameIoError::TooLarge {
        len: u32::MAX,
        max,
    })?;
    if len > max {
        return Err(FrameIoError::TooLarge { len, max });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, enforcing the `max` body-size guard before
/// allocating the body buffer and the CRC guard before returning it.
///
/// A clean EOF before the first prefix byte is [`FrameRead::Eof`]; EOF
/// anywhere inside a frame is an [`io::ErrorKind::UnexpectedEof`] error
/// (the peer died mid-frame).
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<FrameRead, FrameIoError> {
    let mut prefix = [0u8; 8];
    // Hand-rolled first-byte read to distinguish "clean close" from
    // "died mid-prefix".
    let mut got = 0usize;
    while got < 8 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(FrameIoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameIoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix[..4].try_into().expect("4-byte slice"));
    let expected = u32::from_le_bytes(prefix[4..].try_into().expect("4-byte slice"));
    if len > max {
        return Err(FrameIoError::TooLarge { len, max });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let got = crc32(&body);
    if got != expected {
        return Err(FrameIoError::Corrupt { expected, got });
    }
    Ok(FrameRead::Frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(b) => assert_eq!(b, b"hello"),
            FrameRead::Eof => panic!("expected a frame"),
        }
        match read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(b) => assert!(b.is_empty()),
            FrameRead::Eof => panic!("expected the empty frame"),
        }
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversize_prefix_is_rejected_before_allocating() {
        // 4 GiB-1 advertised length, 0 body bytes behind it: must fail on
        // the guard, not on an allocation or an EOF.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&0u32.to_le_bytes()); // the crc slot
        buf.push(0);
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameIoError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversize_write_is_refused_locally() {
        let mut buf = Vec::new();
        let body = vec![0u8; 32];
        match write_frame(&mut buf, &body, 16) {
            Err(FrameIoError::TooLarge { len: 32, max: 16 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn eof_inside_prefix_or_body_is_unexpected_eof() {
        let mut r = Cursor::new(vec![5u8, 0]); // a fragment of the prefix
        match read_frame(&mut r, 1024) {
            Err(FrameIoError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef", 1024).unwrap();
        buf.truncate(11); // len + crc + 3 of 6 body bytes
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameIoError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn damaged_body_fails_the_crc_not_the_decode() {
        // Flip one body bit in an otherwise perfectly framed message:
        // the reader must refuse it as Corrupt — this is exactly the
        // frame a hostile middlebox would hand us, and before the CRC it
        // decoded into a plausible-but-wrong message.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"store lane=1 seq=9", 1024).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameIoError::Corrupt { expected, got }) => assert_ne!(expected, got),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
