//! Hand-rolled value encoding: the [`WireValue`] trait and a bounds-checked
//! [`Reader`].
//!
//! The workspace takes no serialization dependency (mirroring the
//! hand-rolled JSON in `snapshot-bench`), so register values cross the
//! wire through this trait: little-endian fixed-width integers,
//! length-prefixed byte strings, and structural composition for options,
//! vectors and tuples. Every decode is bounds-checked against the
//! remaining buffer and returns a typed [`WireError`] — never a panic.

use crate::error::WireError;

/// A bounds-checked cursor over a byte buffer being decoded.
///
/// All multi-byte integers are little-endian. Length fields are validated
/// against the bytes actually remaining before any allocation, so a
/// corrupt length can cost at most one typed error.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts decoding `buf` from its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                expected: n,
                got: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32` length prefix followed by that many raw bytes,
    /// validating the length against the remaining buffer first.
    pub fn bytes(&mut self, field: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32()?;
        if len as usize > self.remaining() {
            return Err(WireError::BadLength {
                field,
                len: u64::from(len),
            });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, field: &'static str) -> Result<String, WireError> {
        let raw = self.bytes(field)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the buffer was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends a `u32` length prefix and the raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, raw: &[u8]) {
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(raw);
}

/// A value that crosses the wire protocol.
///
/// Implementations must be *canonical*: `decode(encode(v)) == v` and the
/// decoder consumes exactly the bytes the encoder produced (composition
/// inside larger messages depends on it; the proptest suite checks both).
pub trait WireValue: Sized {
    /// Appends this value's canonical encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader's current position.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// This value's canonical encoding as an owned buffer.
    fn encode_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a value that must occupy `buf` exactly (trailing bytes are
    /// a [`WireError::TrailingBytes`]).
    fn decode_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! int_wire_value {
    ($($t:ty => $read:ident),* $(,)?) => {$(
        impl WireValue for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(r.$read()? as $t)
            }
        }
    )*};
}

int_wire_value! {
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    i32 => u32,
    i64 => u64,
}

impl WireValue for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.u8()? != 0)
    }
}

impl WireValue for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl WireValue for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.as_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.string("string")
    }
}

impl<T: WireValue> WireValue for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            _ => Ok(Some(T::decode_from(r)?)),
        }
    }
}

impl<T: WireValue> WireValue for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode_into(out);
        }
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.u32()?;
        // Every element costs at least one byte on the wire, so an
        // element count beyond the remaining bytes is corruption — catch
        // it before reserving capacity for it.
        if len as usize > r.remaining() {
            return Err(WireError::BadLength {
                field: "vec",
                len: u64::from(len),
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<A: WireValue, B: WireValue> WireValue for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

impl<A: WireValue, B: WireValue, C: WireValue> WireValue for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?, C::decode_from(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireValue + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_bytes();
        assert_eq!(T::decode_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-1i64);
        round_trip(i32::MIN);
        round_trip(true);
        round_trip(false);
        round_trip(3.5f64);
        round_trip(String::from("héllo"));
        round_trip(String::new());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(Some(7u64));
        round_trip(None::<u64>);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip((1u64, String::from("x")));
        round_trip((1u8, 2u16, vec![3u64]));
        round_trip(vec![Some((1u64, false)), None]);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 5u32.encode_to_bytes();
        bytes.push(0xFF);
        assert_eq!(
            u32::decode_bytes(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = (7u64, String::from("payload")).encode_to_bytes();
        for cut in 0..bytes.len() {
            let err = <(u64, String)>::decode_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn absurd_vec_length_is_caught_before_allocation() {
        // Claims u32::MAX elements with a 4-byte body.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        match Vec::<u8>::decode_bytes(&bytes) {
            Err(WireError::BadLength { field: "vec", .. }) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut bytes = Vec::new();
        put_bytes(&mut bytes, &[0xFF, 0xFE]);
        assert_eq!(String::decode_bytes(&bytes), Err(WireError::BadUtf8));
    }
}
