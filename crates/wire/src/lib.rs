//! `snapshot-wire`: the real-transport plane of the atomic-snapshot
//! stack — a versioned binary wire protocol, TCP/UDS endpoints, and the
//! replica server behind the `snapshotd` binary.
//!
//! The simulated network in `snapshot-abd` lets the whole stack run in
//! one process; this crate is the seam's other side, carrying the exact
//! same ABD replica conversation (`Query`/`QueryReply`,
//! `Store`/`StoreAck`) over real sockets so `AbdSnapshotCore` and the
//! full `snapshot-service` stack run unchanged against separate replica
//! processes:
//!
//! * [`frame`] — length-prefixed framing with a max-frame-size guard on
//!   both the read and write paths;
//! * [`value`] — the hand-rolled [`WireValue`] encoding (no external
//!   serde, mirroring the bench suite's hand-rolled JSON);
//! * [`proto`] — the versioned [`Frame`] set: handshake, lane/segment
//!   addressed requests, tagged replies and typed error frames;
//! * [`net`] — [`Endpoint`] parsing plus TCP/UDS streams and listeners;
//! * [`store`] — [`ReplicaStore`], the crash-consistent register store:
//!   CRC-framed state log, atomic checkpoints, explicit fsync and
//!   corruption-recovery policies;
//! * [`server`] — [`ReplicaServer`], the replica protocol loop that
//!   `snapshotd` hosts, including SIGTERM-graceful shutdown;
//! * [`hostile`] — [`HostileProxy`]/[`HostileStream`], seeded byte-level
//!   fault injection (corruption, partial writes, stalls, mid-frame
//!   resets, slow-loris) for nemesis tests against real sockets.
//!
//! The client half — connection management, redial with backoff,
//! request-id demultiplexing — lives in `snapshot_abd::remote`, next to
//! the `Transport` seam it implements.
//!
//! Every decode path in this crate returns a typed error
//! ([`WireError`] / [`FrameIoError`]) rather than panicking; a corrupt
//! or hostile peer can cost at most its own connection.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod frame;
pub mod hostile;
pub mod net;
pub mod proto;
pub mod server;
pub mod store;
pub mod value;

pub use error::WireError;
pub use frame::{read_frame, write_frame, FrameIoError, FrameRead, DEFAULT_MAX_FRAME};
pub use hostile::{drive_phases, HostileKnobs, HostilePhase, HostileProfile, HostileProxy, HostileStream};
pub use net::{Endpoint, WireListener, WireStream};
pub use proto::{ErrorCode, Frame, WireTag, PROTOCOL_VERSION};
pub use server::{ReplicaServer, ServerConfig};
pub use store::{
    FsyncPolicy, RecoveryPolicy, RecoverySummary, ReplicaStore, StoreConfig, StoreError,
};
pub use value::{put_bytes, Reader, WireValue};
