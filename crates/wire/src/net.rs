//! Transport endpoints: TCP and Unix-domain sockets behind one enum.
//!
//! Both the replica server and the client connection manager speak
//! [`WireStream`], so every protocol path is transport-agnostic; the
//! choice of TCP loopback vs UDS is a deployment detail parsed from an
//! endpoint string (`tcp:HOST:PORT` / `uds:/path/to.sock`).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Address of one replica: TCP host/port or a Unix-domain socket path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A TCP address in `host:port` form.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` or `uds:PATH`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp endpoint `{addr}` is not HOST:PORT"));
            }
            Ok(Endpoint::Tcp(addr.to_owned()))
        } else if let Some(path) = s.strip_prefix("uds:") {
            if path.is_empty() {
                return Err(String::from("uds endpoint needs a path"));
            }
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else {
            Err(format!(
                "endpoint `{s}` must start with `tcp:` or `uds:`"
            ))
        }
    }

    /// The transport kind label (`"tcp"` / `"uds"`), as used for the
    /// `abd.transport.*` metric names.
    pub fn kind(&self) -> &'static str {
        match self {
            Endpoint::Tcp(_) => "tcp",
            Endpoint::Uds(_) => "uds",
        }
    }

    /// Opens a client connection to this endpoint.
    pub fn dial(&self) -> io::Result<WireStream> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            Endpoint::Uds(path) => Ok(WireStream::Uds(UnixStream::connect(path)?)),
        }
    }

    /// Binds a listener on this endpoint. A TCP port of `0` binds an
    /// ephemeral port (read the resolved address back via
    /// [`WireListener::local_endpoint`]); a stale UDS socket file is
    /// removed first, so a crashed replica can rebind its path.
    pub fn bind(&self) -> io::Result<WireListener> {
        match self {
            Endpoint::Tcp(addr) => Ok(WireListener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(WireListener::Uds(UnixListener::bind(path)?, path.clone()))
            }
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum WireStream {
    /// A TCP connection (nodelay enabled).
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Uds(UnixStream),
}

impl WireStream {
    /// A second handle to the same connection (for a reader thread, or
    /// for shutting the stream down from another thread).
    pub fn try_clone(&self) -> io::Result<WireStream> {
        Ok(match self {
            WireStream::Tcp(s) => WireStream::Tcp(s.try_clone()?),
            WireStream::Uds(s) => WireStream::Uds(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any thread parked in a
    /// read on another handle to this connection.
    pub fn shutdown(&self) {
        let _ = match self {
            WireStream::Tcp(s) => s.shutdown(Shutdown::Both),
            WireStream::Uds(s) => s.shutdown(Shutdown::Both),
        };
    }

    /// Sets (or clears) the read timeout on this handle.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            WireStream::Uds(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            WireStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            WireStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            WireStream::Uds(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
#[derive(Debug)]
pub enum WireListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A UDS listener, remembering its path for cleanup.
    Uds(UnixListener, PathBuf),
}

impl WireListener {
    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            WireListener::Uds(l, _) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Uds(stream))
            }
        }
    }

    /// The endpoint this listener is actually bound to (resolves a
    /// TCP port of `0` to the kernel-assigned port).
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            WireListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            WireListener::Uds(_, path) => Ok(Endpoint::Uds(path.clone())),
        }
    }

    /// Removes a UDS listener's socket file (no-op for TCP). Called on
    /// orderly server shutdown; a crashed server's stale file is handled
    /// by [`Endpoint::bind`]'s pre-unlink.
    pub fn cleanup(&self) {
        if let WireListener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_strings_parse_and_render() {
        let e = Endpoint::parse("tcp:127.0.0.1:7070").unwrap();
        assert_eq!(e, Endpoint::Tcp(String::from("127.0.0.1:7070")));
        assert_eq!(e.kind(), "tcp");
        assert_eq!(e.to_string(), "tcp:127.0.0.1:7070");

        let e = Endpoint::parse("uds:/tmp/r0.sock").unwrap();
        assert_eq!(e, Endpoint::Uds(PathBuf::from("/tmp/r0.sock")));
        assert_eq!(e.kind(), "uds");
        assert_eq!(e.to_string(), "uds:/tmp/r0.sock");

        assert!(Endpoint::parse("tcp:noport").is_err());
        assert!(Endpoint::parse("uds:").is_err());
        assert!(Endpoint::parse("http://x").is_err());
    }

    #[test]
    fn tcp_ephemeral_bind_resolves_its_port() {
        let listener = Endpoint::Tcp(String::from("127.0.0.1:0")).bind().unwrap();
        match listener.local_endpoint().unwrap() {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "{addr}"),
            other => panic!("{other:?}"),
        }
    }
}
