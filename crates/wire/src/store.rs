//! The crash-consistent replica store: CRC-framed state log, atomic
//! checkpoints, and an explicit recovery policy.
//!
//! PR 9's store appended raw protocol frames with no checksum, no fsync,
//! and O(applied stores) replay. This module pins the crash semantics
//! down:
//!
//! * **Log format** — every record is `[len u32][crc32 u32][body]` with
//!   the CRC taken over the body, and the body carries a *generation*
//!   stamp tying it to the checkpoint epoch it was written under. The
//!   file opens with an 8-byte `SNLG` header so a wrong-format file is
//!   refused instead of misparsed.
//! * **Torn tail vs. corruption** — an *incomplete* record at EOF is a
//!   crash artifact (the process died mid-append): replay truncates it,
//!   counts `snapshotd.store.truncated_bytes`, and emits a
//!   [`StoreTruncated`](snapshot_obs::Event::StoreTruncated) event. A
//!   *complete* record whose CRC mismatches is silent data damage:
//!   under [`RecoveryPolicy::Fail`] (the `snapshotd` default) it
//!   surfaces as a typed [`StoreError::Corrupt`] naming the byte
//!   offset; under [`RecoveryPolicy::Truncate`] the log is truncated
//!   from the corrupt record onward and recovery continues with what
//!   survived. Garbage is never silently replayed.
//! * **Checkpoints** — [`ReplicaStore::checkpoint`] writes the live
//!   register map to `<log>.ckpt.tmp`, fsyncs, renames over
//!   `<log>.ckpt`, fsyncs the directory, bumps the generation, then
//!   truncates the log. A crash (or truncate failure) after the rename
//!   leaves stale old-generation records in the log; replay skips them
//!   by the generation filter (and the max-by-tag merge is idempotent
//!   besides). Restart replay therefore costs O(live lanes×segments +
//!   records since the last checkpoint), not O(applied stores ever).
//! * **Fsync policy** — [`FsyncPolicy::Always`] syncs after every
//!   append (the durability the ABD ack nominally promises),
//!   `Interval` bounds the loss window, `Never` leaves durability to
//!   the OS (the PR 9 behavior).
//!
//! Everything is observable: `snapshotd.store.*` metrics and the
//! `Store*` obs events cover appends, fsyncs, checkpoints, replay
//! duration, and every byte recovery ever drops.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snapshot_obs::{Counter, Event, Registry, Trace};

use crate::frame::DEFAULT_MAX_FRAME;
use crate::proto::WireTag;
use crate::value::{put_bytes, Reader};

/// Magic opening the state log file.
const LOG_MAGIC: &[u8; 4] = b"SNLG";
/// Magic opening a checkpoint file.
const CKPT_MAGIC: &[u8; 4] = b"SNCK";
/// On-disk format version for both files.
const STORE_VERSION: u16 = 1;
/// Size of the log file header: magic + version + reserved.
const LOG_HEADER: u64 = 8;
/// Default upper bound on a single record body (see
/// [`StoreConfig::max_record`]); anything larger in a length field is
/// treated as corruption, not allocated.
const DEFAULT_MAX_RECORD: u32 = DEFAULT_MAX_FRAME + 64;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven; the workspace takes no checksum
// dependency.
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the checksum framing every log record and
/// sealing every checkpoint.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------
// Policies, errors, configuration.
// ---------------------------------------------------------------------

/// What to do when recovery meets a *complete* log record whose CRC
/// does not match (mid-log corruption — never a torn tail, which is
/// always truncated).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Refuse to open: surface [`StoreError::Corrupt`] naming the
    /// offset. The operator decides; garbage is never replayed. This is
    /// the default.
    #[default]
    Fail,
    /// Truncate the log from the corrupt record onward and continue
    /// with what survived (counted and traced, like a torn tail).
    Truncate,
}

impl RecoveryPolicy {
    /// Parses `truncate` / `fail` (the `--recover` flag values).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "truncate" => Ok(RecoveryPolicy::Truncate),
            "fail" => Ok(RecoveryPolicy::Fail),
            other => Err(format!("--recover: `{other}` is not truncate|fail")),
        }
    }
}

/// When appended records reach the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every applied store: an acked write survives an
    /// immediate power cut. The durable choice, and the slow one.
    Always,
    /// Flush to the OS on every append, `fsync` at most once per the
    /// given interval: bounds the loss window without paying a sync per
    /// store.
    Interval(Duration),
    /// Flush to the OS only; durability is whenever the kernel gets to
    /// it.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(100))
    }
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `interval:MILLIS` (the `--fsync`
    /// flag values).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|e| format!("--fsync interval: {e}")),
                None => Err(format!("--fsync: `{other}` is not always|interval:MS|never")),
            },
        }
    }
}

/// Why a store failed to open or persist.
#[derive(Debug)]
pub enum StoreError {
    /// A complete record (or the checkpoint) failed its CRC or was
    /// structurally unparseable — silent data damage, refused under
    /// [`RecoveryPolicy::Fail`].
    Corrupt {
        /// Byte offset of the damaged record in the offending file.
        offset: u64,
        /// What was wrong, for the operator.
        detail: String,
    },
    /// An underlying filesystem error.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store corrupt at byte {offset}: {detail}")
            }
            StoreError::Io(e) => write!(f, "store io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => io,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// Full configuration of a persistent store (the [`ReplicaStore::open`]
/// shorthand uses the defaults).
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// State log path; `None` keeps the store in memory only.
    pub path: Option<PathBuf>,
    /// When appends reach the disk.
    pub fsync: FsyncPolicy,
    /// What to do about mid-log corruption at open.
    pub recovery: RecoveryPolicy,
    /// Auto-checkpoint once the log grows past this many bytes
    /// (`u64::MAX` disables; explicit [`ReplicaStore::checkpoint`]
    /// always works).
    pub checkpoint_bytes: u64,
    /// Upper bound on a single log record body, in bytes. Replay treats
    /// a length field above this as corruption rather than allocating
    /// it, and append skips (and counts) a record that would exceed it,
    /// so an unreplayable record is never written. Servers derive this
    /// from their configured frame cap via
    /// [`StoreConfig::with_max_frame`]; reopening a log needs a cap at
    /// least as large as the one it was written under.
    pub max_record: u32,
    /// Registry for the `snapshotd.store.*` metrics (private when
    /// `None`).
    pub registry: Option<Arc<Registry>>,
    /// Trace for the `Store*` obs events (disabled when `None`).
    pub trace: Option<Trace>,
    /// Replica index stamped on emitted events.
    pub replica: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            path: None,
            fsync: FsyncPolicy::default(),
            recovery: RecoveryPolicy::default(),
            checkpoint_bytes: 4 << 20,
            max_record: DEFAULT_MAX_RECORD,
            registry: None,
            trace: None,
            replica: 0,
        }
    }
}

impl StoreConfig {
    /// A persistent store at `path` with default policies.
    pub fn at(path: PathBuf) -> Self {
        StoreConfig { path: Some(path), ..StoreConfig::default() }
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the corruption recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the auto-checkpoint threshold in log bytes.
    pub fn with_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Derives the record cap from a wire frame cap: any value that
    /// fits in an accepted frame also fits in a log record (record
    /// framing adds well under 64 bytes).
    pub fn with_max_frame(mut self, max_frame: u32) -> Self {
        self.max_record = max_frame.saturating_add(64);
        self
    }

    /// Registers metrics on a shared registry.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Emits `Store*` obs events into `trace`.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the replica index stamped on emitted events.
    pub fn with_replica(mut self, replica: u32) -> Self {
        self.replica = replica;
        self
    }
}

/// What recovery found and did when the store was opened — the numbers
/// `snapshotd` prints in its `recovered:` banner line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Registers restored from the checkpoint file.
    pub checkpoint_registers: u64,
    /// Log records replayed on top of the checkpoint (O(records since
    /// the last checkpoint), the whole point of checkpointing).
    pub replayed_records: u64,
    /// Log records skipped by the generation filter (stale survivors of
    /// a crash between checkpoint rename and log truncate).
    pub stale_records: u64,
    /// Bytes dropped from the log (torn tail, plus everything after a
    /// corrupt record under [`RecoveryPolicy::Truncate`]).
    pub truncated_bytes: u64,
    /// Offset of the mid-log corruption recovery truncated, if any
    /// (under [`RecoveryPolicy::Fail`] the open fails instead).
    pub corrupt_offset: Option<u64>,
    /// The generation the store resumed at.
    pub generation: u64,
    /// Replay wall time in microseconds.
    pub elapsed_us: u64,
}

// ---------------------------------------------------------------------
// Record encoding.
// ---------------------------------------------------------------------

fn encode_record_body(
    generation: u64,
    lane: u32,
    segment: u32,
    tag: WireTag,
    value: &[u8],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + value.len());
    body.extend_from_slice(&generation.to_le_bytes());
    body.extend_from_slice(&lane.to_le_bytes());
    body.extend_from_slice(&segment.to_le_bytes());
    body.extend_from_slice(&tag.seq.to_le_bytes());
    body.extend_from_slice(&tag.writer.to_le_bytes());
    put_bytes(&mut body, value);
    body
}

struct LogRecord {
    generation: u64,
    lane: u32,
    segment: u32,
    tag: WireTag,
    value: Vec<u8>,
}

fn decode_record_body(body: &[u8]) -> Result<LogRecord, String> {
    let mut r = Reader::new(body);
    let generation = r.u64().map_err(|e| e.to_string())?;
    let lane = r.u32().map_err(|e| e.to_string())?;
    let segment = r.u32().map_err(|e| e.to_string())?;
    let seq = r.u64().map_err(|e| e.to_string())?;
    let writer = r.u32().map_err(|e| e.to_string())?;
    let value = r.bytes("value").map_err(|e| e.to_string())?.to_vec();
    r.finish().map_err(|e| e.to_string())?;
    Ok(LogRecord { generation, lane, segment, tag: WireTag { seq, writer }, value })
}

/// Reads exactly `buf.len()` bytes, or returns how many were available
/// before EOF — the primitive that distinguishes a torn tail from a
/// complete-but-damaged record.
fn read_full(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

struct StoreMetrics {
    appends: Counter,
    fsyncs: Counter,
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    replayed_records: Counter,
    replay_us: Counter,
    truncated_bytes: Counter,
    corrupt_records: Counter,
    checkpoint_failures: Counter,
    oversize_records: Counter,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            appends: registry.counter("snapshotd.store.appends"),
            fsyncs: registry.counter("snapshotd.store.fsyncs"),
            checkpoints: registry.counter("snapshotd.store.checkpoints"),
            checkpoint_bytes: registry.counter("snapshotd.store.checkpoint_bytes"),
            replayed_records: registry.counter("snapshotd.store.replayed_records"),
            replay_us: registry.counter("snapshotd.store.replay_us"),
            truncated_bytes: registry.counter("snapshotd.store.truncated_bytes"),
            corrupt_records: registry.counter("snapshotd.store.corrupt_records"),
            checkpoint_failures: registry.counter("snapshotd.store.checkpoint_failures"),
            oversize_records: registry.counter("snapshotd.store.oversize_records"),
        }
    }
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

struct Persist {
    writer: BufWriter<File>,
    ckpt_path: PathBuf,
    generation: u64,
    /// Bytes currently in the log file, header included.
    log_bytes: u64,
    fsync: FsyncPolicy,
    last_sync: Instant,
    checkpoint_bytes: u64,
    max_record: u32,
}

/// The tagged register store of one replica: `(lane, segment)` →
/// highest-tagged `(tag, value)` seen, optionally persisted to a
/// CRC-framed, checkpointed state log (see the module docs for the
/// crash-consistency model).
///
/// Lock order is `map` then `log`: reads take only the map lock and
/// never wait on an fsync.
pub struct ReplicaStore {
    map: Mutex<HashMap<(u32, u32), (WireTag, Arc<[u8]>)>>,
    log: Mutex<Option<Persist>>,
    metrics: StoreMetrics,
    trace: Trace,
    replica: u32,
    recovery: RecoverySummary,
}

impl ReplicaStore {
    /// An empty in-memory store (private metrics, no trace).
    pub fn in_memory() -> Self {
        let registry = Registry::default();
        ReplicaStore {
            map: Mutex::new(HashMap::new()),
            log: Mutex::new(None),
            metrics: StoreMetrics::new(&registry),
            trace: Trace::disabled(),
            replica: 0,
            recovery: RecoverySummary::default(),
        }
    }

    /// Opens (or creates) a persistent store logging to `path` with the
    /// default policies — see [`ReplicaStore::open_with`] for the
    /// configurable form.
    pub fn open(path: &PathBuf) -> Result<Self, StoreError> {
        Self::open_with(StoreConfig::at(path.clone()))
    }

    /// Opens a store per `config`, replaying the checkpoint and the log.
    ///
    /// Recovery is total: a torn tail is truncated (counted in
    /// `snapshotd.store.truncated_bytes` and traced), stale-generation
    /// records are skipped, and mid-log corruption is handled per
    /// `config.recovery` — truncated with the damage reported, or
    /// refused with [`StoreError::Corrupt`] naming the offset. It never
    /// panics on any file content.
    pub fn open_with(config: StoreConfig) -> Result<Self, StoreError> {
        let registry = config.registry.clone().unwrap_or_default();
        let mut store = ReplicaStore {
            map: Mutex::new(HashMap::new()),
            log: Mutex::new(None),
            metrics: StoreMetrics::new(&registry),
            trace: config.trace.clone().unwrap_or_default(),
            replica: config.replica,
            recovery: RecoverySummary::default(),
        };
        let path = match config.path {
            Some(p) => p,
            None => return Ok(store),
        };
        let started = Instant::now();
        let ckpt_path = checkpoint_path(&path);
        let mut summary = RecoverySummary::default();

        // Phase 1: the checkpoint, if one exists. It was written with
        // write-new-then-rename, so a *torn* checkpoint cannot exist —
        // damage here is bit rot, handled per the recovery policy.
        let mut generation = 0u64;
        let mut had_checkpoint = false;
        match load_checkpoint(&ckpt_path) {
            Ok(Some((ckpt_gen, entries))) => {
                generation = ckpt_gen;
                had_checkpoint = true;
                summary.checkpoint_registers = entries.len() as u64;
                let mut map = store.map.lock().unwrap();
                for (lane, segment, tag, value) in entries {
                    map.insert((lane, segment), (tag, Arc::from(value.into_boxed_slice())));
                }
            }
            Ok(None) => {}
            Err(StoreError::Corrupt { offset, detail }) => {
                match config.recovery {
                    RecoveryPolicy::Fail => {
                        return Err(StoreError::Corrupt {
                            offset,
                            detail: format!("checkpoint {}: {detail}", ckpt_path.display()),
                        });
                    }
                    RecoveryPolicy::Truncate => {
                        // Best effort: drop the damaged checkpoint and
                        // recover whatever the log still holds.
                        store.metrics.corrupt_records.inc();
                        store.trace.emit(
                            config.replica as usize,
                            Event::StoreCorrupt {
                                replica: config.replica as usize,
                                offset,
                                truncated: true,
                            },
                        );
                        summary.corrupt_offset = Some(offset);
                        let _ = std::fs::remove_file(&ckpt_path);
                    }
                }
            }
            Err(e) => return Err(e),
        }

        // Phase 2: the log. Offsets are tracked explicitly so both the
        // truncation point and any corruption report are byte-exact.
        let mut valid_len = 0u64;
        if let Ok(file) = File::open(&path) {
            let file_len = file.metadata()?.len();
            let mut reader = io::BufReader::new(file);
            let mut outcome = replay_log(
                &mut reader,
                file_len,
                generation,
                had_checkpoint,
                config.max_record,
                &mut summary,
                &store,
            )?;
            if let Some((offset, detail)) = outcome.corrupt.take() {
                match config.recovery {
                    RecoveryPolicy::Fail => {
                        return Err(StoreError::Corrupt {
                            offset,
                            detail: format!("log {}: {detail}", path.display()),
                        });
                    }
                    RecoveryPolicy::Truncate => {
                        store.metrics.corrupt_records.inc();
                        store.trace.emit(
                            config.replica as usize,
                            Event::StoreCorrupt {
                                replica: config.replica as usize,
                                offset,
                                truncated: true,
                            },
                        );
                        summary.corrupt_offset = Some(offset);
                        outcome.torn_bytes += file_len - offset;
                    }
                }
            }
            if outcome.torn_bytes > 0 {
                summary.truncated_bytes += outcome.torn_bytes;
                store.metrics.truncated_bytes.add(outcome.torn_bytes);
                store.trace.emit(
                    config.replica as usize,
                    Event::StoreTruncated {
                        replica: config.replica as usize,
                        bytes: outcome.torn_bytes,
                    },
                );
            }
            valid_len = outcome.valid_len;
        }

        // Phase 3: reopen for appending, truncating past the last valid
        // record (O_APPEND writes land at the new EOF), and stamp the
        // header on a fresh or fully-truncated log.
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.set_len(valid_len.max(0))?;
        let mut writer = BufWriter::new(file);
        let mut log_bytes = valid_len;
        if log_bytes < LOG_HEADER {
            // set_len can only have left 0 here (the header is written
            // whole before any record).
            write_log_header(&mut writer)?;
            writer.flush()?;
            log_bytes = LOG_HEADER;
        }
        summary.generation = generation;
        summary.elapsed_us = started.elapsed().as_micros() as u64;
        store.metrics.replayed_records.add(summary.replayed_records);
        store.metrics.replay_us.add(summary.elapsed_us);
        store.trace.emit(
            config.replica as usize,
            Event::StoreReplayed {
                replica: config.replica as usize,
                checkpoint_registers: summary.checkpoint_registers,
                records: summary.replayed_records,
                elapsed_us: summary.elapsed_us,
            },
        );
        store.recovery = summary;
        *store.log.lock().unwrap() = Some(Persist {
            writer,
            ckpt_path,
            generation,
            log_bytes,
            fsync: config.fsync,
            last_sync: Instant::now(),
            checkpoint_bytes: config.checkpoint_bytes,
            max_record: config.max_record,
        });
        Ok(store)
    }

    /// What recovery found and did when this store was opened (all
    /// zeros for in-memory stores).
    pub fn recovery(&self) -> &RecoverySummary {
        &self.recovery
    }

    /// The current `(tag, value)` for a register, if any store reached
    /// this replica.
    pub fn get(&self, lane: u32, segment: u32) -> Option<(WireTag, Arc<[u8]>)> {
        self.map
            .lock()
            .unwrap()
            .get(&(lane, segment))
            .map(|(t, v)| (*t, Arc::clone(v)))
    }

    /// Max-by-tag merge; returns whether the value was applied (a lower
    /// or equal tag leaves the stored value in place). Applied values
    /// are appended to the state log under the current generation and
    /// synced per the fsync policy; the log lock is taken inside the
    /// map lock so a concurrent checkpoint can never lose the record.
    pub fn apply(&self, lane: u32, segment: u32, tag: WireTag, value: Arc<[u8]>) -> bool {
        let mut map = self.map.lock().unwrap();
        match map.entry((lane, segment)) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                if tag > occupied.get().0 {
                    occupied.insert((tag, value.clone()));
                } else {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert((tag, value.clone()));
            }
        }
        let mut log = self.log.lock().unwrap();
        if let Some(persist) = log.as_mut() {
            let body = encode_record_body(persist.generation, lane, segment, tag, &value);
            if body.len() as u64 > persist.max_record as u64 {
                // Replay rejects anything above the cap as corruption,
                // so an unreplayable record must never be written. The
                // value keeps being served from memory; the durability
                // gap is counted instead of discovered at restart.
                drop(map);
                self.metrics.oversize_records.inc();
                return true;
            }
            let mut framed = Vec::with_capacity(8 + body.len());
            framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
            framed.extend_from_slice(&crc32(&body).to_le_bytes());
            framed.extend_from_slice(&body);
            // Lock order is strictly map → log, so the auto-checkpoint
            // snapshot must be taken while the map lock is still held —
            // decided on the pre-append size, which crosses the
            // threshold exactly when the post-append size would (and a
            // threshold-crossing append that then fails still gets its
            // state compacted, since the map already holds it).
            let snapshot = if persist.log_bytes + framed.len() as u64 >= persist.checkpoint_bytes
            {
                Some(
                    map.iter()
                        .map(|(&(l, s), (t, v))| (l, s, *t, v.to_vec()))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
            drop(map);
            // A failed append is deliberately non-fatal to the serving
            // path (the replica keeps answering from memory); the next
            // restart simply recovers less.
            if persist.writer.write_all(&framed).is_ok() {
                persist.log_bytes += framed.len() as u64;
                self.metrics.appends.inc();
                let _ = persist.writer.flush();
                let sync_due = match persist.fsync {
                    FsyncPolicy::Always => true,
                    FsyncPolicy::Interval(every) => persist.last_sync.elapsed() >= every,
                    FsyncPolicy::Never => false,
                };
                if sync_due {
                    if persist.writer.get_ref().sync_data().is_ok() {
                        self.metrics.fsyncs.inc();
                    }
                    persist.last_sync = Instant::now();
                }
            }
            if let Some(snapshot) = snapshot {
                if self.checkpoint_locked(persist, snapshot).is_err() {
                    // Surfaced, not swallowed: the log keeps growing and
                    // the next threshold crossing retries.
                    self.metrics.checkpoint_failures.inc();
                    self.trace.emit(
                        self.replica as usize,
                        Event::StoreCheckpointFailed { replica: self.replica as usize },
                    );
                }
            }
        } else {
            drop(map);
        }
        true
    }

    /// Writes a durable checkpoint of the live register map and
    /// truncates the log: write `<log>.ckpt.tmp`, fsync, rename over
    /// `<log>.ckpt`, fsync the directory, bump the generation, truncate
    /// the log. No-op (Ok) for in-memory stores.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let map = self.map.lock().unwrap();
        let snapshot: Vec<_> = map
            .iter()
            .map(|(&(lane, segment), (tag, value))| (lane, segment, *tag, value.to_vec()))
            .collect();
        let mut log = self.log.lock().unwrap();
        drop(map);
        match log.as_mut() {
            Some(persist) => self.checkpoint_locked(persist, snapshot),
            None => Ok(()),
        }
    }

    fn checkpoint_locked(
        &self,
        persist: &mut Persist,
        snapshot: Vec<(u32, u32, WireTag, Vec<u8>)>,
    ) -> Result<(), StoreError> {
        let new_generation = persist.generation + 1;
        let mut bytes = Vec::with_capacity(64 + snapshot.len() * 48);
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&new_generation.to_le_bytes());
        bytes.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
        for (lane, segment, tag, value) in &snapshot {
            bytes.extend_from_slice(&lane.to_le_bytes());
            bytes.extend_from_slice(&segment.to_le_bytes());
            bytes.extend_from_slice(&tag.seq.to_le_bytes());
            bytes.extend_from_slice(&tag.writer.to_le_bytes());
            put_bytes(&mut bytes, value);
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());

        let tmp_path = {
            let mut s = persist.ckpt_path.clone().into_os_string();
            s.push(".tmp");
            PathBuf::from(s)
        };
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&bytes)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &persist.ckpt_path)?;
        // Make the rename itself durable. Directory fsync is a Unix-ism;
        // failure (or a pathless parent) degrades durability, not
        // correctness, so it is best-effort.
        if let Some(parent) = persist.ckpt_path.parent() {
            if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
                std::path::Path::new(".")
            } else {
                parent
            }) {
                let _ = dir.sync_all();
            }
        }
        self.metrics.fsyncs.inc();

        // The on-disk checkpoint now claims `new_generation`: adopt it
        // *before* the fallible truncate below. Replay tolerates an
        // untruncated log (the generation filter skips old records),
        // but an append stamped with the pre-checkpoint generation
        // after the rename would be classified stale on the next
        // restart — an acked, even fsynced, write silently dropped.
        persist.generation = new_generation;
        self.metrics.checkpoints.inc();
        self.metrics.checkpoint_bytes.add(bytes.len() as u64);
        self.trace.emit(
            self.replica as usize,
            Event::StoreCheckpoint {
                replica: self.replica as usize,
                registers: snapshot.len() as u64,
                bytes: bytes.len() as u64,
            },
        );

        // The checkpoint is durable: drop the replayed prefix. O_APPEND
        // writes land at the new EOF, so truncating to the header is
        // enough. A crash or error before this set_len leaves stale
        // records the generation filter skips on replay.
        persist.writer.flush()?;
        persist.writer.get_ref().set_len(LOG_HEADER)?;
        let _ = persist.writer.get_ref().sync_data();
        persist.log_bytes = LOG_HEADER;
        persist.last_sync = Instant::now();
        Ok(())
    }

    /// Flushes buffered appends to the OS and, when `sync` is set,
    /// fsyncs them to disk — the graceful-shutdown tail when a final
    /// checkpoint is not wanted.
    pub fn flush(&self, sync: bool) -> Result<(), StoreError> {
        if let Some(persist) = self.log.lock().unwrap().as_mut() {
            persist.writer.flush()?;
            if sync {
                persist.writer.get_ref().sync_data()?;
                self.metrics.fsyncs.inc();
                persist.last_sync = Instant::now();
            }
        }
        Ok(())
    }

    /// Current size of the state log in bytes (header included); zero
    /// for in-memory stores. Tests use this to assert replay is O(state).
    pub fn log_bytes(&self) -> u64 {
        self.log.lock().unwrap().as_ref().map_or(0, |p| p.log_bytes)
    }

    /// The path of the checkpoint file next to `path` (public so tests
    /// and tools can find it).
    pub fn checkpoint_path_for(path: &std::path::Path) -> PathBuf {
        checkpoint_path(path)
    }

    /// Number of registers this replica holds state for.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no store has ever reached this replica.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaStore")
            .field("registers", &self.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

fn checkpoint_path(path: &std::path::Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".ckpt");
    PathBuf::from(s)
}

fn write_log_header(writer: &mut impl Write) -> io::Result<()> {
    writer.write_all(LOG_MAGIC)?;
    writer.write_all(&STORE_VERSION.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    Ok(())
}

/// Loads and CRC-verifies the checkpoint: `Ok(None)` when the file does
/// not exist, `Err(Corrupt)` when it exists but fails verification.
#[allow(clippy::type_complexity)]
fn load_checkpoint(
    path: &std::path::Path,
) -> Result<Option<(u64, Vec<(u32, u32, WireTag, Vec<u8>)>)>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let corrupt = |offset: u64, detail: &str| StoreError::Corrupt {
        offset,
        detail: detail.to_string(),
    };
    if bytes.len() < 4 + 2 + 2 + 8 + 4 + 4 {
        return Err(corrupt(0, "checkpoint shorter than its fixed header"));
    }
    if &bytes[..4] != CKPT_MAGIC {
        return Err(corrupt(0, "bad checkpoint magic"));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(corrupt(0, "checkpoint CRC mismatch"));
    }
    let mut r = Reader::new(&payload[4..]);
    let version = r.u16().map_err(|e| corrupt(4, &e.to_string()))?;
    if version != STORE_VERSION {
        return Err(corrupt(4, &format!("unsupported checkpoint version {version}")));
    }
    let _reserved = r.u16().map_err(|e| corrupt(6, &e.to_string()))?;
    let generation = r.u64().map_err(|e| corrupt(8, &e.to_string()))?;
    let count = r.u32().map_err(|e| corrupt(16, &e.to_string()))? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        // Offset of this entry within the whole file (4 magic bytes
        // precede the Reader's buffer).
        let at = (4 + (payload.len() - 4 - r.remaining())) as u64;
        let lane = r.u32().map_err(|e| corrupt(at, &format!("entry {i}: {e}")))?;
        let segment = r.u32().map_err(|e| corrupt(at, &format!("entry {i}: {e}")))?;
        let seq = r.u64().map_err(|e| corrupt(at, &format!("entry {i}: {e}")))?;
        let writer = r.u32().map_err(|e| corrupt(at, &format!("entry {i}: {e}")))?;
        let value = r
            .bytes("checkpoint value")
            .map_err(|e| corrupt(at, &format!("entry {i}: {e}")))?
            .to_vec();
        entries.push((lane, segment, WireTag { seq, writer }, value));
    }
    r.finish()
        .map_err(|e| corrupt(bytes.len() as u64 - 4, &e.to_string()))?;
    Ok(Some((generation, entries)))
}

struct ReplayOutcome {
    /// End of the last whole, valid record (where the file is truncated
    /// to before appending resumes).
    valid_len: u64,
    /// Bytes of torn tail past `valid_len` (crash artifact).
    torn_bytes: u64,
    /// Mid-log corruption, if found: `(offset, detail)`. The caller
    /// applies the recovery policy.
    corrupt: Option<(u64, String)>,
}

/// Replays the log into the store map. Pure streaming with explicit
/// offsets; returns rather than applies the corruption decision.
fn replay_log(
    reader: &mut impl Read,
    file_len: u64,
    generation: u64,
    had_checkpoint: bool,
    max_record: u32,
    summary: &mut RecoverySummary,
    store: &ReplicaStore,
) -> Result<ReplayOutcome, StoreError> {
    let mut header = [0u8; LOG_HEADER as usize];
    let got = read_full(reader, &mut header)?;
    if got == 0 {
        // Brand-new or fully truncated file.
        return Ok(ReplayOutcome { valid_len: 0, torn_bytes: 0, corrupt: None });
    }
    if got < header.len() {
        // A header can only be torn by a crash during the very first
        // open; drop it and start over.
        return Ok(ReplayOutcome { valid_len: 0, torn_bytes: got as u64, corrupt: None });
    }
    if &header[..4] != LOG_MAGIC {
        return Ok(ReplayOutcome {
            valid_len: 0,
            torn_bytes: 0,
            corrupt: Some((0, "bad log magic (not a snapshotd state log?)".into())),
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != STORE_VERSION {
        return Ok(ReplayOutcome {
            valid_len: 0,
            torn_bytes: 0,
            corrupt: Some((4, format!("unsupported log version {version}"))),
        });
    }

    let mut offset = LOG_HEADER;
    loop {
        let mut prefix = [0u8; 8];
        let got = read_full(reader, &mut prefix)?;
        if got == 0 {
            return Ok(ReplayOutcome { valid_len: offset, torn_bytes: 0, corrupt: None });
        }
        if got < prefix.len() {
            return Ok(ReplayOutcome {
                valid_len: offset,
                torn_bytes: got as u64,
                corrupt: None,
            });
        }
        let len = u32::from_le_bytes(prefix[..4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(prefix[4..].try_into().unwrap());
        if len == 0 || len > max_record {
            return Ok(ReplayOutcome {
                valid_len: offset,
                torn_bytes: 0,
                corrupt: Some((offset, format!("absurd record length {len}"))),
            });
        }
        // Only allocate what the file can actually hold; a length field
        // pointing past EOF with a full 8-byte header present is
        // indistinguishable from a torn body, and is treated as torn.
        let mut body = vec![0u8; len as usize];
        let got = read_full(reader, &mut body)?;
        if (got as u64) < len as u64 {
            return Ok(ReplayOutcome {
                valid_len: offset,
                torn_bytes: 8 + got as u64,
                corrupt: None,
            });
        }
        if crc32(&body) != stored_crc {
            return Ok(ReplayOutcome {
                valid_len: offset,
                torn_bytes: 0,
                corrupt: Some((offset, "record CRC mismatch".into())),
            });
        }
        let record = match decode_record_body(&body) {
            Ok(r) => r,
            Err(detail) => {
                return Ok(ReplayOutcome {
                    valid_len: offset,
                    torn_bytes: 0,
                    corrupt: Some((offset, format!("record body undecodable: {detail}"))),
                });
            }
        };
        offset += 8 + len as u64;
        debug_assert!(offset <= file_len);
        // The generation filter: records from before the last durable
        // checkpoint (a crash hit between its rename and the log
        // truncate) are already inside the checkpoint. Without a
        // checkpoint every record is live.
        if had_checkpoint && record.generation != generation {
            summary.stale_records += 1;
            continue;
        }
        summary.replayed_records += 1;
        store.apply_in_memory(record.lane, record.segment, record.tag, record.value.into());
    }
}

impl ReplicaStore {
    /// Merge without touching the log — replay applies records that are
    /// already in the log.
    fn apply_in_memory(&self, lane: u32, segment: u32, tag: WireTag, value: Arc<[u8]>) {
        let mut map = self.map.lock().unwrap();
        match map.entry((lane, segment)) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                if tag > occupied.get().0 {
                    occupied.insert((tag, value));
                }
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert((tag, value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "snapshot-store-{name}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(checkpoint_path(&path));
        path
    }

    fn val(bytes: &[u8]) -> Arc<[u8]> {
        Arc::from(bytes.to_vec().into_boxed_slice())
    }

    fn cleanup(path: &PathBuf) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(checkpoint_path(path));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn state_survives_restart_and_mid_log_byte_flip_is_a_typed_error() {
        let path = temp_log("flip");
        let store = ReplicaStore::open(&path).unwrap();
        for seq in 1..=8u64 {
            store.apply(0, 0, WireTag { seq, writer: 0 }, val(&[seq as u8]));
        }
        drop(store);

        // Sanity: clean reopen replays everything.
        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.get(0, 0).unwrap().0, WireTag { seq: 8, writer: 0 });
        assert_eq!(store.recovery().replayed_records, 8);
        drop(store);

        // Flip one byte inside an early record's body: Fail policy
        // refuses with the offset, Truncate policy recovers the prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = LOG_HEADER as usize + 8 + 4; // first record, inside the body
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        match ReplicaStore::open(&path) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, LOG_HEADER),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let store = ReplicaStore::open_with(
            StoreConfig::at(path.clone()).with_recovery(RecoveryPolicy::Truncate),
        )
        .unwrap();
        assert_eq!(store.recovery().corrupt_offset, Some(LOG_HEADER));
        assert!(store.is_empty(), "nothing before the corrupt first record");
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated_counted_and_appends_resume() {
        let path = temp_log("torn");
        let store = ReplicaStore::open(&path).unwrap();
        store.apply(0, 0, WireTag { seq: 1, writer: 0 }, val(&[1]));
        drop(store);

        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAA, 0xBB, 0xCC]).unwrap();
        }

        let registry = Arc::new(Registry::default());
        let store = ReplicaStore::open_with(
            StoreConfig::at(path.clone()).with_registry(Arc::clone(&registry)),
        )
        .unwrap();
        assert_eq!(store.recovery().truncated_bytes, 3);
        assert_eq!(registry.counter("snapshotd.store.truncated_bytes").get(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        store.apply(0, 0, WireTag { seq: 2, writer: 0 }, val(&[2]));
        drop(store);

        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.get(0, 0).unwrap().0, WireTag { seq: 2, writer: 0 });
        cleanup(&path);
    }

    #[test]
    fn checkpoint_bounds_replay_to_live_state() {
        let path = temp_log("ckpt");
        let store = ReplicaStore::open(&path).unwrap();
        // Many overwrites of few registers: O(history) ≫ O(state).
        for seq in 1..=500u64 {
            store.apply((seq % 3) as u32, 0, WireTag { seq, writer: 0 }, val(&[7]));
        }
        store.checkpoint().unwrap();
        assert_eq!(store.log_bytes(), LOG_HEADER);
        // A couple of post-checkpoint stores land in the (tiny) log.
        store.apply(0, 1, WireTag { seq: 1, writer: 9 }, val(&[9]));
        drop(store);

        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.recovery().checkpoint_registers, 3);
        assert_eq!(store.recovery().replayed_records, 1);
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(0, 1).unwrap().0, WireTag { seq: 1, writer: 9 });
        cleanup(&path);
    }

    #[test]
    fn stale_generation_records_are_skipped_after_unfinished_checkpoint() {
        let path = temp_log("stale");
        let store = ReplicaStore::open(&path).unwrap();
        store.apply(0, 0, WireTag { seq: 1, writer: 0 }, val(&[1]));
        store.apply(1, 0, WireTag { seq: 2, writer: 0 }, val(&[2]));
        // Keep the pre-checkpoint log bytes, then restore them after the
        // checkpoint to simulate a crash between rename and truncate.
        let pre_ckpt = std::fs::read(&path).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        std::fs::write(&path, &pre_ckpt).unwrap();

        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.recovery().checkpoint_registers, 2);
        assert_eq!(store.recovery().stale_records, 2, "old-generation records skipped");
        assert_eq!(store.recovery().replayed_records, 0);
        assert_eq!(store.get(1, 0).unwrap().0, WireTag { seq: 2, writer: 0 });
        cleanup(&path);
    }

    #[test]
    fn corrupt_checkpoint_fails_or_is_dropped_per_policy() {
        let path = temp_log("ckpt-corrupt");
        let store = ReplicaStore::open(&path).unwrap();
        store.apply(0, 0, WireTag { seq: 3, writer: 0 }, val(&[3]));
        store.checkpoint().unwrap();
        store.apply(0, 0, WireTag { seq: 4, writer: 0 }, val(&[4]));
        drop(store);

        let ckpt = checkpoint_path(&path);
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ckpt, &bytes).unwrap();

        assert!(matches!(
            ReplicaStore::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        let store = ReplicaStore::open_with(
            StoreConfig::at(path.clone()).with_recovery(RecoveryPolicy::Truncate),
        )
        .unwrap();
        // Checkpointed state is gone (that is what corruption costs),
        // but the post-checkpoint record survives: without a checkpoint
        // the generation filter is off.
        assert_eq!(store.get(0, 0).unwrap().0, WireTag { seq: 4, writer: 0 });
        assert!(!ckpt.exists(), "damaged checkpoint removed");
        cleanup(&path);
    }

    #[test]
    fn auto_checkpoint_fires_past_the_byte_threshold() {
        let path = temp_log("auto");
        let registry = Arc::new(Registry::default());
        let store = ReplicaStore::open_with(
            StoreConfig::at(path.clone())
                .with_checkpoint_bytes(512)
                .with_registry(Arc::clone(&registry)),
        )
        .unwrap();
        for seq in 1..=64u64 {
            store.apply(0, 0, WireTag { seq, writer: 0 }, val(&[0u8; 32]));
        }
        assert!(registry.counter("snapshotd.store.checkpoints").get() >= 1);
        assert!(store.log_bytes() < 512 + 128, "log stays bounded");
        drop(store);
        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.get(0, 0).unwrap().0, WireTag { seq: 64, writer: 0 });
        cleanup(&path);
    }

    #[test]
    fn concurrent_applies_with_auto_checkpoint_do_not_deadlock() {
        // Regression: the auto-checkpoint used to re-lock the map while
        // holding the log lock — the reverse of apply()'s map → log
        // order — so two thread-per-connection applies could deadlock
        // the moment the log crossed the checkpoint threshold.
        let path = temp_log("race");
        let store = Arc::new(
            ReplicaStore::open_with(
                StoreConfig::at(path.clone()).with_checkpoint_bytes(256),
            )
            .unwrap(),
        );
        let (tx, rx) = std::sync::mpsc::channel();
        for t in 0..4u32 {
            let store = Arc::clone(&store);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for seq in 1..=200u64 {
                    store.apply(t, 0, WireTag { seq, writer: t }, val(&[0u8; 40]));
                }
                tx.send(()).unwrap();
            });
        }
        drop(tx);
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(30))
                .expect("applies deadlocked (map/log lock order violated)");
        }
        drop(store);
        let store = ReplicaStore::open(&path).unwrap();
        assert_eq!(store.get(3, 0).unwrap().0, WireTag { seq: 200, writer: 3 });
        cleanup(&path);
    }

    #[test]
    fn record_cap_follows_the_configured_max_frame() {
        // A server run with --max-frame above the default accepts (and
        // must durably log) values larger than the default record cap;
        // replay under the same configuration takes them back.
        let path = temp_log("bigrec");
        let big = vec![7u8; DEFAULT_MAX_FRAME as usize + 1024];
        let config =
            || StoreConfig::at(path.clone()).with_max_frame(2 * DEFAULT_MAX_FRAME);
        let store = ReplicaStore::open_with(config()).unwrap();
        assert!(store.apply(0, 0, WireTag { seq: 1, writer: 0 }, val(&big)));
        drop(store);
        let store = ReplicaStore::open_with(config()).unwrap();
        assert_eq!(store.recovery().replayed_records, 1);
        assert_eq!(store.get(0, 0).unwrap().1.len(), big.len());
        cleanup(&path);
    }

    #[test]
    fn oversize_record_is_never_written_to_the_log() {
        let path = temp_log("oversize");
        let registry = Arc::new(Registry::default());
        let mut config = StoreConfig::at(path.clone()).with_registry(Arc::clone(&registry));
        config.max_record = 128;
        let store = ReplicaStore::open_with(config).unwrap();
        let logged = store.log_bytes();
        assert!(store.apply(0, 0, WireTag { seq: 1, writer: 0 }, val(&[0u8; 4096])));
        assert_eq!(store.get(0, 0).unwrap().1.len(), 4096, "still served from memory");
        assert_eq!(store.log_bytes(), logged, "unreplayable record not appended");
        assert_eq!(registry.counter("snapshotd.store.oversize_records").get(), 1);
        drop(store);
        // The log stayed replayable: reopening finds no record, not a
        // corruption error.
        let store = ReplicaStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.recovery().corrupt_offset, None);
        cleanup(&path);
    }

    #[test]
    fn fsync_always_counts_a_sync_per_append() {
        let path = temp_log("fsync");
        let registry = Arc::new(Registry::default());
        let store = ReplicaStore::open_with(
            StoreConfig::at(path.clone())
                .with_fsync(FsyncPolicy::Always)
                .with_registry(Arc::clone(&registry)),
        )
        .unwrap();
        for seq in 1..=5u64 {
            store.apply(0, 0, WireTag { seq, writer: 0 }, val(&[1]));
        }
        assert_eq!(registry.counter("snapshotd.store.appends").get(), 5);
        assert_eq!(registry.counter("snapshotd.store.fsyncs").get(), 5);
        cleanup(&path);
    }

    #[test]
    fn policy_and_error_parsing() {
        assert_eq!(RecoveryPolicy::parse("truncate").unwrap(), RecoveryPolicy::Truncate);
        assert_eq!(RecoveryPolicy::parse("fail").unwrap(), RecoveryPolicy::Fail);
        assert!(RecoveryPolicy::parse("explode").is_err());
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval:x").is_err());
        let err = StoreError::Corrupt { offset: 42, detail: "CRC mismatch".into() };
        assert!(err.to_string().contains("byte 42"));
    }
}
