//! The replica server: the ABD replica role of `crates/abd`'s simulated
//! network, hosted behind a real socket.
//!
//! One [`ReplicaServer`] owns a listener (TCP or UDS), a tagged register
//! store keyed by `(lane, segment)`, and one thread per client
//! connection. The protocol obligations mirror the simulated
//! `ReplicaCore` exactly:
//!
//! * **`Query`** is answered on every delivery with the current
//!   `(tag, value)` — re-answering is what lets a client whose reply was
//!   lost make progress;
//! * **`Store`** is a max-by-tag merge, deduplicated by request id within
//!   a bounded window and re-acked on duplicate delivery. A duplicate
//!   that arrives over a *new* connection (after a client redial) may be
//!   re-applied — harmless, because the merge is idempotent;
//! * malformed, oversize, or unsupported frames are refused with typed
//!   [`Frame::Error`] replies, never a panic.
//!
//! With `--state PATH` (or [`ServerConfig::with_state_log`]) every
//! applied store is appended to a frame-formatted log replayed on
//! startup, so a killed-and-restarted replica process returns with its
//! state intact — the same crash model (`silence, state preserved`) the
//! simulated network's `crash`/`restart` implements in-process.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use snapshot_obs::{Counter, Gauge, Registry};

use crate::frame::{read_frame, write_frame, FrameIoError, FrameRead, DEFAULT_MAX_FRAME};
use crate::net::{Endpoint, WireListener, WireStream};
use crate::proto::{ErrorCode, Frame, WireTag, PROTOCOL_VERSION};

/// How many recently seen request ids each connection remembers for
/// retransmission dedup (same window, and same rationale, as the
/// simulated network's replicas).
const DEDUP_WINDOW: usize = 4096;

/// Configuration of one replica server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Endpoint,
    /// This replica's index in the cluster (returned in `HelloAck`).
    pub replica: u32,
    /// Maximum accepted frame body size.
    pub max_frame: u32,
    /// Metrics registry for the `snapshotd.*` metrics (private registry
    /// when `None`).
    pub registry: Option<Arc<Registry>>,
    /// Path of the state log replayed on startup and appended on every
    /// applied store. `None` keeps state in memory only.
    pub state_log: Option<PathBuf>,
}

impl ServerConfig {
    /// A server on `listen` with index `replica`, default frame cap, a
    /// private registry and no state log.
    pub fn new(listen: Endpoint, replica: u32) -> Self {
        ServerConfig {
            listen,
            replica,
            max_frame: DEFAULT_MAX_FRAME,
            registry: None,
            state_log: None,
        }
    }

    /// Sets the maximum accepted frame body size.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Registers the server's metrics on a shared registry.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Persists applied stores to `path` (replayed on startup).
    pub fn with_state_log(mut self, path: PathBuf) -> Self {
        self.state_log = Some(path);
        self
    }
}

/// The tagged register store of one replica: `(lane, segment)` →
/// highest-tagged `(tag, value)` seen.
pub struct ReplicaStore {
    map: Mutex<HashMap<(u32, u32), (WireTag, Arc<[u8]>)>>,
    log: Mutex<Option<BufWriter<File>>>,
}

impl ReplicaStore {
    /// An empty in-memory store.
    pub fn in_memory() -> Self {
        ReplicaStore {
            map: Mutex::new(HashMap::new()),
            log: Mutex::new(None),
        }
    }

    /// Opens (or creates) a persistent store logging to `path`,
    /// replaying whatever the log already holds. A torn final record
    /// (the process died mid-append) is tolerated: replay stops at the
    /// first undecodable record and the log is truncated back to the
    /// last valid frame, so post-restart appends stay replayable on the
    /// next restart instead of hiding behind the torn bytes.
    pub fn open(path: &PathBuf) -> io::Result<Self> {
        let store = ReplicaStore::in_memory();
        let mut valid_len: u64 = 0;
        if let Ok(existing) = File::open(path) {
            let mut reader = BufReader::new(existing);
            loop {
                match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
                    Ok(FrameRead::Frame(body)) => match Frame::decode(&body) {
                        Ok(Frame::Store {
                            lane,
                            segment,
                            tag,
                            value,
                            ..
                        }) => {
                            valid_len += 4 + body.len() as u64;
                            store.apply(lane, segment, tag, value.into());
                        }
                        _ => break,
                    },
                    _ => break,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // O_APPEND writes land at EOF, so truncating the torn tail here
        // makes the next append follow the last valid frame.
        file.set_len(valid_len)?;
        *store.log.lock().unwrap() = Some(BufWriter::new(file));
        Ok(store)
    }

    /// The current `(tag, value)` for a register, if any store reached
    /// this replica.
    pub fn get(&self, lane: u32, segment: u32) -> Option<(WireTag, Arc<[u8]>)> {
        self.map
            .lock()
            .unwrap()
            .get(&(lane, segment))
            .map(|(t, v)| (*t, Arc::clone(v)))
    }

    /// Max-by-tag merge; returns whether the value was applied (a lower
    /// or equal tag leaves the stored value in place).
    pub fn apply(&self, lane: u32, segment: u32, tag: WireTag, value: Arc<[u8]>) -> bool {
        let mut map = self.map.lock().unwrap();
        match map.entry((lane, segment)) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                if tag > occupied.get().0 {
                    occupied.insert((tag, value.clone()));
                } else {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert((tag, value.clone()));
            }
        }
        drop(map);
        if let Some(log) = self.log.lock().unwrap().as_mut() {
            let record = Frame::Store {
                id: 0,
                lane,
                segment,
                tag,
                value: value.to_vec(),
            };
            let _ = write_frame(log, &record.encode(), DEFAULT_MAX_FRAME);
        }
        true
    }

    /// Number of registers this replica holds state for.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no store has ever reached this replica.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ReplicaStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaStore")
            .field("registers", &self.len())
            .finish()
    }
}

struct ServerMetrics {
    connections: Counter,
    open_connections: Gauge,
    frames_in: Counter,
    frames_out: Counter,
    stores_applied: Counter,
    duplicates_suppressed: Counter,
    decode_errors: Counter,
    oversize_frames: Counter,
    errors_sent: Counter,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> Self {
        ServerMetrics {
            connections: registry.counter("snapshotd.connections"),
            open_connections: registry.gauge("snapshotd.open_connections"),
            frames_in: registry.counter("snapshotd.frames_in"),
            frames_out: registry.counter("snapshotd.frames_out"),
            stores_applied: registry.counter("snapshotd.stores_applied"),
            duplicates_suppressed: registry.counter("snapshotd.duplicates_suppressed"),
            decode_errors: registry.counter("snapshotd.decode_errors"),
            oversize_frames: registry.counter("snapshotd.oversize_frames"),
            errors_sent: registry.counter("snapshotd.errors_sent"),
        }
    }
}

struct Shared {
    replica: u32,
    max_frame: u32,
    store: Arc<ReplicaStore>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// Live connection handles (clones), keyed by connection id, so
    /// shutdown can unblock every parked read.
    conns: Mutex<HashMap<u64, WireStream>>,
    next_conn: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// One running replica server (the library form of the `snapshotd`
/// binary): accepts connections on its endpoint and serves the ABD
/// replica protocol until [`ReplicaServer::shutdown`] or drop.
pub struct ReplicaServer {
    endpoint: Endpoint,
    registry: Arc<Registry>,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicaServer {
    /// Binds and spawns a server per `config` (opening or creating the
    /// state log when one is configured).
    pub fn spawn(config: ServerConfig) -> io::Result<ReplicaServer> {
        let store = match &config.state_log {
            Some(path) => Arc::new(ReplicaStore::open(path)?),
            None => Arc::new(ReplicaStore::in_memory()),
        };
        Self::spawn_with_store(config, store)
    }

    /// Like [`spawn`](Self::spawn), over an existing store — the
    /// in-process way to restart a killed replica with its state intact
    /// (the multi-process way is the state log).
    pub fn spawn_with_store(
        config: ServerConfig,
        store: Arc<ReplicaStore>,
    ) -> io::Result<ReplicaServer> {
        let registry = config.registry.unwrap_or_default();
        let listener = config.listen.bind()?;
        let endpoint = listener.local_endpoint()?;
        let shared = Arc::new(Shared {
            replica: config.replica,
            max_frame: config.max_frame,
            store,
            metrics: ServerMetrics::new(&registry),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("snapshotd-accept-{}", config.replica))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning accept thread");
        Ok(ReplicaServer {
            endpoint,
            registry,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The endpoint the server is actually bound to (a TCP port of `0`
    /// resolves to the kernel-assigned port).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The registry carrying this server's `snapshotd.*` metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The replica's register store (restart a killed replica with its
    /// state via [`ReplicaServer::spawn_with_store`]).
    pub fn store(&self) -> Arc<ReplicaStore> {
        Arc::clone(&self.shared.store)
    }

    /// This replica's index in the cluster (as configured and as
    /// announced in its `HelloAck`).
    pub fn replica_index(&self) -> u32 {
        self.shared.replica
    }

    /// Stops accepting, severs every live connection, and joins all
    /// server threads. Idempotent. From a client's point of view this is
    /// a replica crash: requests in flight go unanswered.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before serving.
        let _ = self.endpoint.dial();
        for (_, conn) in self.shared.conns.lock().unwrap().iter() {
            conn.shutdown();
        }
        if let Some(t) = self.accept_thread.lock().unwrap().take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for t in workers {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("replica", &self.shared.replica)
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

/// Joins the worker handles whose connections already ended, keeping
/// only the live ones — without this a long-lived server accepting many
/// short connections accumulates handles without bound.
fn reap_finished_workers(workers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut guard = workers.lock().unwrap();
    let handles = std::mem::take(&mut *guard);
    for handle in handles {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            guard.push(handle);
        }
    }
}

fn accept_loop(listener: WireListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // A transient accept failure (e.g. EMFILE) would
                // otherwise busy-spin this thread; back off briefly.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        reap_finished_workers(&shared.workers);
        shared.metrics.connections.inc();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("snapshotd-conn-{}-{}", shared.replica, conn_id))
            .spawn(move || {
                conn_shared.metrics.open_connections.add(1);
                serve_connection(stream, &conn_shared);
                conn_shared.metrics.open_connections.add(-1);
                conn_shared.conns.lock().unwrap().remove(&conn_id);
            });
        match worker {
            Ok(handle) => shared.workers.lock().unwrap().push(handle),
            Err(_) => {
                shared.conns.lock().unwrap().remove(&conn_id);
            }
        }
    }
    listener.cleanup();
}

fn send(stream: &mut WireStream, shared: &Shared, frame: &Frame) -> bool {
    match write_frame(stream, &frame.encode(), shared.max_frame) {
        Ok(()) => {
            shared.metrics.frames_out.inc();
            true
        }
        Err(_) => false,
    }
}

fn send_error(stream: &mut WireStream, shared: &Shared, id: u64, code: ErrorCode, detail: String) {
    shared.metrics.errors_sent.inc();
    let _ = send(stream, shared, &Frame::Error { id, code, detail });
}

/// Serves one client connection: handshake, then the request loop.
fn serve_connection(mut stream: WireStream, shared: &Shared) {
    // Handshake: the first frame must be a well-formed `Hello` for a
    // version we speak.
    match read_decoded(&mut stream, shared) {
        Some(Frame::Hello { version, .. }) if version == PROTOCOL_VERSION => {
            if !send(
                &mut stream,
                shared,
                &Frame::HelloAck {
                    version: PROTOCOL_VERSION,
                    replica: shared.replica,
                },
            ) {
                return;
            }
        }
        Some(Frame::Hello { version, .. }) => {
            send_error(
                &mut stream,
                shared,
                0,
                ErrorCode::Unsupported,
                format!("protocol version {version} not supported (want {PROTOCOL_VERSION})"),
            );
            return;
        }
        Some(other) => {
            send_error(
                &mut stream,
                shared,
                other.request_id().unwrap_or(0),
                ErrorCode::Unsupported,
                format!("expected hello, got {}", other.kind_name()),
            );
            return;
        }
        None => return,
    }

    let mut seen: HashSet<u64> = HashSet::new();
    let mut seen_order: VecDeque<u64> = VecDeque::new();
    let mut note_seen = move |id: u64| -> bool {
        if !seen.insert(id) {
            return false;
        }
        seen_order.push_back(id);
        if seen_order.len() > DEDUP_WINDOW {
            if let Some(old) = seen_order.pop_front() {
                seen.remove(&old);
            }
        }
        true
    };

    while !shared.shutdown.load(Ordering::Acquire) {
        let frame = match read_decoded(&mut stream, shared) {
            Some(f) => f,
            None => break,
        };
        match frame {
            Frame::Query { id, lane, segment } => {
                // Read-only: dedup records the id but every delivery is
                // (re-)answered with the current state.
                note_seen(id);
                let (tag, value) = match shared.store.get(lane, segment) {
                    Some((t, v)) => (t, Some(v.to_vec())),
                    None => (WireTag::default(), None),
                };
                if !send(&mut stream, shared, &Frame::QueryReply { id, tag, value }) {
                    break;
                }
            }
            Frame::Store {
                id,
                lane,
                segment,
                tag,
                value,
            } => {
                if note_seen(id) {
                    if shared.store.apply(lane, segment, tag, value.into()) {
                        shared.metrics.stores_applied.inc();
                    }
                } else {
                    // Duplicate delivery (client retransmission): skip
                    // the apply, but re-ack — the first ack may have
                    // been lost.
                    shared.metrics.duplicates_suppressed.inc();
                }
                if !send(&mut stream, shared, &Frame::StoreAck { id }) {
                    break;
                }
            }
            other => {
                send_error(
                    &mut stream,
                    shared,
                    other.request_id().unwrap_or(0),
                    ErrorCode::Unsupported,
                    format!("unexpected {} frame", other.kind_name()),
                );
            }
        }
    }
}

/// Reads and decodes one frame; refuses malformation and oversize with a
/// typed error reply and `None` (caller drops the connection — the
/// stream may no longer be frame-aligned).
fn read_decoded(stream: &mut WireStream, shared: &Shared) -> Option<Frame> {
    match read_frame(stream, shared.max_frame) {
        Ok(FrameRead::Frame(body)) => {
            shared.metrics.frames_in.inc();
            match Frame::decode(&body) {
                Ok(frame) => Some(frame),
                Err(e) => {
                    shared.metrics.decode_errors.inc();
                    send_error(stream, shared, 0, ErrorCode::Malformed, e.to_string());
                    None
                }
            }
        }
        Ok(FrameRead::Eof) => None,
        Err(FrameIoError::TooLarge { len, max }) => {
            shared.metrics.oversize_frames.inc();
            send_error(
                stream,
                shared,
                0,
                ErrorCode::TooLarge,
                format!("{len}-byte frame exceeds the {max}-byte cap"),
            );
            None
        }
        Err(FrameIoError::Io(_)) => None,
    }
}

/// Runs the `snapshotd` command line: parses `--listen`, `--replica`,
/// `--max-frame`, `--state` and `--metrics-every`, spawns the server,
/// prints a ready line to stdout, and serves until killed. Returns an
/// error string suitable for `eprintln!` + nonzero exit.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut listen: Option<Endpoint> = None;
    let mut replica: u32 = 0;
    let mut max_frame = DEFAULT_MAX_FRAME;
    let mut state_log: Option<PathBuf> = None;
    let mut metrics_every: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = Some(Endpoint::parse(&value("--listen")?)?),
            "--replica" => {
                replica = value("--replica")?
                    .parse()
                    .map_err(|e| format!("--replica: {e}"))?
            }
            "--max-frame" => {
                max_frame = value("--max-frame")?
                    .parse()
                    .map_err(|e| format!("--max-frame: {e}"))?
            }
            "--state" => state_log = Some(PathBuf::from(value("--state")?)),
            "--metrics-every" => {
                metrics_every = Some(
                    value("--metrics-every")?
                        .parse()
                        .map_err(|e| format!("--metrics-every: {e}"))?,
                )
            }
            "--help" | "-h" => {
                // Asked-for usage goes to stdout with a zero exit; the
                // Err path stays for genuine argument errors.
                println!(
                    "usage: snapshotd --listen <tcp:HOST:PORT|uds:PATH> [--replica N] \
                     [--max-frame BYTES] [--state PATH] [--metrics-every SECS]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let listen = listen.ok_or("missing --listen (try --help)")?;

    let mut config = ServerConfig::new(listen, replica).with_max_frame(max_frame);
    if let Some(path) = state_log {
        config = config.with_state_log(path);
    }
    let server = ReplicaServer::spawn(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("snapshotd[{replica}] listening on {}", server.endpoint());
    io::stdout().flush().ok();

    loop {
        std::thread::sleep(std::time::Duration::from_secs(metrics_every.unwrap_or(3600)));
        if let Some(_every) = metrics_every {
            println!("snapshotd[{replica}] metrics:");
            print!("{}", server.registry().render());
            io::stdout().flush().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn dial_and_hello(server: &ReplicaServer) -> WireStream {
        let mut stream = server.endpoint().dial().unwrap();
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            client: 9,
        };
        write_frame(&mut stream, &hello.encode(), DEFAULT_MAX_FRAME).unwrap();
        match read_one(&mut stream) {
            Frame::HelloAck { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("{other:?}"),
        }
        stream
    }

    fn read_one(stream: &mut impl Read) -> Frame {
        match read_frame(stream, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(body) => Frame::decode(&body).unwrap(),
            FrameRead::Eof => panic!("unexpected eof"),
        }
    }

    fn tcp_server() -> ReplicaServer {
        ReplicaServer::spawn(ServerConfig::new(
            Endpoint::Tcp(String::from("127.0.0.1:0")),
            0,
        ))
        .unwrap()
    }

    #[test]
    fn serves_query_and_store_with_max_merge() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);

        // Empty register: default tag, no value.
        write_frame(
            &mut c,
            &Frame::Query {
                id: 1,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply {
                id: 1,
                tag,
                value: None,
            } => assert_eq!(tag, WireTag::default()),
            other => panic!("{other:?}"),
        }

        // Store, then a lower-tagged store: the merge keeps the max.
        let hi = WireTag { seq: 5, writer: 1 };
        let lo = WireTag { seq: 3, writer: 2 };
        for (id, tag, value) in [(2u64, hi, vec![9u8]), (3, lo, vec![1])] {
            write_frame(
                &mut c,
                &Frame::Store {
                    id,
                    lane: 0,
                    segment: 0,
                    tag,
                    value,
                }
                .encode(),
                DEFAULT_MAX_FRAME,
            )
            .unwrap();
            match read_one(&mut c) {
                Frame::StoreAck { id: got } => assert_eq!(got, id),
                other => panic!("{other:?}"),
            }
        }
        write_frame(
            &mut c,
            &Frame::Query {
                id: 4,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply {
                tag,
                value: Some(v),
                ..
            } => {
                assert_eq!(tag, hi);
                assert_eq!(v, vec![9]);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn duplicate_stores_are_suppressed_but_reacked() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);
        let store = Frame::Store {
            id: 7,
            lane: 1,
            segment: 2,
            tag: WireTag { seq: 1, writer: 0 },
            value: vec![4],
        };
        for _ in 0..3 {
            write_frame(&mut c, &store.encode(), DEFAULT_MAX_FRAME).unwrap();
            match read_one(&mut c) {
                Frame::StoreAck { id: 7 } => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(server.registry().counter("snapshotd.stores_applied").get(), 1);
        assert_eq!(
            server
                .registry()
                .counter("snapshotd.duplicates_suppressed")
                .get(),
            2
        );
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversize_frames_get_typed_error_replies() {
        let server = ReplicaServer::spawn(
            ServerConfig::new(Endpoint::Tcp(String::from("127.0.0.1:0")), 0)
                .with_max_frame(256),
        )
        .unwrap();

        // Garbage after the handshake → Malformed, connection dropped.
        let mut c = dial_and_hello(&server);
        write_frame(&mut c, &[250, 1, 2, 3], 256).unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Malformed,
                ..
            } => {}
            other => panic!("{other:?}"),
        }

        // Oversize length prefix → TooLarge.
        let mut c = dial_and_hello(&server);
        c.write_all(&10_000u32.to_le_bytes()).unwrap();
        c.flush().unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::TooLarge,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(server.registry().counter("snapshotd.oversize_frames").get(), 1);
        assert_eq!(server.registry().counter("snapshotd.decode_errors").get(), 1);
        server.shutdown();
    }

    #[test]
    fn handshake_is_mandatory_and_version_checked() {
        let server = tcp_server();

        // First frame not a Hello → Unsupported.
        let mut c = server.endpoint().dial().unwrap();
        write_frame(
            &mut c,
            &Frame::StoreAck { id: 1 }.encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Unsupported,
                ..
            } => {}
            other => panic!("{other:?}"),
        }

        // Future protocol version → Unsupported.
        let mut c = server.endpoint().dial().unwrap();
        write_frame(
            &mut c,
            &Frame::Hello {
                version: 999,
                client: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Unsupported,
                detail,
                ..
            } => assert!(detail.contains("999"), "{detail}"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn uds_round_trip_and_shutdown_cleans_the_socket_file() {
        let path = std::env::temp_dir().join(format!(
            "snapshot-wire-test-{}.sock",
            std::process::id()
        ));
        let server =
            ReplicaServer::spawn(ServerConfig::new(Endpoint::Uds(path.clone()), 2)).unwrap();
        let mut c = dial_and_hello(&server);
        write_frame(
            &mut c,
            &Frame::Query {
                id: 1,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply { id: 1, .. } => {}
            other => panic!("{other:?}"),
        }
        server.shutdown();
        assert!(!path.exists(), "socket file must be removed on shutdown");
    }

    #[test]
    fn state_log_survives_a_restart() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("snapshot-wire-state-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let store = ReplicaStore::open(&path).unwrap();
        store.apply(
            0,
            1,
            WireTag { seq: 4, writer: 0 },
            Arc::from(vec![7u8].into_boxed_slice()),
        );
        store.apply(
            0,
            1,
            WireTag { seq: 9, writer: 1 },
            Arc::from(vec![8u8].into_boxed_slice()),
        );
        drop(store);

        let reloaded = ReplicaStore::open(&path).unwrap();
        let (tag, value) = reloaded.get(0, 1).expect("state must be replayed");
        assert_eq!(tag, WireTag { seq: 9, writer: 1 });
        assert_eq!(&value[..], &[8]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_log_tail_is_truncated_so_post_restart_appends_survive() {
        let path = std::env::temp_dir().join(format!(
            "snapshot-wire-torn-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let store = ReplicaStore::open(&path).unwrap();
        store.apply(
            0,
            0,
            WireTag { seq: 1, writer: 0 },
            Arc::from(vec![1u8].into_boxed_slice()),
        );
        drop(store);

        // The process died mid-append: a partial length prefix trails
        // the last valid frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF, 0x13, 0x88]).unwrap();
        }

        // First restart replays up to the torn record and truncates it,
        // so the record applied *after* the restart lands frame-aligned.
        let store = ReplicaStore::open(&path).unwrap();
        let (tag, _) = store.get(0, 0).expect("pre-crash state replayed");
        assert_eq!(tag, WireTag { seq: 1, writer: 0 });
        store.apply(
            0,
            0,
            WireTag { seq: 2, writer: 0 },
            Arc::from(vec![2u8].into_boxed_slice()),
        );
        drop(store);

        // Second restart must see the post-crash record too — with the
        // torn bytes left in place it would stop replay at seq 1.
        let store = ReplicaStore::open(&path).unwrap();
        let (tag, value) = store.get(0, 0).expect("post-crash state replayed");
        assert_eq!(tag, WireTag { seq: 2, writer: 0 });
        assert_eq!(&value[..], &[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_is_idempotent_and_severs_live_connections() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);
        server.shutdown();
        server.shutdown();
        // The connection is dead: reads see EOF/error, not a hang.
        match read_frame(&mut c, DEFAULT_MAX_FRAME) {
            Ok(FrameRead::Eof) | Err(_) => {}
            Ok(FrameRead::Frame(_)) => panic!("no frame expected after shutdown"),
        }
    }
}
