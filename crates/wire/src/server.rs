//! The replica server: the ABD replica role of `crates/abd`'s simulated
//! network, hosted behind a real socket.
//!
//! One [`ReplicaServer`] owns a listener (TCP or UDS), a tagged register
//! store keyed by `(lane, segment)`, and one thread per client
//! connection. The protocol obligations mirror the simulated
//! `ReplicaCore` exactly:
//!
//! * **`Query`** is answered on every delivery with the current
//!   `(tag, value)` — re-answering is what lets a client whose reply was
//!   lost make progress;
//! * **`Store`** is a max-by-tag merge, deduplicated by request id within
//!   a bounded window and re-acked on duplicate delivery. A duplicate
//!   that arrives over a *new* connection (after a client redial) may be
//!   re-applied — harmless, because the merge is idempotent;
//! * malformed, oversize, or unsupported frames are refused with typed
//!   [`Frame::Error`] replies, never a panic.
//!
//! With `--state PATH` (or [`ServerConfig::with_state_log`]) every
//! applied store is appended to the CRC-framed, checkpointed state log
//! of [`ReplicaStore`] (see `crate::store` for the crash-consistency
//! model), so a killed-and-restarted replica process returns with its
//! state intact — the same crash model (`silence, state preserved`) the
//! simulated network's `crash`/`restart` implements in-process. The
//! `--fsync`, `--recover` and `--checkpoint-bytes` flags thread the
//! store's durability policies through the CLI, and SIGTERM triggers a
//! graceful drain + final checkpoint instead of a crash-equivalent
//! exit.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snapshot_obs::{Counter, Gauge, Registry};

use crate::frame::{read_frame, write_frame, FrameIoError, FrameRead, DEFAULT_MAX_FRAME};
use crate::net::{Endpoint, WireListener, WireStream};
use crate::proto::{ErrorCode, Frame, WireTag, PROTOCOL_VERSION};
use crate::store::{FsyncPolicy, RecoveryPolicy, ReplicaStore, StoreConfig, StoreError};

/// How many recently seen request ids each connection remembers for
/// retransmission dedup (same window, and same rationale, as the
/// simulated network's replicas).
const DEDUP_WINDOW: usize = 4096;

/// Configuration of one replica server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Endpoint,
    /// This replica's index in the cluster (returned in `HelloAck`).
    pub replica: u32,
    /// Maximum accepted frame body size.
    pub max_frame: u32,
    /// Metrics registry for the `snapshotd.*` metrics (private registry
    /// when `None`).
    pub registry: Option<Arc<Registry>>,
    /// Path of the state log replayed on startup and appended on every
    /// applied store. `None` keeps state in memory only.
    pub state_log: Option<PathBuf>,
    /// When appended stores reach the disk (ignored without a state
    /// log).
    pub fsync: FsyncPolicy,
    /// What startup replay does about mid-log corruption.
    pub recovery: RecoveryPolicy,
    /// Auto-checkpoint threshold in log bytes.
    pub checkpoint_bytes: u64,
}

impl ServerConfig {
    /// A server on `listen` with index `replica`, default frame cap, a
    /// private registry and no state log.
    pub fn new(listen: Endpoint, replica: u32) -> Self {
        ServerConfig {
            listen,
            replica,
            max_frame: DEFAULT_MAX_FRAME,
            registry: None,
            state_log: None,
            fsync: FsyncPolicy::default(),
            recovery: RecoveryPolicy::default(),
            checkpoint_bytes: StoreConfig::default().checkpoint_bytes,
        }
    }

    /// Sets the maximum accepted frame body size.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Registers the server's metrics on a shared registry.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Persists applied stores to `path` (replayed on startup).
    pub fn with_state_log(mut self, path: PathBuf) -> Self {
        self.state_log = Some(path);
        self
    }

    /// Sets when appended stores reach the disk.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the mid-log-corruption recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the auto-checkpoint threshold in log bytes.
    pub fn with_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }
}

struct ServerMetrics {
    connections: Counter,
    open_connections: Gauge,
    requests_in_flight: Gauge,
    frames_in: Counter,
    frames_out: Counter,
    stores_applied: Counter,
    duplicates_suppressed: Counter,
    decode_errors: Counter,
    oversize_frames: Counter,
    corrupt_frames: Counter,
    errors_sent: Counter,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> Self {
        ServerMetrics {
            connections: registry.counter("snapshotd.connections"),
            open_connections: registry.gauge("snapshotd.open_connections"),
            requests_in_flight: registry.gauge("snapshotd.requests_in_flight"),
            frames_in: registry.counter("snapshotd.frames_in"),
            frames_out: registry.counter("snapshotd.frames_out"),
            stores_applied: registry.counter("snapshotd.stores_applied"),
            duplicates_suppressed: registry.counter("snapshotd.duplicates_suppressed"),
            decode_errors: registry.counter("snapshotd.decode_errors"),
            oversize_frames: registry.counter("snapshotd.oversize_frames"),
            corrupt_frames: registry.counter("snapshotd.corrupt_frames"),
            errors_sent: registry.counter("snapshotd.errors_sent"),
        }
    }
}

struct Shared {
    replica: u32,
    max_frame: u32,
    store: Arc<ReplicaStore>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// Live connection handles (clones), keyed by connection id, so
    /// shutdown can unblock every parked read.
    conns: Mutex<HashMap<u64, WireStream>>,
    next_conn: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// One running replica server (the library form of the `snapshotd`
/// binary): accepts connections on its endpoint and serves the ABD
/// replica protocol until [`ReplicaServer::shutdown`] or drop.
pub struct ReplicaServer {
    endpoint: Endpoint,
    registry: Arc<Registry>,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicaServer {
    /// Binds and spawns a server per `config` (opening or creating the
    /// state log when one is configured). With [`RecoveryPolicy::Fail`]
    /// a corrupt state log refuses to open — the [`StoreError::Corrupt`]
    /// surfaces here as `InvalidData`, naming the offset.
    pub fn spawn(config: ServerConfig) -> io::Result<ReplicaServer> {
        let registry = config.registry.clone().unwrap_or_default();
        let store = Arc::new(
            ReplicaStore::open_with(
                StoreConfig {
                    path: config.state_log.clone(),
                    fsync: config.fsync,
                    recovery: config.recovery,
                    checkpoint_bytes: config.checkpoint_bytes,
                    registry: Some(Arc::clone(&registry)),
                    trace: None,
                    replica: config.replica,
                    ..StoreConfig::default()
                }
                // The record cap must track the frame cap, or a store
                // accepted over the wire could be logged but refused on
                // replay.
                .with_max_frame(config.max_frame),
            )
            .map_err(io::Error::from)?,
        );
        Self::spawn_with_store(ServerConfig { registry: Some(registry), ..config }, store)
    }

    /// Like [`spawn`](Self::spawn), over an existing store — the
    /// in-process way to restart a killed replica with its state intact
    /// (the multi-process way is the state log).
    pub fn spawn_with_store(
        config: ServerConfig,
        store: Arc<ReplicaStore>,
    ) -> io::Result<ReplicaServer> {
        let registry = config.registry.unwrap_or_default();
        let listener = config.listen.bind()?;
        let endpoint = listener.local_endpoint()?;
        let shared = Arc::new(Shared {
            replica: config.replica,
            max_frame: config.max_frame,
            store,
            metrics: ServerMetrics::new(&registry),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("snapshotd-accept-{}", config.replica))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning accept thread");
        Ok(ReplicaServer {
            endpoint,
            registry,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The endpoint the server is actually bound to (a TCP port of `0`
    /// resolves to the kernel-assigned port).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The registry carrying this server's `snapshotd.*` metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The replica's register store (restart a killed replica with its
    /// state via [`ReplicaServer::spawn_with_store`]).
    pub fn store(&self) -> Arc<ReplicaStore> {
        Arc::clone(&self.shared.store)
    }

    /// This replica's index in the cluster (as configured and as
    /// announced in its `HelloAck`).
    pub fn replica_index(&self) -> u32 {
        self.shared.replica
    }

    /// Stops accepting, severs every live connection, and joins all
    /// server threads. Idempotent. From a client's point of view this is
    /// a replica crash: requests in flight go unanswered.
    pub fn shutdown(&self) {
        self.stop(None);
    }

    /// Graceful shutdown (the SIGTERM path): stops accepting, gives
    /// in-flight *requests* up to `grace` to finish — an idle
    /// connection counts as drained and is severed immediately, so a
    /// quiet server returns without waiting out the grace — joins every
    /// thread, then flushes, fsyncs, and writes a final durable
    /// checkpoint so the next start replays O(live registers).
    pub fn shutdown_graceful(&self, grace: Duration) -> Result<(), StoreError> {
        self.stop(Some(grace));
        self.shared.store.flush(true)?;
        self.shared.store.checkpoint()
    }

    fn stop(&self, drain: Option<Duration>) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before serving.
        let _ = self.endpoint.dial();
        if let Some(grace) = drain {
            // Wait for requests actually being served, not for clients
            // to hang up: an idle persistent connection is already
            // drained (its worker is parked in a read), and is severed
            // right below — so a SIGTERM with only idle clients returns
            // immediately instead of burning the whole grace.
            let deadline = Instant::now() + grace;
            while Instant::now() < deadline {
                if self.shared.metrics.requests_in_flight.get() == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for (_, conn) in self.shared.conns.lock().unwrap().iter() {
            conn.shutdown();
        }
        if let Some(t) = self.accept_thread.lock().unwrap().take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for t in workers {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("replica", &self.shared.replica)
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

/// Joins the worker handles whose connections already ended, keeping
/// only the live ones — without this a long-lived server accepting many
/// short connections accumulates handles without bound.
fn reap_finished_workers(workers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut guard = workers.lock().unwrap();
    let handles = std::mem::take(&mut *guard);
    for handle in handles {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            guard.push(handle);
        }
    }
}

fn accept_loop(listener: WireListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // A transient accept failure (e.g. EMFILE) would
                // otherwise busy-spin this thread; back off briefly.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        reap_finished_workers(&shared.workers);
        shared.metrics.connections.inc();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("snapshotd-conn-{}-{}", shared.replica, conn_id))
            .spawn(move || {
                conn_shared.metrics.open_connections.add(1);
                serve_connection(stream, &conn_shared);
                conn_shared.metrics.open_connections.add(-1);
                conn_shared.conns.lock().unwrap().remove(&conn_id);
            });
        match worker {
            Ok(handle) => shared.workers.lock().unwrap().push(handle),
            Err(_) => {
                shared.conns.lock().unwrap().remove(&conn_id);
            }
        }
    }
    listener.cleanup();
}

fn send(stream: &mut WireStream, shared: &Shared, frame: &Frame) -> bool {
    match write_frame(stream, &frame.encode(), shared.max_frame) {
        Ok(()) => {
            shared.metrics.frames_out.inc();
            true
        }
        Err(_) => false,
    }
}

fn send_error(stream: &mut WireStream, shared: &Shared, id: u64, code: ErrorCode, detail: String) {
    shared.metrics.errors_sent.inc();
    let _ = send(stream, shared, &Frame::Error { id, code, detail });
}

/// Serves one client connection: handshake, then the request loop.
fn serve_connection(mut stream: WireStream, shared: &Shared) {
    // Handshake: the first frame must be a well-formed `Hello` for a
    // version we speak.
    match read_decoded(&mut stream, shared) {
        Some(Frame::Hello { version, .. }) if version == PROTOCOL_VERSION => {
            if !send(
                &mut stream,
                shared,
                &Frame::HelloAck {
                    version: PROTOCOL_VERSION,
                    replica: shared.replica,
                },
            ) {
                return;
            }
        }
        Some(Frame::Hello { version, .. }) => {
            send_error(
                &mut stream,
                shared,
                0,
                ErrorCode::Unsupported,
                format!("protocol version {version} not supported (want {PROTOCOL_VERSION})"),
            );
            return;
        }
        Some(other) => {
            send_error(
                &mut stream,
                shared,
                other.request_id().unwrap_or(0),
                ErrorCode::Unsupported,
                format!("expected hello, got {}", other.kind_name()),
            );
            return;
        }
        None => return,
    }

    let mut seen: HashSet<u64> = HashSet::new();
    let mut seen_order: VecDeque<u64> = VecDeque::new();
    let mut note_seen = move |id: u64| -> bool {
        if !seen.insert(id) {
            return false;
        }
        seen_order.push_back(id);
        if seen_order.len() > DEDUP_WINDOW {
            if let Some(old) = seen_order.pop_front() {
                seen.remove(&old);
            }
        }
        true
    };

    while !shared.shutdown.load(Ordering::Acquire) {
        let frame = match read_decoded(&mut stream, shared) {
            Some(f) => f,
            None => break,
        };
        // In flight from fully-read request to sent reply: the graceful
        // drain waits on this gauge (not on connection count), so an
        // idle connection never holds up a SIGTERM.
        shared.metrics.requests_in_flight.add(1);
        let keep_going = match frame {
            Frame::Query { id, lane, segment } => {
                // Read-only: dedup records the id but every delivery is
                // (re-)answered with the current state.
                note_seen(id);
                let (tag, value) = match shared.store.get(lane, segment) {
                    Some((t, v)) => (t, Some(v.to_vec())),
                    None => (WireTag::default(), None),
                };
                send(&mut stream, shared, &Frame::QueryReply { id, tag, value })
            }
            Frame::Store {
                id,
                lane,
                segment,
                tag,
                value,
            } => {
                if note_seen(id) {
                    if shared.store.apply(lane, segment, tag, value.into()) {
                        shared.metrics.stores_applied.inc();
                    }
                } else {
                    // Duplicate delivery (client retransmission): skip
                    // the apply, but re-ack — the first ack may have
                    // been lost.
                    shared.metrics.duplicates_suppressed.inc();
                }
                send(&mut stream, shared, &Frame::StoreAck { id })
            }
            other => {
                send_error(
                    &mut stream,
                    shared,
                    other.request_id().unwrap_or(0),
                    ErrorCode::Unsupported,
                    format!("unexpected {} frame", other.kind_name()),
                );
                true
            }
        };
        shared.metrics.requests_in_flight.add(-1);
        if !keep_going {
            break;
        }
    }
}

/// Reads and decodes one frame; refuses malformation and oversize with a
/// typed error reply and `None` (caller drops the connection — the
/// stream may no longer be frame-aligned).
fn read_decoded(stream: &mut WireStream, shared: &Shared) -> Option<Frame> {
    match read_frame(stream, shared.max_frame) {
        Ok(FrameRead::Frame(body)) => {
            shared.metrics.frames_in.inc();
            match Frame::decode(&body) {
                Ok(frame) => Some(frame),
                Err(e) => {
                    shared.metrics.decode_errors.inc();
                    send_error(stream, shared, 0, ErrorCode::Malformed, e.to_string());
                    None
                }
            }
        }
        Ok(FrameRead::Eof) => None,
        Err(FrameIoError::TooLarge { len, max }) => {
            shared.metrics.oversize_frames.inc();
            send_error(
                stream,
                shared,
                0,
                ErrorCode::TooLarge,
                format!("{len}-byte frame exceeds the {max}-byte cap"),
            );
            None
        }
        Err(FrameIoError::Corrupt { expected, got }) => {
            // Damaged in flight: the length prefix itself may be the lie,
            // so the stream is not trustworthy past this point. Reply
            // best-effort and let the caller drop the connection.
            shared.metrics.corrupt_frames.inc();
            send_error(
                stream,
                shared,
                0,
                ErrorCode::Malformed,
                format!("frame crc mismatch (expected {expected:#010x}, got {got:#010x})"),
            );
            None
        }
        Err(FrameIoError::Io(_)) => None,
    }
}

/// Set by the SIGTERM handler; polled by [`run_cli`]'s serve loop.
static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // A relaxed atomic store is async-signal-safe.
    SIGTERM_FLAG.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM → flag handler. No `libc` crate: `signal` is
/// declared directly (it is always in the platform libc this binary
/// links).
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// How long a SIGTERM-initiated shutdown waits for in-flight requests.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Runs the `snapshotd` command line: parses `--listen`, `--replica`,
/// `--max-frame`, `--state`, `--fsync`, `--recover`,
/// `--checkpoint-bytes` and `--metrics-every`, spawns the server,
/// prints a ready line to stdout, and serves until killed — or until
/// SIGTERM, which drains in-flight connections, writes a final fsynced
/// checkpoint, and returns `Ok` (exit 0). Returns an error string
/// suitable for `eprintln!` + nonzero exit.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut listen: Option<Endpoint> = None;
    let mut replica: u32 = 0;
    let mut max_frame = DEFAULT_MAX_FRAME;
    let mut state_log: Option<PathBuf> = None;
    let mut metrics_every: Option<u64> = None;
    let mut fsync = FsyncPolicy::default();
    let mut recovery = RecoveryPolicy::default();
    let mut checkpoint_bytes = StoreConfig::default().checkpoint_bytes;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = Some(Endpoint::parse(&value("--listen")?)?),
            "--replica" => {
                replica = value("--replica")?
                    .parse()
                    .map_err(|e| format!("--replica: {e}"))?
            }
            "--max-frame" => {
                max_frame = value("--max-frame")?
                    .parse()
                    .map_err(|e| format!("--max-frame: {e}"))?
            }
            "--state" => state_log = Some(PathBuf::from(value("--state")?)),
            "--fsync" => fsync = FsyncPolicy::parse(&value("--fsync")?)?,
            "--recover" => recovery = RecoveryPolicy::parse(&value("--recover")?)?,
            "--checkpoint-bytes" => {
                checkpoint_bytes = value("--checkpoint-bytes")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-bytes: {e}"))?
            }
            "--metrics-every" => {
                metrics_every = Some(
                    value("--metrics-every")?
                        .parse()
                        .map_err(|e| format!("--metrics-every: {e}"))?,
                )
            }
            "--help" | "-h" => {
                // Asked-for usage goes to stdout with a zero exit; the
                // Err path stays for genuine argument errors.
                println!(
                    "usage: snapshotd --listen <tcp:HOST:PORT|uds:PATH> [--replica N] \
                     [--max-frame BYTES] [--state PATH] [--fsync always|interval:MS|never] \
                     [--recover fail|truncate] [--checkpoint-bytes N] [--metrics-every SECS]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let listen = listen.ok_or("missing --listen (try --help)")?;

    install_sigterm_handler();

    let has_state = state_log.is_some();
    let mut config = ServerConfig::new(listen, replica)
        .with_max_frame(max_frame)
        .with_fsync(fsync)
        .with_recovery(recovery)
        .with_checkpoint_bytes(checkpoint_bytes);
    if let Some(path) = state_log {
        config = config.with_state_log(path);
    }
    // With --recover fail a corrupt state log lands here: nonzero exit,
    // offset in the message, nothing replayed.
    let server = ReplicaServer::spawn(config).map_err(|e| format!("startup failed: {e}"))?;
    if has_state {
        let store = server.store();
        let r = store.recovery();
        println!(
            "snapshotd[{replica}] recovered: registers={} ckpt_registers={} replayed={} \
             stale={} truncated_bytes={} corrupt={} generation={} replay_us={}",
            store.len(),
            r.checkpoint_registers,
            r.replayed_records,
            r.stale_records,
            r.truncated_bytes,
            r.corrupt_offset
                .map_or_else(|| String::from("none"), |o| o.to_string()),
            r.generation,
            r.elapsed_us,
        );
    }
    println!("snapshotd[{replica}] listening on {}", server.endpoint());
    io::stdout().flush().ok();

    let mut last_metrics = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if SIGTERM_FLAG.load(Ordering::Relaxed) {
            println!("snapshotd[{replica}] SIGTERM: draining connections and checkpointing");
            io::stdout().flush().ok();
            server
                .shutdown_graceful(SHUTDOWN_GRACE)
                .map_err(|e| format!("graceful shutdown: {e}"))?;
            println!(
                "snapshotd[{replica}] shutdown complete: final checkpoint written \
                 (registers={})",
                server.store().len()
            );
            io::stdout().flush().ok();
            return Ok(());
        }
        if let Some(every) = metrics_every {
            if last_metrics.elapsed() >= Duration::from_secs(every) {
                println!("snapshotd[{replica}] metrics:");
                print!("{}", server.registry().render());
                io::stdout().flush().ok();
                last_metrics = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::crc32;
    use std::io::Read;

    fn dial_and_hello(server: &ReplicaServer) -> WireStream {
        let mut stream = server.endpoint().dial().unwrap();
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            client: 9,
        };
        write_frame(&mut stream, &hello.encode(), DEFAULT_MAX_FRAME).unwrap();
        match read_one(&mut stream) {
            Frame::HelloAck { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("{other:?}"),
        }
        stream
    }

    fn read_one(stream: &mut impl Read) -> Frame {
        match read_frame(stream, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(body) => Frame::decode(&body).unwrap(),
            FrameRead::Eof => panic!("unexpected eof"),
        }
    }

    fn tcp_server() -> ReplicaServer {
        ReplicaServer::spawn(ServerConfig::new(
            Endpoint::Tcp(String::from("127.0.0.1:0")),
            0,
        ))
        .unwrap()
    }

    #[test]
    fn serves_query_and_store_with_max_merge() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);

        // Empty register: default tag, no value.
        write_frame(
            &mut c,
            &Frame::Query {
                id: 1,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply {
                id: 1,
                tag,
                value: None,
            } => assert_eq!(tag, WireTag::default()),
            other => panic!("{other:?}"),
        }

        // Store, then a lower-tagged store: the merge keeps the max.
        let hi = WireTag { seq: 5, writer: 1 };
        let lo = WireTag { seq: 3, writer: 2 };
        for (id, tag, value) in [(2u64, hi, vec![9u8]), (3, lo, vec![1])] {
            write_frame(
                &mut c,
                &Frame::Store {
                    id,
                    lane: 0,
                    segment: 0,
                    tag,
                    value,
                }
                .encode(),
                DEFAULT_MAX_FRAME,
            )
            .unwrap();
            match read_one(&mut c) {
                Frame::StoreAck { id: got } => assert_eq!(got, id),
                other => panic!("{other:?}"),
            }
        }
        write_frame(
            &mut c,
            &Frame::Query {
                id: 4,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply {
                tag,
                value: Some(v),
                ..
            } => {
                assert_eq!(tag, hi);
                assert_eq!(v, vec![9]);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn duplicate_stores_are_suppressed_but_reacked() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);
        let store = Frame::Store {
            id: 7,
            lane: 1,
            segment: 2,
            tag: WireTag { seq: 1, writer: 0 },
            value: vec![4],
        };
        for _ in 0..3 {
            write_frame(&mut c, &store.encode(), DEFAULT_MAX_FRAME).unwrap();
            match read_one(&mut c) {
                Frame::StoreAck { id: 7 } => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(server.registry().counter("snapshotd.stores_applied").get(), 1);
        assert_eq!(
            server
                .registry()
                .counter("snapshotd.duplicates_suppressed")
                .get(),
            2
        );
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversize_frames_get_typed_error_replies() {
        let server = ReplicaServer::spawn(
            ServerConfig::new(Endpoint::Tcp(String::from("127.0.0.1:0")), 0)
                .with_max_frame(256),
        )
        .unwrap();

        // Garbage after the handshake → Malformed, connection dropped.
        let mut c = dial_and_hello(&server);
        write_frame(&mut c, &[250, 1, 2, 3], 256).unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Malformed,
                ..
            } => {}
            other => panic!("{other:?}"),
        }

        // Oversize length prefix (plus its crc slot) → TooLarge.
        let mut c = dial_and_hello(&server);
        c.write_all(&10_000u32.to_le_bytes()).unwrap();
        c.write_all(&0u32.to_le_bytes()).unwrap();
        c.flush().unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::TooLarge,
                ..
            } => {}
            other => panic!("{other:?}"),
        }

        // A well-framed body whose bytes were damaged in flight → the
        // crc refuses it before the decoder ever sees it.
        let mut c = dial_and_hello(&server);
        let body = Frame::Query {
            id: 7,
            lane: 0,
            segment: 0,
        }
        .encode();
        c.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        c.write_all(&crc32(&body).wrapping_add(1).to_le_bytes()).unwrap();
        c.write_all(&body).unwrap();
        c.flush().unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Malformed,
                detail,
                ..
            } => assert!(detail.contains("crc"), "{detail}"),
            other => panic!("{other:?}"),
        }

        assert_eq!(server.registry().counter("snapshotd.oversize_frames").get(), 1);
        assert_eq!(server.registry().counter("snapshotd.decode_errors").get(), 1);
        assert_eq!(server.registry().counter("snapshotd.corrupt_frames").get(), 1);
        server.shutdown();
    }

    #[test]
    fn handshake_is_mandatory_and_version_checked() {
        let server = tcp_server();

        // First frame not a Hello → Unsupported.
        let mut c = server.endpoint().dial().unwrap();
        write_frame(
            &mut c,
            &Frame::StoreAck { id: 1 }.encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Unsupported,
                ..
            } => {}
            other => panic!("{other:?}"),
        }

        // Future protocol version → Unsupported.
        let mut c = server.endpoint().dial().unwrap();
        write_frame(
            &mut c,
            &Frame::Hello {
                version: 999,
                client: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::Error {
                code: ErrorCode::Unsupported,
                detail,
                ..
            } => assert!(detail.contains("999"), "{detail}"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn uds_round_trip_and_shutdown_cleans_the_socket_file() {
        let path = std::env::temp_dir().join(format!(
            "snapshot-wire-test-{}.sock",
            std::process::id()
        ));
        let server =
            ReplicaServer::spawn(ServerConfig::new(Endpoint::Uds(path.clone()), 2)).unwrap();
        let mut c = dial_and_hello(&server);
        write_frame(
            &mut c,
            &Frame::Query {
                id: 1,
                lane: 0,
                segment: 0,
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::QueryReply { id: 1, .. } => {}
            other => panic!("{other:?}"),
        }
        server.shutdown();
        assert!(!path.exists(), "socket file must be removed on shutdown");
    }

    #[test]
    fn state_log_survives_a_server_restart() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("snapshot-wire-state-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&path));

        let config = || {
            ServerConfig::new(Endpoint::Tcp(String::from("127.0.0.1:0")), 0)
                .with_state_log(path.clone())
        };
        let server = ReplicaServer::spawn(config()).unwrap();
        let mut c = dial_and_hello(&server);
        write_frame(
            &mut c,
            &Frame::Store {
                id: 1,
                lane: 0,
                segment: 1,
                tag: WireTag { seq: 9, writer: 1 },
                value: vec![8],
            }
            .encode(),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match read_one(&mut c) {
            Frame::StoreAck { id: 1 } => {}
            other => panic!("{other:?}"),
        }
        server.shutdown();
        drop(server);

        let server = ReplicaServer::spawn(config()).unwrap();
        let (tag, value) = server.store().get(0, 1).expect("state must be replayed");
        assert_eq!(tag, WireTag { seq: 9, writer: 1 });
        assert_eq!(&value[..], &[8]);
        server.shutdown();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&path));
    }

    #[test]
    fn graceful_shutdown_checkpoints_so_restart_replays_o_state() {
        let path = std::env::temp_dir().join(format!(
            "snapshot-wire-graceful-{}.log",
            std::process::id()
        ));
        let ckpt = ReplicaStore::checkpoint_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);

        let server = ReplicaServer::spawn(
            ServerConfig::new(Endpoint::Tcp(String::from("127.0.0.1:0")), 0)
                .with_state_log(path.clone()),
        )
        .unwrap();
        let store = server.store();
        for seq in 1..=50u64 {
            store.apply(
                0,
                0,
                WireTag { seq, writer: 0 },
                Arc::from(vec![seq as u8].into_boxed_slice()),
            );
        }
        server.shutdown_graceful(Duration::from_millis(200)).unwrap();
        assert!(ckpt.exists(), "graceful shutdown must leave a checkpoint");

        // The restart replays the checkpoint, not the 50-append history.
        let reloaded = ReplicaStore::open(&path).unwrap();
        assert_eq!(reloaded.recovery().checkpoint_registers, 1);
        assert_eq!(reloaded.recovery().replayed_records, 0);
        let (tag, _) = reloaded.get(0, 0).unwrap();
        assert_eq!(tag, WireTag { seq: 50, writer: 0 });
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn graceful_shutdown_does_not_wait_for_idle_connections() {
        let server = tcp_server();
        let _idle = dial_and_hello(&server);
        let started = Instant::now();
        server.shutdown_graceful(Duration::from_secs(10)).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "an idle connection must count as drained, not burn the grace"
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_severs_live_connections() {
        let server = tcp_server();
        let mut c = dial_and_hello(&server);
        server.shutdown();
        server.shutdown();
        // The connection is dead: reads see EOF/error, not a hang.
        match read_frame(&mut c, DEFAULT_MAX_FRAME) {
            Ok(FrameRead::Eof) | Err(_) => {}
            Ok(FrameRead::Frame(_)) => panic!("no frame expected after shutdown"),
        }
    }
}
