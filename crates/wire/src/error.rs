//! Typed decode failures.
//!
//! Every way a byte buffer can fail to parse has a named variant; decode
//! paths return these instead of panicking, so a corrupt frame (or a
//! hostile peer) can at worst cost one connection, never the process.

use std::fmt;

/// Typed failure of protocol decoding.
///
/// Decoding **never panics**: truncation, trailing garbage, unknown
/// discriminants, bad magic and absurd lengths each map to a variant, and
/// the robustness suite (`tests/proptest_wire.rs`) fuzzes every frame
/// type against truncation and corruption to hold that line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field or declared payload.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes that remained.
        got: usize,
    },
    /// Decoding consumed the message but bytes remain — the peer framed
    /// two messages as one, or the payload length lied.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// The frame's kind discriminant names no known frame type.
    UnknownFrameKind(
        /// The unrecognized discriminant.
        u8,
    ),
    /// An error frame carried an error-code discriminant this version
    /// does not know (it still decodes, as [`ErrorCode::Unknown`]); this
    /// variant is only produced by strict decoders that refuse it.
    ///
    /// [`ErrorCode::Unknown`]: crate::proto::ErrorCode::Unknown
    UnknownErrorCode(
        /// The unrecognized discriminant.
        u16,
    ),
    /// The handshake's magic bytes are not this protocol's.
    BadMagic(
        /// The four bytes received.
        [u8; 4],
    ),
    /// The handshake named a protocol version this build does not speak.
    UnsupportedVersion(
        /// The offered version.
        u16,
    ),
    /// A frame's body length exceeds the configured maximum (the framing
    /// layer's guard, folded into the protocol error plane).
    FrameTooLarge {
        /// Advertised length.
        len: u64,
        /// Configured cap.
        max: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A declared collection or payload length is impossible for the
    /// bytes that remain (corrupt length field caught before allocation).
    BadLength {
        /// Which field.
        field: &'static str,
        /// The declared length.
        len: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated: needed {expected} bytes, {got} remained")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::UnknownFrameKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadMagic(m) => write!(f, "bad protocol magic {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::BadLength { field, len } => {
                write!(f, "field `{field}` declares impossible length {len}")
            }
        }
    }
}

impl std::error::Error for WireError {}
