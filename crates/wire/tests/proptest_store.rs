//! Crash-recovery robustness for [`ReplicaStore`]: flip or shear *any*
//! byte of a recorded state log and reopening must never panic — it
//! either recovers (per [`RecoveryPolicy::Truncate`]) or returns a typed
//! [`StoreError::Corrupt`] naming an offset inside the file (per
//! [`RecoveryPolicy::Fail`]). Whatever survives recovery must be state
//! the store actually held: no invented registers, no invented values.
//!
//! Mirrors `proptest_wire.rs`: a seeded deterministic fuzzer first
//! (reproducible anywhere, no dev-dep needed to rerun a failure), then
//! `proptest` strategies with shrinking on top.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use snapshot_wire::{
    FsyncPolicy, RecoveryPolicy, ReplicaStore, StoreConfig, StoreError, WireTag,
};

// ---------------------------------------------------------------------
// Shared scaffolding.
// ---------------------------------------------------------------------

/// Minimal xorshift64* PRNG: reproducible fuzz without external deps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One store mutation the fuzzer will append to the log.
#[derive(Clone, Debug)]
struct Op {
    lane: u32,
    segment: u32,
    seq: u64,
    writer: u32,
    value: Vec<u8>,
}

/// A fresh, collision-free pair of log + checkpoint paths.
fn scratch_log() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "proptest-store-{}-{n}.log",
        std::process::id()
    ))
}

fn remove_store_files(log: &Path) {
    let _ = std::fs::remove_file(log);
    let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(log));
}

fn open(log: &Path, recovery: RecoveryPolicy) -> Result<ReplicaStore, StoreError> {
    ReplicaStore::open_with(
        StoreConfig::at(log.to_path_buf())
            .with_fsync(FsyncPolicy::Never)
            .with_recovery(recovery),
    )
}

/// Records a log by applying `ops` in order (checkpointing after
/// `checkpoint_after` applies, if given), then drops the store so every
/// record is flushed. Returns, per register, every (tag, value) that
/// register ever held — the universe recovery is allowed to land in.
fn record_log(
    log: &Path,
    ops: &[Op],
    checkpoint_after: Option<usize>,
) -> HashMap<(u32, u32), Vec<(WireTag, Vec<u8>)>> {
    let store = open(log, RecoveryPolicy::Fail).expect("opening a fresh store");
    let mut held: HashMap<(u32, u32), Vec<(WireTag, Vec<u8>)>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let tag = WireTag {
            seq: op.seq,
            writer: op.writer,
        };
        let value: Arc<[u8]> = op.value.clone().into();
        if store.apply(op.lane, op.segment, tag, value) {
            held.entry((op.lane, op.segment))
                .or_default()
                .push((tag, op.value.clone()));
        }
        if checkpoint_after == Some(i) {
            store.checkpoint().expect("mid-run checkpoint");
        }
    }
    store.flush(false).expect("flushing the recorded log");
    held
}

/// The core property: after mangling (one flipped byte or a shear at an
/// arbitrary offset), `Fail` never panics and errors name an in-file
/// offset; `Truncate` always opens, and every surviving register holds a
/// (tag, value) the store really held.
fn assert_recovery_contract(
    log: &Path,
    held: &HashMap<(u32, u32), Vec<(WireTag, Vec<u8>)>>,
    context: &str,
) {
    let file_len = std::fs::metadata(log).expect("mangled log exists").len();

    match open(log, RecoveryPolicy::Fail) {
        Ok(store) => drop(store),
        Err(StoreError::Corrupt { offset, .. }) => {
            assert!(
                offset <= file_len,
                "{context}: corruption offset {offset} beyond the {file_len}-byte file"
            );
        }
        Err(StoreError::Io(e)) => panic!("{context}: unexpected i/o error: {e}"),
    }

    let store = match open(log, RecoveryPolicy::Truncate) {
        Ok(store) => store,
        Err(e) => panic!("{context}: truncate-recovery must always open, got {e}"),
    };
    for (&(lane, segment), candidates) in held {
        if let Some((tag, value)) = store.get(lane, segment) {
            assert!(
                candidates
                    .iter()
                    .any(|(t, v)| *t == tag && v.as_slice() == &*value),
                "{context}: register ({lane},{segment}) recovered a (tag, value) it never \
                 held: tag={tag:?}"
            );
        }
    }
    // A truncate-recovery rewrites the damage away: reopening under the
    // strict policy must now succeed.
    drop(store);
    if let Err(e) = open(log, RecoveryPolicy::Fail) {
        panic!("{context}: log must be clean after truncate-recovery, got {e}");
    }
}

fn random_ops(rng: &mut XorShift, n: usize) -> Vec<Op> {
    (0..n)
        .map(|i| Op {
            lane: rng.below(4) as u32,
            segment: rng.below(4) as u32,
            // Mostly increasing seqs with occasional stale replays, like
            // real ABD traffic.
            seq: (i as u64 + 1).saturating_sub(rng.below(3) as u64),
            writer: rng.below(4) as u32,
            value: (0..rng.below(48)).map(|_| rng.next_u64() as u8).collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Deterministic layer.
// ---------------------------------------------------------------------

/// Unmangled logs round-trip exactly: every register recovers to the
/// max-tag application it last held.
#[test]
fn clean_reopen_recovers_the_latest_state() {
    let mut rng = XorShift::new(0x5eed);
    for case in 0..20 {
        let log = scratch_log();
        remove_store_files(&log);
        let n = 1 + rng.below(40);
        let ops = random_ops(&mut rng, n);
        let checkpoint_after = if rng.below(2) == 0 {
            Some(rng.below(ops.len()))
        } else {
            None
        };
        let held = record_log(&log, &ops, checkpoint_after);
        let store = open(&log, RecoveryPolicy::Fail).expect("clean reopen");
        for (&(lane, segment), candidates) in &held {
            let (best_tag, best_value) = candidates
                .iter()
                .max_by_key(|(t, _)| (t.seq, t.writer))
                .expect("non-empty candidate set");
            let (tag, value) = store
                .get(lane, segment)
                .unwrap_or_else(|| panic!("case {case}: register ({lane},{segment}) lost"));
            assert_eq!(tag, *best_tag, "case {case}");
            assert_eq!(&*value, best_value.as_slice(), "case {case}");
        }
        remove_store_files(&log);
    }
}

/// 300 seeded mangles — byte flips and shears at arbitrary offsets,
/// with and without a mid-run checkpoint — against the full contract.
#[test]
fn seeded_mangles_never_panic_and_never_invent_state() {
    let mut rng = XorShift::new(0xc0ffee);
    for case in 0..300 {
        let log = scratch_log();
        remove_store_files(&log);
        let n = 1 + rng.below(30);
        let ops = random_ops(&mut rng, n);
        let checkpoint_after = if rng.below(3) == 0 {
            Some(rng.below(ops.len()))
        } else {
            None
        };
        let held = record_log(&log, &ops, checkpoint_after);

        let len = std::fs::metadata(&log).expect("recorded log").len();
        if len == 0 {
            remove_store_files(&log);
            continue;
        }
        let context = format!("case {case}");
        if rng.below(2) == 0 {
            let offset = rng.below(len as usize) as u64;
            let mut bytes = std::fs::read(&log).expect("reading log");
            bytes[offset as usize] ^= 1 << rng.below(8);
            std::fs::write(&log, &bytes).expect("writing flipped log");
            assert_recovery_contract(&log, &held, &format!("{context} flip@{offset}"));
        } else {
            let cut = rng.below(len as usize) as u64;
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&log)
                .expect("opening log for shear");
            file.set_len(cut).expect("shearing log");
            drop(file);
            assert_recovery_contract(&log, &held, &format!("{context} shear@{cut}"));
        }
        remove_store_files(&log);
    }
}

// ---------------------------------------------------------------------
// Proptest layer: the same properties with shrinking on top.
// ---------------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = Op> {
    (0u32..4, 0u32..4, 1u64..64, 0u32..4, prop::collection::vec(any::<u8>(), 0..48)).prop_map(
        |(lane, segment, seq, writer, value)| Op {
            lane,
            segment,
            seq,
            writer,
            value,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Flip one arbitrary bit anywhere in an arbitrary recorded log:
    /// the recovery contract holds.
    #[test]
    fn any_flipped_bit_upholds_the_recovery_contract(
        ops in prop::collection::vec(arb_op(), 1..24),
        checkpoint in prop::option::of(any::<prop::sample::Index>()),
        offset in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let log = scratch_log();
        remove_store_files(&log);
        let checkpoint_after = checkpoint.map(|i| i.index(ops.len()));
        let held = record_log(&log, &ops, checkpoint_after);
        let mut bytes = std::fs::read(&log).expect("reading log");
        if !bytes.is_empty() {
            let at = offset.index(bytes.len());
            bytes[at] ^= 1 << bit;
            std::fs::write(&log, &bytes).expect("writing flipped log");
            assert_recovery_contract(&log, &held, &format!("flip@{at} bit {bit}"));
        }
        remove_store_files(&log);
    }

    /// Shear the log at any arbitrary offset: the recovery contract
    /// holds (a shear is always recoverable, so `Fail` must open too —
    /// covered inside the contract by the post-truncate reopen).
    #[test]
    fn any_shear_upholds_the_recovery_contract(
        ops in prop::collection::vec(arb_op(), 1..24),
        checkpoint in prop::option::of(any::<prop::sample::Index>()),
        cut in any::<prop::sample::Index>(),
    ) {
        let log = scratch_log();
        remove_store_files(&log);
        let checkpoint_after = checkpoint.map(|i| i.index(ops.len()));
        let held = record_log(&log, &ops, checkpoint_after);
        let len = std::fs::metadata(&log).expect("recorded log").len();
        if len > 0 {
            let at = cut.index(len as usize) as u64;
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&log)
                .expect("opening log for shear");
            file.set_len(at).expect("shearing log");
            drop(file);
            assert_recovery_contract(&log, &held, &format!("shear@{at}"));
        }
        remove_store_files(&log);
    }
}
