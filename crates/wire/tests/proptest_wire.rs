//! Wire-protocol robustness: round-trips for every frame type, and the
//! guarantee that arbitrary truncation, corruption, or oversize input
//! surfaces as a typed error — never a panic, never an allocation bomb.
//!
//! Two layers of generation: a seeded deterministic fuzzer (xorshift —
//! reproducible in any environment, no dev-dep needed to diagnose a
//! failure) and `proptest` strategies with shrinking on top.

use std::io::Cursor;

use proptest::prelude::*;
use snapshot_wire::{
    read_frame, write_frame, ErrorCode, Frame, FrameIoError, FrameRead, WireError, WireTag,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

// ---------------------------------------------------------------------
// Deterministic layer: a seeded xorshift fuzzer, runnable anywhere.
// ---------------------------------------------------------------------

/// Minimal xorshift64* PRNG: reproducible fuzz without external deps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// One pseudo-random frame of any variant.
fn random_frame(rng: &mut XorShift) -> Frame {
    match rng.below(7) {
        0 => Frame::Hello {
            version: rng.next_u64() as u16,
            client: rng.next_u64() as u32,
        },
        1 => Frame::HelloAck {
            version: rng.next_u64() as u16,
            replica: rng.next_u64() as u32,
        },
        2 => Frame::Query {
            id: rng.next_u64(),
            lane: rng.next_u64() as u32,
            segment: rng.next_u64() as u32,
        },
        3 => Frame::Store {
            id: rng.next_u64(),
            lane: rng.next_u64() as u32,
            segment: rng.next_u64() as u32,
            tag: WireTag {
                seq: rng.next_u64(),
                writer: rng.next_u64() as u32,
            },
            value: {
                let len = rng.below(64);
                rng.bytes(len)
            },
        },
        4 => Frame::QueryReply {
            id: rng.next_u64(),
            tag: WireTag {
                seq: rng.next_u64(),
                writer: rng.next_u64() as u32,
            },
            value: if rng.below(2) == 0 {
                None
            } else {
                let len = rng.below(64);
                Some(rng.bytes(len))
            },
        },
        5 => Frame::StoreAck { id: rng.next_u64() },
        _ => Frame::Error {
            id: rng.next_u64(),
            code: match rng.below(5) {
                0 => ErrorCode::Malformed,
                1 => ErrorCode::Unsupported,
                2 => ErrorCode::TooLarge,
                3 => ErrorCode::Internal,
                // ≥ 5: the reserved discriminants 1–4 decode back to the
                // named codes, so Unknown(3) would not round-trip.
                _ => ErrorCode::Unknown(5 + (rng.next_u64() as u16 % 1000)),
            },
            detail: {
                let len = rng.below(32);
                String::from_utf8_lossy(&rng.bytes(len)).into_owned()
            },
        },
    }
}

/// Handshake frames carry the *compiled* protocol constants on the wire:
/// decoding one generated with a different version yields a typed
/// `UnsupportedVersion`, so a round-trip assertion must pin the version.
fn round_trippable(frame: Frame) -> Frame {
    match frame {
        Frame::Hello { client, .. } => Frame::Hello {
            version: PROTOCOL_VERSION,
            client,
        },
        Frame::HelloAck { replica, .. } => Frame::HelloAck {
            version: PROTOCOL_VERSION,
            replica,
        },
        other => other,
    }
}

#[test]
fn seeded_fuzz_every_frame_round_trips() {
    let mut rng = XorShift::new(0x51AB_5EED);
    for i in 0..2000 {
        let frame = round_trippable(random_frame(&mut rng));
        let body = frame.encode();
        let decoded = Frame::decode(&body)
            .unwrap_or_else(|e| panic!("iteration {i}: {frame:?} failed decode: {e}"));
        assert_eq!(decoded, frame, "iteration {i}");
    }
}

#[test]
fn seeded_fuzz_truncation_is_a_typed_error_never_a_panic() {
    let mut rng = XorShift::new(0xDEAD_CAFE);
    for _ in 0..500 {
        let frame = round_trippable(random_frame(&mut rng));
        let body = frame.encode();
        for cut in 0..body.len() {
            // Every proper prefix must fail decode with a typed error —
            // the loop itself is the "never panics" assertion.
            assert!(
                Frame::decode(&body[..cut]).is_err(),
                "prefix {cut}/{} of {frame:?} decoded",
                body.len()
            );
        }
    }
}

#[test]
fn seeded_fuzz_corruption_never_panics() {
    let mut rng = XorShift::new(0xBAD_F00D);
    for _ in 0..500 {
        let frame = round_trippable(random_frame(&mut rng));
        let mut body = frame.encode();
        let pos = rng.below(body.len());
        let flip = (rng.next_u64() as u8) | 1; // never a zero-xor no-op
        body[pos] ^= flip;
        // A flipped byte may still decode (payload bytes are opaque);
        // what it may never do is panic or loop.
        let _ = Frame::decode(&body);
    }
}

#[test]
fn seeded_fuzz_random_garbage_never_panics() {
    let mut rng = XorShift::new(0x0DD_BA11);
    for _ in 0..2000 {
        let len = rng.below(96);
        let garbage = rng.bytes(len);
        let _ = Frame::decode(&garbage);
    }
}

#[test]
fn framing_layer_round_trips_and_rejects_oversize_on_both_sides() {
    let frame = Frame::Store {
        id: 9,
        lane: 1,
        segment: 2,
        tag: WireTag { seq: 3, writer: 4 },
        value: vec![0xAB; 4096],
    };
    let body = frame.encode();

    // Round trip through the length-prefixed framing.
    let mut wire = Vec::new();
    write_frame(&mut wire, &body, DEFAULT_MAX_FRAME).expect("write");
    let mut cursor = Cursor::new(wire.clone());
    match read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read") {
        FrameRead::Frame(read_body) => {
            assert_eq!(read_body, body);
            assert_eq!(Frame::decode(&read_body).expect("decode"), frame);
        }
        FrameRead::Eof => panic!("unexpected EOF"),
    }

    // The write path refuses before touching the stream…
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &body, 16),
        Err(FrameIoError::TooLarge { .. })
    ));
    assert!(sink.is_empty(), "oversize write must not touch the stream");

    // …and the read path refuses before allocating the body.
    let mut cursor = Cursor::new(wire);
    assert!(matches!(
        read_frame(&mut cursor, 16),
        Err(FrameIoError::TooLarge { .. })
    ));
}

#[test]
fn absurd_length_prefix_is_rejected_without_allocation() {
    // A 4GiB length prefix (plus the v2 crc slot) followed by nothing:
    // the guard must fire on the prefix alone (allocating would OOM
    // long before the read fails).
    let mut cursor = Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0]);
    assert!(matches!(
        read_frame(&mut cursor, DEFAULT_MAX_FRAME),
        Err(FrameIoError::TooLarge { len: 0xFFFF_FFFF, .. })
    ));
}

#[test]
fn unknown_frame_kind_and_bad_magic_are_typed() {
    assert!(matches!(
        Frame::decode(&[0xEE]),
        Err(WireError::UnknownFrameKind(0xEE))
    ));
    let mut hello = Frame::Hello {
        version: PROTOCOL_VERSION,
        client: 1,
    }
    .encode();
    hello[1] = b'X'; // first magic byte after the kind
    assert!(matches!(Frame::decode(&hello), Err(WireError::BadMagic(_))));
}

// ---------------------------------------------------------------------
// Proptest layer: the same properties with shrinking on top.
// ---------------------------------------------------------------------

fn arb_tag() -> impl Strategy<Value = WireTag> {
    (any::<u64>(), any::<u32>()).prop_map(|(seq, writer)| WireTag { seq, writer })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u32>().prop_map(|client| Frame::Hello {
            version: PROTOCOL_VERSION,
            client
        }),
        any::<u32>().prop_map(|replica| Frame::HelloAck {
            version: PROTOCOL_VERSION,
            replica
        }),
        (any::<u64>(), any::<u32>(), any::<u32>())
            .prop_map(|(id, lane, segment)| Frame::Query { id, lane, segment }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            arb_tag(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(id, lane, segment, tag, value)| Frame::Store {
                id,
                lane,
                segment,
                tag,
                value
            }),
        (
            any::<u64>(),
            arb_tag(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256))
        )
            .prop_map(|(id, tag, value)| Frame::QueryReply { id, tag, value }),
        any::<u64>().prop_map(|id| Frame::StoreAck { id }),
        (any::<u64>(), any::<u16>(), "[ -~]{0,48}").prop_map(|(id, code, detail)| {
            Frame::Error {
                id,
                code: match code % 5 {
                    0 => ErrorCode::Malformed,
                    1 => ErrorCode::Unsupported,
                    2 => ErrorCode::TooLarge,
                    3 => ErrorCode::Internal,
                    // ≥ 5: reserved discriminants would not round-trip.
                    _ => ErrorCode::Unknown(5 + code % 1000),
                },
                detail,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn prop_every_frame_round_trips(frame in arb_frame()) {
        let body = frame.encode();
        prop_assert_eq!(Frame::decode(&body).unwrap(), frame);
    }

    #[test]
    fn prop_truncation_always_fails_typed(frame in arb_frame(), frac in 0.0f64..1.0) {
        let body = frame.encode();
        let cut = ((body.len() as f64) * frac) as usize; // < len: frac < 1
        prop_assert!(Frame::decode(&body[..cut]).is_err());
    }

    #[test]
    fn prop_corruption_never_panics(frame in arb_frame(), pos_seed in any::<usize>(), flip in 1u8..=255) {
        let mut body = frame.encode();
        let pos = pos_seed % body.len();
        body[pos] ^= flip;
        let _ = Frame::decode(&body);
    }

    #[test]
    fn prop_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::decode(&garbage);
    }

    #[test]
    fn prop_framing_round_trips(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &body, DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = Cursor::new(wire);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(read_body) => prop_assert_eq!(read_body, body),
            FrameRead::Eof => prop_assert!(false, "unexpected EOF"),
        }
    }
}
