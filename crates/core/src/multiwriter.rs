use std::fmt;

use snapshot_obs::{Algo, Event, RoundOutcome, Trace};
use snapshot_registers::{
    collect, subset_collect, Backend, CachePadded, EpochBackend, ProcessId, Register,
    RegisterValue, SubsetOutcome, TrackedCollect,
};

use crate::api::HandleRegistry;
use crate::{MwSnapshot, MwSnapshotHandle, ScanStats, SnapshotView};

/// Sentinel for "no process": the `id` of the initial register contents.
const NO_WRITER: usize = usize::MAX;

/// Contents of value register `r_k` in Figure 4: `(value, id, toggle)`.
///
/// Unlike the single-writer algorithms, the handshake bits and views are
/// **not** written atomically with the value — they live in separate
/// single-writer registers — which is why a scanner must see a process
/// move *three* times before borrowing its view.
#[derive(Clone)]
struct MwRecord<V> {
    value: V,
    id: usize,
    toggle: bool,
}

/// Which retry edge the scan loop takes — the one place where the
/// technical-memo pseudocode of Figure 4 is ambiguous.
///
/// The scanned text of Figure 4 says `goto line 1` (retry the collects
/// *without* refreshing the handshake bits), while the bounded
/// single-writer algorithm of Figure 3 retries from its handshake step.
/// Re-reading the proof of Lemma 5.2 shows the handshake must be
/// refreshed: with `goto line 1` a **single** handshake flip by a stalled
/// updater is blamed on every subsequent iteration, three blames accrue
/// from one incomplete update, and the scanner borrows a view that may
/// predate its own interval — a genuine linearizability violation, which
/// the model-checking experiment `E5b` reproduces mechanically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MwVariant {
    /// Retry from the handshake step (the reading consistent with
    /// Lemma 5.2; default).
    #[default]
    RescanHandshake,
    /// Retry from the first collect, exactly as the scanned pseudocode
    /// reads. **Incorrect** — kept for the reproduction's ablation
    /// experiment, where the linearizability checker catches it.
    LiteralGoto1,
}

/// The **bounded multi-writer** snapshot of Section 5 (Figure 4): `n`
/// processes, `m` memory words, any process may update any word.
///
/// Value registers are `n`-writer, `n`-reader atomic registers carrying
/// `(value, id, toggle)`; handshake bits `p_{i,j}`/`q_{i,j}` and the
/// borrowed-view registers `view_i` are single-writer. Because an update
/// writes its handshake bits, its view and the value register in three
/// *separate* atomic writes, one update can be observed changing state
/// twice; a scanner therefore borrows a view only from a process seen
/// moving **three** times. By pigeonhole a scan completes within `2n + 1`
/// double collects: wait-free, `O(n²)` register operations per operation.
///
/// The multi-writer registers may themselves be implemented from
/// single-writer ones ([`CompoundBackend`]), which yields the compound
/// `O(n³)` single-writer cost of Section 6.
///
/// [`CompoundBackend`]: snapshot_registers::CompoundBackend
///
/// # Example
///
/// ```
/// use snapshot_core::{MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle};
/// use snapshot_registers::ProcessId;
///
/// // 2 processes sharing 3 words.
/// let snap = MultiWriterSnapshot::new(2, 3, 0u32);
/// let mut h0 = snap.handle(ProcessId::new(0));
/// h0.update(2, 77); // any process may write any word
/// assert_eq!(h0.scan().to_vec(), vec![0, 0, 77]);
/// ```
pub struct MultiWriterSnapshot<V: RegisterValue, B: Backend = EpochBackend, BM: Backend = B> {
    /// The `m` multi-writer value registers `r_k` (padded: dense array of
    /// independently-hammered words).
    vals: Box<[CachePadded<BM::Cell<MwRecord<V>>>]>,
    /// `view_i`: single-writer registers holding each process's last
    /// embedded-scan result (padded: one per process).
    views: Box<[CachePadded<B::Cell<SnapshotView<V>>>]>,
    /// `p[i][j]`: written by updates of `P_i`, read by scans of `P_j`.
    /// Rows padded — row `i` has a single writer.
    p: Box<[CachePadded<Box<[B::Bit]>>]>,
    /// `q[i][j]`: written by scans of `P_i`, read by updates of `P_j`.
    q: Box<[CachePadded<Box<[B::Bit]>>]>,
    /// Per-process saved toggle arrays `t_k`, persisted across handle
    /// claims: every write by the same process to the same word must flip
    /// the toggle, even across a drop/re-claim of the handle.
    saved_toggles: Box<[CachePadded<parking_lot::Mutex<Vec<bool>>>]>,
    registry: HandleRegistry,
    variant: MwVariant,
    n: usize,
    m: usize,
    trace: Trace,
    incremental: bool,
}

impl<V: RegisterValue> MultiWriterSnapshot<V, EpochBackend, EpochBackend> {
    /// Creates the object for `n` processes over `m` words on the default
    /// lock-free register backend, every word holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    pub fn new(n: usize, m: usize, init: V) -> Self {
        let backend = EpochBackend::new();
        Self::with_options(n, m, init, &backend, &backend, MwVariant::default())
    }
}

impl<V: RegisterValue, B: Backend> MultiWriterSnapshot<V, B, B> {
    /// Creates the object with one backend for both the single-writer and
    /// multi-writer registers.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    pub fn with_backend(n: usize, m: usize, init: V, backend: &B) -> Self {
        Self::with_options(n, m, init, backend, backend, MwVariant::default())
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> MultiWriterSnapshot<V, B, BM> {
    /// Full-control constructor: separate backends for the single-writer
    /// parts (handshake bits, views) and the multi-writer value registers,
    /// plus the scan-retry [`MwVariant`].
    ///
    /// Passing a [`CompoundBackend`] as `mwmr` yields the paper's Section 6
    /// compound construction.
    ///
    /// [`CompoundBackend`]: snapshot_registers::CompoundBackend
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    pub fn with_options(
        n: usize,
        m: usize,
        init: V,
        swmr: &B,
        mwmr: &BM,
        variant: MwVariant,
    ) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        assert!(m > 0, "a multi-writer snapshot needs at least one word");
        let initial_view = SnapshotView::from(vec![init.clone(); m]);
        MultiWriterSnapshot {
            vals: (0..m)
                .map(|_| {
                    CachePadded::new(mwmr.cell(MwRecord {
                        value: init.clone(),
                        id: NO_WRITER,
                        toggle: false,
                    }))
                })
                .collect(),
            views: (0..n)
                .map(|_| CachePadded::new(swmr.cell(initial_view.clone())))
                .collect(),
            p: (0..n)
                .map(|_| CachePadded::new((0..n).map(|_| swmr.bit(false)).collect()))
                .collect(),
            q: (0..n)
                .map(|_| CachePadded::new((0..n).map(|_| swmr.bit(false)).collect()))
                .collect(),
            saved_toggles: (0..n)
                .map(|_| CachePadded::new(parking_lot::Mutex::new(vec![false; m])))
                .collect(),
            registry: HandleRegistry::new(n),
            variant,
            n,
            m,
            trace: Trace::disabled(),
            incremental: true,
        }
    }

    /// Enables or disables the incremental collect path (default: on).
    ///
    /// Same Figure 4 algorithm, same three-strike blame accounting; the
    /// incremental path caches value records across collects (see
    /// [`TrackedCollect`]), trusting `(id, toggle)` keys only within a
    /// double collect (Lemma 5.1's window) and version probes everywhere.
    #[must_use]
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Routes this object's typed events (scan/update spans, double-collect
    /// rounds, handshake and toggle transitions, borrow decisions) into
    /// `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The scan-retry variant this object was built with.
    pub fn variant(&self) -> MwVariant {
        self.variant
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> MwSnapshot<V> for MultiWriterSnapshot<V, B, BM> {
    type Handle<'a>
        = MultiWriterHandle<'a, V, B, BM>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn words(&self) -> usize {
        self.m
    }

    fn handle(&self, pid: ProcessId) -> MultiWriterHandle<'_, V, B, BM> {
        self.registry.claim(pid);
        let toggles = self.saved_toggles[pid.get()].lock().clone();
        MultiWriterHandle {
            shared: self,
            pid,
            toggles,
            cache: TrackedCollect::new(),
        }
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> fmt::Debug for MultiWriterSnapshot<V, B, BM> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiWriterSnapshot")
            .field("processes", &self.n)
            .field("words", &self.m)
            .field("variant", &self.variant)
            .finish()
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> crate::SnapshotCore<V>
    for MultiWriterSnapshot<V, B, BM>
{
    fn segments(&self) -> usize {
        self.m
    }

    fn lanes(&self) -> usize {
        self.n
    }

    fn single_writer(&self) -> bool {
        false
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.handle(lane).scan_with_stats()
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        self.handle(lane).update_with_stats(segment, value)
    }

    /// Figure 4's value records carry `(id, toggle)` — `2n` distinct keys
    /// that recur under ABA, not a per-write-unique certificate.
    /// Per-segment certification therefore needs the *register backend's*
    /// version filter (see [`core_scan_subset`]); a single logical read
    /// has nothing ABA-free to return.
    ///
    /// [`core_scan_subset`]: crate::SnapshotCore::core_scan_subset
    fn certified_read(&self, _reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        assert!(segment < self.m, "segment {segment} out of range");
        None
    }

    /// Version-filtered subset collect over the requested value words.
    ///
    /// Figure 4's update linearizes at its single `vals[word]` write (the
    /// handshake/view writes around it are helping metadata, invisible to
    /// readers of the word), so a window over which a word's register
    /// provably took no write is a window over which the *segment* did
    /// not change. [`subset_collect`] builds exactly that proof from
    /// [`Register::version_hint`] probes: when a probe pass matches the
    /// previous pass everywhere, the previous pass's records were all
    /// current at the instant between the two passes — an instantaneous
    /// picture of the subset at `O(k)` cost.
    ///
    /// Unlike the single-writer constructions there is no helping
    /// discipline to finish against sustained subset writes (a view
    /// borrow needs the full three-blame protocol over all words), so
    /// this path is **bounded, not wait-free**: after a few contended
    /// rounds it returns `None` and the caller falls back to the
    /// projected full scan, whose termination Lemma 5.2 proves. Hintless
    /// backends (mutex cells, gated simulation) also return `None`.
    fn core_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Option<(Vec<V>, ScanStats)> {
        debug_assert!(!segments.is_empty(), "canonical subsets are non-empty");
        debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        debug_assert!(segments.iter().all(|&s| s < self.m), "segment out of range");
        // Interference budget: enough rounds to ride out a burst, small
        // enough that the fallback's O(n·m) bound still dominates cost.
        const MAX_ROUNDS: u32 = 4;
        let _lane = self.registry.claim_guard(lane);
        let slots: Vec<&BM::Cell<MwRecord<V>>> =
            segments.iter().map(|&w| &*self.vals[w]).collect();
        match subset_collect(lane, &slots, MAX_ROUNDS) {
            SubsetOutcome::Clean { records, rounds, reads } => Some((
                records.into_iter().map(|r| r.value).collect(),
                ScanStats { double_collects: rounds, borrowed: false, reads, writes: 0 },
            )),
            SubsetOutcome::Unsupported | SubsetOutcome::Contended { .. } => None,
        }
    }
}

/// Process-local state for [`MultiWriterSnapshot`]: the per-word toggle
/// bits `t_k` of Figure 4 (saved between updates).
pub struct MultiWriterHandle<'a, V: RegisterValue, B: Backend, BM: Backend> {
    shared: &'a MultiWriterSnapshot<V, B, BM>,
    pid: ProcessId,
    toggles: Vec<bool>,
    /// Scanner-local value-record cache for the incremental collect path.
    cache: TrackedCollect<MwRecord<V>>,
}

impl<V: RegisterValue, B: Backend, BM: Backend> MultiWriterHandle<'_, V, B, BM> {
    /// `procedure scan_i` of Figure 4.
    fn scan_inner(&mut self) -> (SnapshotView<V>, ScanStats) {
        if self.shared.incremental {
            self.scan_inner_incremental()
        } else {
            self.scan_inner_full()
        }
    }

    /// The literal Figure 4 loop: two fresh full collects per round.
    fn scan_inner_full(&self) -> (SnapshotView<V>, ScanStats) {
        let shared = self.shared;
        let (n, m) = (shared.n, shared.m);
        let i = self.pid.get();
        let trace = &shared.trace;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        let mut q_local = vec![false; n];

        let handshake = |q_local: &mut [bool], stats: &mut ScanStats| {
            // Line 0.5: q_{i,j} := p_{j,i}.
            for j in 0..n {
                q_local[j] = shared.p[j][i].read(self.pid);
                shared.q[i][j].write(self.pid, q_local[j]);
                stats.reads += 1;
                stats.writes += 1;
                trace.emit(i, Event::HandshakeCopy { partner: j, bit: q_local[j] });
            }
        };

        handshake(&mut q_local, &mut stats);
        loop {
            trace.emit(
                i,
                Event::RoundStart { algo: Algo::MultiWriter, round: stats.double_collects + 1 },
            );
            let a = collect(self.pid, &shared.vals); // line 1
            let b = collect(self.pid, &shared.vals); // line 2
                                                     // Line 2.5: h := collect(p_{j,i}).
            let h: Vec<bool> = (0..n).map(|j| shared.p[j][i].read(self.pid)).collect();
            stats.double_collects += 1;
            stats.reads += 2 * m as u64 + n as u64;
            debug_assert!(
                stats.double_collects as usize <= 2 * n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            // Line 3: nobody moved.
            let handshakes_clean = (0..n).all(|j| q_local[j] == h[j]);
            let values_clean = (0..m).all(|k| a[k].id == b[k].id && a[k].toggle == b[k].toggle);
            if handshakes_clean && values_clean {
                trace.emit(
                    i,
                    Event::RoundEnd {
                        algo: Algo::MultiWriter,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return (SnapshotView::from(values), stats); // line 4
            }
            trace.emit(
                i,
                Event::RoundEnd {
                    algo: Algo::MultiWriter,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                // Line 6: P_j moved — its handshake bit toward us flipped,
                // or a word it last wrote changed under our double collect.
                let hs_moved = q_local[j] != h[j];
                let val_moved = (0..m)
                    .any(|k| b[k].id == j && (a[k].id != b[k].id || a[k].toggle != b[k].toggle));
                if hs_moved || val_moved {
                    if moved[j] == 2 {
                        // Line 7-8: moved twice before — its second
                        // complete update's embedded scan ran inside our
                        // interval; borrow its published view.
                        stats.borrowed = true;
                        stats.reads += 1;
                        trace.emit(i, Event::BorrowDecision { lender: j, moved: 3 });
                        return (shared.views[j].read(self.pid), stats);
                    }
                    moved[j] += 1; // line 9
                }
            }
            // Line 10: the retry edge — see `MwVariant`.
            if shared.variant == MwVariant::RescanHandshake {
                handshake(&mut q_local, &mut stats);
            }
        }
    }

    /// Figure 4 over the handle's value-record cache.
    ///
    /// Handshake bits and the `h` collect are always read fresh — the
    /// bits *are* the movement signal and are never cached. Value-record
    /// keys `(id, toggle)` are trusted only on the second collect of a
    /// round (Lemma 5.1's window); in any wider window two completed
    /// updates can restore a word's key, so only a version probe may
    /// substitute for the read. The blame test `b[k].id == j ∧ (a[k] ≠
    /// b[k] keys)` becomes `changed_b[k] ∧ records[k].id == j`: after the
    /// second collect the cache holds exactly the `b` records (`id` is
    /// part of the key, so even a key-reused slot has `b`'s id).
    fn scan_inner_incremental(&mut self) -> (SnapshotView<V>, ScanStats) {
        let shared = self.shared;
        let (n, m) = (shared.n, shared.m);
        let i = self.pid.get();
        let pid = self.pid;
        let trace = &shared.trace;
        let same = |a: &MwRecord<V>, b: &MwRecord<V>| a.id == b.id && a.toggle == b.toggle;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        let mut q_local = vec![false; n];

        let handshake = |q_local: &mut [bool], stats: &mut ScanStats| {
            // Line 0.5: q_{i,j} := p_{j,i}.
            for j in 0..n {
                q_local[j] = shared.p[j][i].read(pid);
                shared.q[i][j].write(pid, q_local[j]);
                stats.reads += 1;
                stats.writes += 1;
                trace.emit(i, Event::HandshakeCopy { partner: j, bit: q_local[j] });
            }
        };

        handshake(&mut q_local, &mut stats);
        loop {
            trace.emit(
                i,
                Event::RoundStart { algo: Algo::MultiWriter, round: stats.double_collects + 1 },
            );
            // Line 1 — collect a: keys untrusted outside the double collect.
            let _ = self.cache.advance(pid, &shared.vals, false, same);
            // Line 2 — collect b: key comparison is the paper's own test.
            let pass_b = self.cache.advance(pid, &shared.vals, true, same);
            // Line 2.5: h := collect(p_{j,i}).
            let h: Vec<bool> = (0..n).map(|j| shared.p[j][i].read(pid)).collect();
            stats.double_collects += 1;
            stats.reads += 2 * m as u64 + n as u64;
            debug_assert!(
                stats.double_collects as usize <= 2 * n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            let handshakes_clean = (0..n).all(|j| q_local[j] == h[j]);
            if handshakes_clean && pass_b.clean() {
                trace.emit(
                    i,
                    Event::RoundEnd {
                        algo: Algo::MultiWriter,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values: Vec<V> =
                    self.cache.records().iter().map(|r| r.value.clone()).collect();
                return (SnapshotView::from(values), stats); // line 4
            }
            trace.emit(
                i,
                Event::RoundEnd {
                    algo: Algo::MultiWriter,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                let hs_moved = q_local[j] != h[j];
                let val_moved =
                    (0..m).any(|k| pass_b.changed[k] && self.cache.records()[k].id == j);
                if hs_moved || val_moved {
                    if moved[j] == 2 {
                        stats.borrowed = true;
                        stats.reads += 1;
                        trace.emit(i, Event::BorrowDecision { lender: j, moved: 3 });
                        return (shared.views[j].read(pid), stats);
                    }
                    moved[j] += 1; // line 9
                }
            }
            // Line 10: the retry edge — see `MwVariant`.
            if shared.variant == MwVariant::RescanHandshake {
                handshake(&mut q_local, &mut stats);
            }
        }
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> MwSnapshotHandle<V>
    for MultiWriterHandle<'_, V, B, BM>
{
    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `procedure update_i(k, value)` of Figure 4.
    ///
    /// # Panics
    ///
    /// Panics if `word >= m`.
    fn update_with_stats(&mut self, word: usize, value: V) -> ScanStats {
        let shared = self.shared;
        assert!(
            word < shared.m,
            "word {word} out of range (object has {} words)",
            shared.m
        );
        let i = self.pid.get();
        let trace = &shared.trace;
        trace.emit(i, Event::UpdateBegin { algo: Algo::MultiWriter });
        // Line 0: p_{i,j} := ¬q_{j,i} — announce movement to every scanner.
        let mut extra = ScanStats::default();
        for j in 0..shared.n {
            let qji = shared.q[j][i].read(self.pid);
            shared.p[i][j].write(self.pid, !qji);
            extra.reads += 1;
            extra.writes += 1;
            trace.emit(i, Event::HandshakeFlip { partner: j, bit: !qji });
        }
        // Line 1: view_i := scan_i (embedded scan, published separately).
        let (view, mut stats) = self.scan_inner();
        shared.views[i].write(self.pid, view);
        // Lines 1.5-2: flip the word's local toggle, write the value
        // register.
        self.toggles[word] = !self.toggles[word];
        trace.emit(i, Event::ToggleFlip { word, toggle: self.toggles[word] });
        shared.vals[word].write(
            self.pid,
            MwRecord {
                value,
                id: i,
                toggle: self.toggles[word],
            },
        );
        stats.reads += extra.reads;
        stats.writes += extra.writes + 2; // the view and value publications
        trace.emit(
            i,
            Event::UpdateEnd { algo: Algo::MultiWriter, double_collects: stats.double_collects },
        );
        stats
    }

    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let i = self.pid.get();
        let trace = &self.shared.trace;
        trace.emit(i, Event::ScanBegin { algo: Algo::MultiWriter });
        let (view, stats) = self.scan_inner();
        trace.emit(
            i,
            Event::ScanEnd {
                algo: Algo::MultiWriter,
                double_collects: stats.double_collects,
                borrowed: stats.borrowed,
            },
        );
        (view, stats)
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> Drop for MultiWriterHandle<'_, V, B, BM> {
    fn drop(&mut self) {
        *self.shared.saved_toggles[self.pid.get()].lock() = std::mem::take(&mut self.toggles);
        self.shared.registry.release(self.pid);
    }
}

impl<V: RegisterValue, B: Backend, BM: Backend> fmt::Debug for MultiWriterHandle<'_, V, B, BM> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiWriterHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_scan_returns_init_everywhere() {
        let snap = MultiWriterSnapshot::new(2, 4, 0u32);
        let mut h = snap.handle(ProcessId::new(0));
        assert_eq!(h.scan().to_vec(), vec![0; 4]);
    }

    #[test]
    fn any_process_writes_any_word() {
        let snap = MultiWriterSnapshot::new(3, 2, 0u32);
        let mut h2 = snap.handle(ProcessId::new(2));
        h2.update(0, 10);
        h2.update(1, 20);
        let mut h0 = snap.handle(ProcessId::new(0));
        h0.update(0, 11);
        assert_eq!(h0.scan().to_vec(), vec![11, 20]);
    }

    #[test]
    fn same_word_alternating_writers() {
        let snap = MultiWriterSnapshot::new(2, 1, 0u8);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        for k in 0..6 {
            if k % 2 == 0 {
                h0.update(0, k);
            } else {
                h1.update(0, k);
            }
            assert_eq!(h0.scan().to_vec(), vec![k]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let snap = MultiWriterSnapshot::new(1, 1, 0u8);
        let mut h = snap.handle(ProcessId::new(0));
        h.update(1, 9);
    }

    #[test]
    fn quiescent_scan_needs_exactly_one_double_collect() {
        let snap = MultiWriterSnapshot::new(3, 5, 0u8);
        let mut h = snap.handle(ProcessId::new(1));
        let (_, stats) = h.scan_with_stats();
        assert_eq!(stats.double_collects, 1);
        assert!(!stats.borrowed);
    }

    #[test]
    fn variant_is_recorded() {
        let backend = EpochBackend::new();
        let snap: MultiWriterSnapshot<u8, _, _> =
            MultiWriterSnapshot::with_options(1, 1, 0, &backend, &backend, MwVariant::LiteralGoto1);
        assert_eq!(snap.variant(), MwVariant::LiteralGoto1);
    }

    #[test]
    fn incremental_and_full_paths_agree_operation_for_operation() {
        let backend = EpochBackend::new();
        let inc = MultiWriterSnapshot::with_backend(2, 3, 0u32, &backend).with_incremental(true);
        let full = MultiWriterSnapshot::with_backend(2, 3, 0u32, &backend).with_incremental(false);
        let mut hi = inc.handle(ProcessId::new(0));
        let mut hf = full.handle(ProcessId::new(0));
        for k in 1..=20u32 {
            let word = (k as usize) % 3;
            assert_eq!(hi.update_with_stats(word, k), hf.update_with_stats(word, k));
            let (vi, si) = hi.scan_with_stats();
            let (vf, sf) = hf.scan_with_stats();
            assert_eq!(vi.to_vec(), vf.to_vec());
            assert_eq!(si, sf);
        }
    }

    #[test]
    fn borrowed_view_is_the_lender_published_allocation() {
        // The multi-writer S3 check: the view a three-strike borrow
        // returns is the very allocation the lender published to its
        // `view_i` register — an Arc alias, not a structural copy. The
        // updater body inlines Figure 4's update so it can log the exact
        // Arc before the gated publication write.
        use parking_lot::Mutex;
        use snapshot_sim::{RoundRobinPolicy, Sim, SimConfig};

        let (n, m) = (2usize, 2usize);
        let sim = Sim::new(n);
        let backend = snapshot_registers::Instrumented::new(EpochBackend::new())
            .with_gate(sim.gate());
        let object = MultiWriterSnapshot::with_backend(n, m, 0u64, &backend);
        let published: Mutex<Vec<SnapshotView<u64>>> = Mutex::new(Vec::new());
        let borrowed: Mutex<Option<SnapshotView<u64>>> = Mutex::new(None);

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        {
            let object = &object;
            let published = &published;
            bodies.push(Box::new(move || {
                let p0 = ProcessId::new(0);
                let mut h = object.handle(p0);
                let mut toggle = false;
                for k in 1..=1000u64 {
                    // Line 0: p_{0,j} := ¬q_{j,0}.
                    for j in 0..n {
                        let qj0 = object.q[j][0].read(p0);
                        object.p[0][j].write(p0, !qj0);
                    }
                    let (view, _) = h.scan_with_stats(); // line 1: embedded scan
                    published.lock().push(view.clone()); // log the Arc itself
                    object.views[0].write(p0, view);
                    toggle = !toggle;
                    object.vals[0].write(p0, MwRecord { value: k, id: 0, toggle }); // line 2
                }
            }));
        }
        {
            let object = &object;
            let borrowed = &borrowed;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(1));
                for _ in 0..50 {
                    let (view, stats) = h.scan_with_stats();
                    if stats.borrowed {
                        *borrowed.lock() = Some(view);
                        break;
                    }
                }
            }));
        }
        sim.run(
            &mut RoundRobinPolicy::new(),
            SimConfig {
                max_steps: Some(2_000_000),
                stop_when_done: vec![ProcessId::new(1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");

        let view = borrowed.into_inner().expect("round-robin starves the scanner into borrowing");
        let log = published.into_inner();
        assert!(
            log.iter().any(|v| std::ptr::eq(v.as_slice().as_ptr(), view.as_slice().as_ptr())),
            "borrowed view must alias one of the {} published allocations",
            log.len()
        );
    }

    #[test]
    fn threaded_smoke_words_monotone_per_writer() {
        // Each word is written by a dedicated process with increasing
        // values, so scanned words must be monotone.
        let snap = MultiWriterSnapshot::new(4, 4, 0u64);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let snap = &snap;
                s.spawn(move || {
                    let mut h = snap.handle(ProcessId::new(i));
                    let mut last_seen = vec![0u64; 4];
                    for k in 1..=120u64 {
                        h.update(i, k);
                        let view = h.scan();
                        for (w, &v) in view.iter().enumerate() {
                            assert!(v >= last_seen[w], "word {w} went backwards");
                            last_seen[w] = v;
                        }
                        assert_eq!(view[i], k);
                    }
                });
            }
        });
    }
}
