use std::fmt;

use snapshot_registers::ProcessId;

use crate::SnapshotView;

/// Per-scan execution statistics, exposing exactly the quantities the
/// paper's wait-freedom proofs bound.
///
/// Marked `#[must_use]`: if you call a `_with_stats` method, dropping the
/// stats silently is almost always a test that forgot to assert.
#[must_use]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Number of double collects executed (loop iterations). The paper's
    /// pigeonhole arguments bound this by `n + 1` for the single-writer
    /// algorithms (Lemma 3.4 / 4.4) and `2n + 1` for the multi-writer one
    /// (Section 5). The non-wait-free [`DoubleCollectSnapshot`] has no
    /// bound — that is Observation 2's whole point.
    ///
    /// [`DoubleCollectSnapshot`]: crate::DoubleCollectSnapshot
    pub double_collects: u32,
    /// True if the scan returned a *borrowed* view (written by an updater
    /// observed to move twice / three times) rather than its own
    /// successful double collect.
    pub borrowed: bool,
    /// Primitive register reads the operation issued (collects, handshake
    /// reads, borrowed-view reads). Counted at the algorithm level, so the
    /// totals are exact for the deterministic constructions and can be
    /// cross-checked against [`OpCounters`].
    ///
    /// [`OpCounters`]: snapshot_registers::OpCounters
    pub reads: u64,
    /// Primitive register writes the operation issued (handshake writes
    /// and value/view publications). The lock-based baseline, which uses
    /// no primitive registers, reports zero.
    pub writes: u64,
}

/// A single-writer atomic snapshot object shared by `n` processes.
///
/// Each process obtains a [handle](SwSnapshot::handle) carrying its
/// process-local algorithm state; handles are meant to live on the
/// process's own thread.
pub trait SwSnapshot<V>: Send + Sync {
    /// The per-process handle type.
    type Handle<'a>: SwSnapshotHandle<V> + Send
    where
        Self: 'a;

    /// Number of participating processes (= memory segments).
    fn processes(&self) -> usize;

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or its handle is already claimed
    /// (each process's local state must be unique).
    fn handle(&self, pid: ProcessId) -> Self::Handle<'_>;
}

/// A process's interface to a single-writer snapshot object.
pub trait SwSnapshotHandle<V> {
    /// The process this handle belongs to.
    fn pid(&self) -> ProcessId;

    /// Writes `value` to this process's segment (the paper's
    /// `update_i(value)`), atomically with respect to all scans.
    fn update(&mut self, value: V) {
        let _ = self.update_with_stats(value);
    }

    /// Like [`update`](Self::update), also reporting the statistics of
    /// the *embedded scan* (Figure 2/3 updates scan before writing).
    /// Baselines without an embedded scan report zeros.
    #[must_use]
    fn update_with_stats(&mut self, value: V) -> ScanStats;

    /// Returns an instantaneous view of all segments (the paper's
    /// `scan_i`).
    fn scan(&mut self) -> SnapshotView<V> {
        self.scan_with_stats().0
    }

    /// Like [`scan`](Self::scan), also reporting how hard the scan had to
    /// work.
    #[must_use]
    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats);
}

/// A multi-writer atomic snapshot object: `n` processes over `m` words,
/// any process may update any word (Section 5).
pub trait MwSnapshot<V>: Send + Sync {
    /// The per-process handle type.
    type Handle<'a>: MwSnapshotHandle<V> + Send
    where
        Self: 'a;

    /// Number of participating processes.
    fn processes(&self) -> usize;

    /// Number of memory words.
    fn words(&self) -> usize;

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or its handle is already claimed.
    fn handle(&self, pid: ProcessId) -> Self::Handle<'_>;
}

/// A process's interface to a multi-writer snapshot object.
pub trait MwSnapshotHandle<V> {
    /// The process this handle belongs to.
    fn pid(&self) -> ProcessId;

    /// Writes `value` to memory word `word` (the paper's
    /// `update_i(k, value)`).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    fn update(&mut self, word: usize, value: V) {
        let _ = self.update_with_stats(word, value);
    }

    /// Like [`update`](Self::update), also reporting the embedded scan's
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    fn update_with_stats(&mut self, word: usize, value: V) -> ScanStats;

    /// Returns an instantaneous view of all `m` words.
    fn scan(&mut self) -> SnapshotView<V> {
        self.scan_with_stats().0
    }

    /// Like [`scan`](Self::scan), also reporting per-scan statistics.
    #[must_use]
    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats);
}

/// Guards exclusive ownership of per-process handles: a cell of `n` flags,
/// one per process, claimed on `handle()` and released when the handle
/// drops.
pub(crate) struct HandleRegistry {
    taken: Box<[std::sync::atomic::AtomicBool]>,
}

impl HandleRegistry {
    pub(crate) fn new(n: usize) -> Self {
        HandleRegistry {
            taken: (0..n)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        }
    }

    /// Claims `pid`'s slot; panics on double-claim or out-of-range pid.
    pub(crate) fn claim(&self, pid: ProcessId) {
        assert!(
            pid.get() < self.taken.len(),
            "process {pid} out of range (object has {} processes)",
            self.taken.len()
        );
        let was = self.taken[pid.get()].swap(true, std::sync::atomic::Ordering::AcqRel);
        assert!(!was, "handle for {pid} already claimed");
    }

    pub(crate) fn release(&self, pid: ProcessId) {
        self.taken[pid.get()].store(false, std::sync::atomic::Ordering::Release);
    }

    /// Claims `pid`'s slot for the lifetime of the returned guard —
    /// the panic-safe transient claim the `core_scan_subset` paths use
    /// instead of constructing a full per-process handle.
    pub(crate) fn claim_guard(&self, pid: ProcessId) -> LaneClaim<'_> {
        self.claim(pid);
        LaneClaim { registry: self, pid }
    }
}

/// RAII lane claim: releases the slot on drop, even on unwind.
pub(crate) struct LaneClaim<'a> {
    registry: &'a HandleRegistry,
    pid: ProcessId,
}

impl Drop for LaneClaim<'_> {
    fn drop(&mut self) {
        self.registry.release(self.pid);
    }
}

impl fmt::Debug for HandleRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleRegistry")
            .field("processes", &self.taken.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enforces_exclusive_claims() {
        let reg = HandleRegistry::new(2);
        reg.claim(ProcessId::new(0));
        reg.claim(ProcessId::new(1));
        reg.release(ProcessId::new(0));
        reg.claim(ProcessId::new(0)); // re-claim after release is fine
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let reg = HandleRegistry::new(1);
        reg.claim(ProcessId::new(0));
        reg.claim(ProcessId::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_claim_panics() {
        let reg = HandleRegistry::new(1);
        reg.claim(ProcessId::new(1));
    }
}
