use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable snapshot of the whole memory, as returned by `scan`.
///
/// Internally an `Arc<[V]>`: cheap to clone, which matters because the
/// constructions *store views inside registers* (the borrowed-view trick of
/// Observation 2) — an update embeds its scan's result in its register so
/// that starving scanners can return it.
///
/// Dereferences to `[V]`.
///
/// # Example
///
/// ```
/// use snapshot_core::SnapshotView;
///
/// let view = SnapshotView::from(vec![1, 2, 3]);
/// assert_eq!(view[1], 2);
/// assert_eq!(view.len(), 3);
/// assert_eq!(view.to_vec(), vec![1, 2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SnapshotView<V> {
    values: Arc<[V]>,
}

impl<V> SnapshotView<V> {
    /// The memory contents as a slice.
    pub fn as_slice(&self) -> &[V] {
        &self.values
    }

    /// Number of memory segments in the view.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-segment view (only possible for degenerate
    /// configurations).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<V: Clone> SnapshotView<V> {
    /// Copies the view into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<V> {
        self.values.to_vec()
    }
}

impl<V> Deref for SnapshotView<V> {
    type Target = [V];

    fn deref(&self) -> &[V] {
        &self.values
    }
}

impl<V> From<Vec<V>> for SnapshotView<V> {
    fn from(values: Vec<V>) -> Self {
        SnapshotView {
            values: values.into(),
        }
    }
}

impl<V> From<Arc<[V]>> for SnapshotView<V> {
    fn from(values: Arc<[V]>) -> Self {
        SnapshotView { values }
    }
}

impl<V: fmt::Debug> fmt::Debug for SnapshotView<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl<'a, V> IntoIterator for &'a SnapshotView<V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_indexes() {
        let v = SnapshotView::from(vec!["a", "b"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], "a");
        assert_eq!(v.as_slice(), &["a", "b"]);
        assert!(!v.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let v = SnapshotView::from(vec![1u8; 1024]);
        let w = v.clone();
        assert!(std::ptr::eq(v.as_slice().as_ptr(), w.as_slice().as_ptr()));
        assert_eq!(v, w);
    }

    #[test]
    fn iterates_in_order() {
        let v = SnapshotView::from(vec![3, 1, 4]);
        let collected: Vec<i32> = (&v).into_iter().copied().collect();
        assert_eq!(collected, vec![3, 1, 4]);
    }
}
