use std::fmt;

use snapshot_obs::{Algo, Event, RoundOutcome, Trace};
use snapshot_registers::{collect, Backend, EpochBackend, ProcessId, Register, RegisterValue};

use crate::api::HandleRegistry;
use crate::{ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle};

/// Contents of register `r_i` in Figure 2: `(value, seq, view)` written in
/// one atomic register write.
#[derive(Clone)]
struct UnbRecord<V> {
    value: V,
    seq: u64,
    view: SnapshotView<V>,
}

/// The **unbounded single-writer** snapshot of Section 3 (Figure 2).
///
/// Each process owns one single-writer register holding `(value, seq,
/// view)`. A scan repeats *double collects* until either
///
/// * two consecutive collects return identical sequence numbers everywhere
///   — by Observation 1 the second collect is a snapshot — or
/// * some process is observed to move **twice**, in which case that
///   process completed an entire update (with its embedded scan) inside
///   this scan's interval, and its written `view` is *borrowed*
///   (Observation 2).
///
/// By the pigeonhole principle a scan finishes within `n + 1` double
/// collects: wait-free, `O(n²)` register operations (Lemma 3.4). An update
/// performs an embedded scan and one register write.
///
/// "Unbounded" refers to the integer sequence numbers; the
/// [`BoundedSnapshot`](crate::BoundedSnapshot) replaces them with
/// handshake bits.
///
/// # Example
///
/// ```
/// use snapshot_core::{SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
/// use snapshot_registers::ProcessId;
///
/// let snap = UnboundedSnapshot::new(2, 0u32);
/// let mut h0 = snap.handle(ProcessId::new(0));
/// h0.update(42);
/// assert_eq!(h0.scan().to_vec(), vec![42, 0]);
/// ```
pub struct UnboundedSnapshot<V: RegisterValue, B: Backend = EpochBackend> {
    regs: Box<[B::Cell<UnbRecord<V>>]>,
    registry: HandleRegistry,
    n: usize,
    trace: Trace,
}

impl<V: RegisterValue> UnboundedSnapshot<V, EpochBackend> {
    /// Creates the object for `n` processes over the default lock-free
    /// register backend, with every segment holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        Self::with_backend(n, init, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> UnboundedSnapshot<V, B> {
    /// Creates the object over an explicit register backend (instrumented,
    /// simulator-gated, mutex baseline, ...).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, init: V, backend: &B) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        let initial_view = SnapshotView::from(vec![init.clone(); n]);
        UnboundedSnapshot {
            regs: (0..n)
                .map(|_| {
                    backend.cell(UnbRecord {
                        value: init.clone(),
                        seq: 0,
                        view: initial_view.clone(),
                    })
                })
                .collect(),
            registry: HandleRegistry::new(n),
            n,
            trace: Trace::disabled(),
        }
    }

    /// Routes this object's typed events (scan/update spans, double-collect
    /// rounds, borrow decisions) into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshot<V> for UnboundedSnapshot<V, B> {
    type Handle<'a>
        = UnboundedHandle<'a, V, B>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn handle(&self, pid: ProcessId) -> UnboundedHandle<'_, V, B> {
        self.registry.claim(pid);
        // Restore the saved sequence number from the own register (the
        // single-writer discipline makes it authoritative), so a dropped
        // and re-claimed handle never reuses a sequence number — scans
        // rely on every write changing it.
        let seq = self.regs[pid.get()].read(pid).seq;
        UnboundedHandle {
            shared: self,
            pid,
            seq,
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for UnboundedSnapshot<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnboundedSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

/// Process-local state for [`UnboundedSnapshot`]: the saved sequence
/// number `seq_i` of Figure 2.
pub struct UnboundedHandle<'a, V: RegisterValue, B: Backend> {
    shared: &'a UnboundedSnapshot<V, B>,
    pid: ProcessId,
    seq: u64,
}

impl<V: RegisterValue, B: Backend> UnboundedHandle<'_, V, B> {
    /// `procedure scan_i` of Figure 2.
    fn scan_inner(&self) -> (SnapshotView<V>, ScanStats) {
        let n = self.shared.n;
        let trace = &self.shared.trace;
        let me = self.pid.get();
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        loop {
            trace.emit(
                me,
                Event::RoundStart { algo: Algo::UnboundedSw, round: stats.double_collects + 1 },
            );
            let a = collect(self.pid, &self.shared.regs); // line 1
            let b = collect(self.pid, &self.shared.regs); // line 2
            stats.double_collects += 1;
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            if (0..n).all(|j| a[j].seq == b[j].seq) {
                // Line 3-4: nobody moved; Observation 1 makes `b` a
                // snapshot serialized between the two collects.
                trace.emit(
                    me,
                    Event::RoundEnd {
                        algo: Algo::UnboundedSw,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return (SnapshotView::from(values), stats);
            }
            trace.emit(
                me,
                Event::RoundEnd {
                    algo: Algo::UnboundedSw,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                if a[j].seq != b[j].seq {
                    // line 6: P_j moved
                    if moved[j] == 1 {
                        // Line 7-8: P_j moved once before — its second
                        // observed update ran a whole embedded scan inside
                        // our interval; borrow its view (Observation 2).
                        stats.borrowed = true;
                        trace.emit(me, Event::BorrowDecision { lender: j, moved: 2 });
                        return (b[j].view.clone(), stats);
                    }
                    moved[j] += 1; // line 9
                }
            }
            // line 10: goto line 1
        }
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshotHandle<V> for UnboundedHandle<'_, V, B> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `procedure update_i(value)` of Figure 2: embedded scan, then one
    /// atomic write of `(value, seq + 1, view)`.
    fn update_with_stats(&mut self, value: V) -> ScanStats {
        let trace = &self.shared.trace;
        let me = self.pid.get();
        trace.emit(me, Event::UpdateBegin { algo: Algo::UnboundedSw });
        let (view, mut stats) = self.scan_inner(); // line 1: embedded scan
        self.seq += 1;
        self.shared.regs[self.pid.get()].write(
            self.pid,
            UnbRecord {
                value,
                seq: self.seq,
                view,
            },
        ); // line 2
        stats.writes += 1;
        trace.emit(
            me,
            Event::UpdateEnd { algo: Algo::UnboundedSw, double_collects: stats.double_collects },
        );
        stats
    }

    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let trace = &self.shared.trace;
        let me = self.pid.get();
        trace.emit(me, Event::ScanBegin { algo: Algo::UnboundedSw });
        let (view, stats) = self.scan_inner();
        trace.emit(
            me,
            Event::ScanEnd {
                algo: Algo::UnboundedSw,
                double_collects: stats.double_collects,
                borrowed: stats.borrowed,
            },
        );
        (view, stats)
    }
}

impl<V: RegisterValue, B: Backend> Drop for UnboundedHandle<'_, V, B> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for UnboundedHandle<'_, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnboundedHandle")
            .field("pid", &self.pid)
            .field("seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_scan_returns_init_everywhere() {
        let snap = UnboundedSnapshot::new(3, 7u32);
        let mut h = snap.handle(ProcessId::new(0));
        assert_eq!(h.scan().to_vec(), vec![7, 7, 7]);
    }

    #[test]
    fn updates_are_visible_to_subsequent_scans() {
        let snap = UnboundedSnapshot::new(2, 0u32);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        h0.update(10);
        h1.update(20);
        assert_eq!(h0.scan().to_vec(), vec![10, 20]);
        h0.update(11);
        assert_eq!(h1.scan().to_vec(), vec![11, 20]);
    }

    #[test]
    fn quiescent_scan_needs_exactly_one_double_collect() {
        let snap = UnboundedSnapshot::new(4, 0u8);
        let mut h = snap.handle(ProcessId::new(2));
        let (_, stats) = h.scan_with_stats();
        assert_eq!(
            stats,
            ScanStats {
                double_collects: 1,
                borrowed: false,
                reads: 8, // two collects over four registers
                writes: 0
            }
        );
    }

    #[test]
    fn handles_are_exclusive_until_dropped() {
        let snap = UnboundedSnapshot::new(1, 0u8);
        let h = snap.handle(ProcessId::new(0));
        drop(h);
        let _h2 = snap.handle(ProcessId::new(0));
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_handle_panics() {
        let snap = UnboundedSnapshot::new(1, 0u8);
        let _a = snap.handle(ProcessId::new(0));
        let _b = snap.handle(ProcessId::new(0));
    }

    #[test]
    fn update_reports_its_embedded_scan_stats() {
        let snap = UnboundedSnapshot::new(3, 0u32);
        let mut h = snap.handle(ProcessId::new(0));
        let stats = h.update_with_stats(5);
        // Quiescent: the embedded scan succeeds on its first double collect
        // and never borrows.
        assert_eq!(stats.double_collects, 1);
        assert!(!stats.borrowed);
    }

    #[test]
    fn own_segment_reflects_own_last_update() {
        let snap = UnboundedSnapshot::new(2, 0i64);
        let mut h = snap.handle(ProcessId::new(1));
        for k in 1..=10 {
            h.update(k);
            assert_eq!(h.scan()[1], k);
        }
    }

    #[test]
    fn threaded_smoke_all_scans_are_plausible() {
        let snap = UnboundedSnapshot::new(4, 0u64);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let snap = &snap;
                s.spawn(move || {
                    let mut h = snap.handle(ProcessId::new(i));
                    let mut last_seen = vec![0u64; 4];
                    for k in 1..=200u64 {
                        h.update(k * 4 + i as u64);
                        let view = h.scan();
                        // Segments never go backwards (values encode a
                        // per-process counter).
                        for (j, &v) in view.iter().enumerate() {
                            assert!(v >= last_seen[j], "segment {j} went backwards");
                            last_seen[j] = v;
                        }
                        assert_eq!(view[i], k * 4 + i as u64);
                    }
                });
            }
        });
    }
}
