use std::fmt;

use snapshot_obs::{Algo, Event, RoundOutcome, Trace};
use snapshot_registers::{
    collect, Backend, CachePadded, EpochBackend, ProcessId, Register, RegisterValue,
    TrackedCollect,
};

use crate::api::HandleRegistry;
use crate::{ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle};

/// Contents of register `r_i` in Figure 2: `(value, seq, view)` written in
/// one atomic register write.
#[derive(Clone)]
struct UnbRecord<V> {
    value: V,
    seq: u64,
    view: SnapshotView<V>,
}

/// The **unbounded single-writer** snapshot of Section 3 (Figure 2).
///
/// Each process owns one single-writer register holding `(value, seq,
/// view)`. A scan repeats *double collects* until either
///
/// * two consecutive collects return identical sequence numbers everywhere
///   — by Observation 1 the second collect is a snapshot — or
/// * some process is observed to move **twice**, in which case that
///   process completed an entire update (with its embedded scan) inside
///   this scan's interval, and its written `view` is *borrowed*
///   (Observation 2).
///
/// By the pigeonhole principle a scan finishes within `n + 1` double
/// collects: wait-free, `O(n²)` register operations (Lemma 3.4). An update
/// performs an embedded scan and one register write.
///
/// "Unbounded" refers to the integer sequence numbers; the
/// [`BoundedSnapshot`](crate::BoundedSnapshot) replaces them with
/// handshake bits.
///
/// # Example
///
/// ```
/// use snapshot_core::{SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
/// use snapshot_registers::ProcessId;
///
/// let snap = UnboundedSnapshot::new(2, 0u32);
/// let mut h0 = snap.handle(ProcessId::new(0));
/// h0.update(42);
/// assert_eq!(h0.scan().to_vec(), vec![42, 0]);
/// ```
pub struct UnboundedSnapshot<V: RegisterValue, B: Backend = EpochBackend> {
    // Padded: each register is written by exactly one process and read by
    // all, the canonical false-sharing layout for a dense array.
    regs: Box<[CachePadded<B::Cell<UnbRecord<V>>>]>,
    registry: HandleRegistry,
    n: usize,
    trace: Trace,
    incremental: bool,
}

impl<V: RegisterValue> UnboundedSnapshot<V, EpochBackend> {
    /// Creates the object for `n` processes over the default lock-free
    /// register backend, with every segment holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        Self::with_backend(n, init, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> UnboundedSnapshot<V, B> {
    /// Creates the object over an explicit register backend (instrumented,
    /// simulator-gated, mutex baseline, ...).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, init: V, backend: &B) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        let initial_view = SnapshotView::from(vec![init.clone(); n]);
        UnboundedSnapshot {
            regs: (0..n)
                .map(|_| {
                    CachePadded::new(backend.cell(UnbRecord {
                        value: init.clone(),
                        seq: 0,
                        view: initial_view.clone(),
                    }))
                })
                .collect(),
            registry: HandleRegistry::new(n),
            n,
            trace: Trace::disabled(),
            incremental: true,
        }
    }

    /// Enables or disables the incremental collect path (default: on).
    ///
    /// Both paths run the same Figure 2 algorithm with identical
    /// move-counting; the incremental one reuses the scanner's cache of
    /// records across collects (see [`TrackedCollect`]) to skip clones —
    /// and, on version-keeping backends, whole reads — of registers that
    /// provably did not move. The switch exists so tests and benchmarks
    /// can compare the two executions directly.
    #[must_use]
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Routes this object's typed events (scan/update spans, double-collect
    /// rounds, borrow decisions) into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshot<V> for UnboundedSnapshot<V, B> {
    type Handle<'a>
        = UnboundedHandle<'a, V, B>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn handle(&self, pid: ProcessId) -> UnboundedHandle<'_, V, B> {
        self.registry.claim(pid);
        // Restore the saved sequence number from the own register (the
        // single-writer discipline makes it authoritative), so a dropped
        // and re-claimed handle never reuses a sequence number — scans
        // rely on every write changing it.
        let seq = self.regs[pid.get()].read_with(pid, |r| r.seq);
        UnboundedHandle {
            shared: self,
            pid,
            seq,
            cache: TrackedCollect::new(),
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for UnboundedSnapshot<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnboundedSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

impl<V: RegisterValue, B: Backend> crate::SnapshotCore<V> for UnboundedSnapshot<V, B> {
    fn segments(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.n
    }

    fn single_writer(&self) -> bool {
        true
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.handle(lane).scan_with_stats()
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        assert_eq!(
            segment,
            lane.get(),
            "single-writer construction: lane {lane} cannot update segment {segment}"
        );
        self.handle(lane).update_with_stats(value)
    }

    /// Figure 2's `seq` is exactly the certificate the contract asks for:
    /// the single-writer discipline makes it strictly monotone, so no two
    /// writes of a segment ever share it.
    fn certified_read(&self, reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        Some(self.regs[segment].read_with(reader, |r| (r.value.clone(), r.seq)))
    }

    /// Figure 2's scan run over only the requested registers. Equal `seq`
    /// across two passes certifies the second pass: each slot's register
    /// is provably unchanged over a window containing the instant between
    /// the passes, so the subset is instantaneous there (Observation 1
    /// projected). A subset writer observed moving twice completed an
    /// entire update — embedded *full*-view scan included — inside this
    /// scan's interval; the single-writer discipline totally orders its
    /// updates, so one extra read of its register yields a record whose
    /// embedded scan also began inside the interval, and that full view
    /// is projected onto the subset (Observation 2). Pigeonhole: at most
    /// `2k + 1` double collects over `k` registers — `O(k)` reads,
    /// independent of `n`, and the helping rule means this never returns
    /// `None`.
    fn core_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Option<(Vec<V>, ScanStats)> {
        debug_assert!(!segments.is_empty(), "canonical subsets are non-empty");
        debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        debug_assert!(segments.iter().all(|&s| s < self.n), "segment out of range");
        let _lane = self.registry.claim_guard(lane);
        let k = segments.len();
        let mut moved = vec![0u8; k];
        let mut stats = ScanStats::default();
        loop {
            let a: Vec<u64> =
                segments.iter().map(|&j| self.regs[j].read_with(lane, |r| r.seq)).collect();
            let b: Vec<(u64, V)> = segments
                .iter()
                .map(|&j| self.regs[j].read_with(lane, |r| (r.seq, r.value.clone())))
                .collect();
            stats.double_collects += 1;
            stats.reads += 2 * k as u64;
            debug_assert!(
                stats.double_collects as usize <= 2 * k + 1,
                "subset wait-freedom bound violated: {} double collects for k = {k}",
                stats.double_collects
            );
            if (0..k).all(|x| a[x] == b[x].0) {
                return Some((b.into_iter().map(|(_, v)| v).collect(), stats));
            }
            for x in 0..k {
                if a[x] != b[x].0 {
                    if moved[x] == 1 {
                        stats.borrowed = true;
                        stats.reads += 1;
                        let view =
                            self.regs[segments[x]].read_with(lane, |r| r.view.clone());
                        let values = segments.iter().map(|&j| view[j].clone()).collect();
                        return Some((values, stats));
                    }
                    moved[x] += 1;
                }
            }
        }
    }
}

/// Process-local state for [`UnboundedSnapshot`]: the saved sequence
/// number `seq_i` of Figure 2.
pub struct UnboundedHandle<'a, V: RegisterValue, B: Backend> {
    shared: &'a UnboundedSnapshot<V, B>,
    pid: ProcessId,
    seq: u64,
    /// Scanner-local record cache for the incremental collect path.
    cache: TrackedCollect<UnbRecord<V>>,
}

impl<V: RegisterValue, B: Backend> UnboundedHandle<'_, V, B> {
    /// `procedure scan_i` of Figure 2.
    fn scan_inner(&mut self) -> (SnapshotView<V>, ScanStats) {
        if self.shared.incremental {
            self.scan_inner_incremental()
        } else {
            self.scan_inner_full()
        }
    }

    /// The literal double-collect loop: two fresh full collects per round.
    fn scan_inner_full(&self) -> (SnapshotView<V>, ScanStats) {
        let n = self.shared.n;
        let trace = &self.shared.trace;
        let me = self.pid.get();
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        loop {
            trace.emit(
                me,
                Event::RoundStart { algo: Algo::UnboundedSw, round: stats.double_collects + 1 },
            );
            let a = collect(self.pid, &self.shared.regs); // line 1
            let b = collect(self.pid, &self.shared.regs); // line 2
            stats.double_collects += 1;
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            if (0..n).all(|j| a[j].seq == b[j].seq) {
                // Line 3-4: nobody moved; Observation 1 makes `b` a
                // snapshot serialized between the two collects.
                trace.emit(
                    me,
                    Event::RoundEnd {
                        algo: Algo::UnboundedSw,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return (SnapshotView::from(values), stats);
            }
            trace.emit(
                me,
                Event::RoundEnd {
                    algo: Algo::UnboundedSw,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                if a[j].seq != b[j].seq {
                    // line 6: P_j moved
                    if moved[j] == 1 {
                        // Line 7-8: P_j moved once before — its second
                        // observed update ran a whole embedded scan inside
                        // our interval; borrow its view (Observation 2).
                        stats.borrowed = true;
                        trace.emit(me, Event::BorrowDecision { lender: j, moved: 2 });
                        return (b[j].view.clone(), stats);
                    }
                    moved[j] += 1; // line 9
                }
            }
            // line 10: goto line 1
        }
    }

    /// The same loop over the handle's record cache: collects advance the
    /// cache instead of allocating fresh vectors, cloning only records
    /// whose sequence number moved (steady state on a version-keeping
    /// backend: `n` probes and zero clones per collect).
    ///
    /// Per-writer `seq` is monotone, so equal keys mean the *same write*
    /// in any window — the unbounded construction may trust keys on every
    /// pass, not just the round-internal one (see `TrackedCollect`).
    /// `changed[j]` from the second pass equals Figure 2's
    /// `a[j].seq != b[j].seq`, so move-counting, the clean rule and the
    /// borrow rule are bitwise those of `scan_inner_full`.
    fn scan_inner_incremental(&mut self) -> (SnapshotView<V>, ScanStats) {
        let shared = self.shared;
        let n = shared.n;
        let me = self.pid.get();
        let same = |a: &UnbRecord<V>, b: &UnbRecord<V>| a.seq == b.seq;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        loop {
            shared.trace.emit(
                me,
                Event::RoundStart { algo: Algo::UnboundedSw, round: stats.double_collects + 1 },
            );
            let _ = self.cache.advance(self.pid, &shared.regs, true, same); // line 1
            let pass_b = self.cache.advance(self.pid, &shared.regs, true, same); // line 2
            stats.double_collects += 1;
            // Stats keep the paper's cost model (a collect touches all n
            // registers); version-probe savings are physical, not logical.
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            if pass_b.clean() {
                trace_round_end(&shared.trace, me, stats.double_collects, RoundOutcome::Clean);
                let values: Vec<V> =
                    self.cache.records().iter().map(|r| r.value.clone()).collect();
                return (SnapshotView::from(values), stats);
            }
            trace_round_end(&shared.trace, me, stats.double_collects, RoundOutcome::Moved);
            for j in 0..n {
                if pass_b.changed[j] {
                    if moved[j] == 1 {
                        stats.borrowed = true;
                        shared.trace.emit(me, Event::BorrowDecision { lender: j, moved: 2 });
                        return (self.cache.records()[j].view.clone(), stats);
                    }
                    moved[j] += 1;
                }
            }
        }
    }
}

fn trace_round_end(trace: &Trace, me: usize, round: u32, outcome: RoundOutcome) {
    trace.emit(me, Event::RoundEnd { algo: Algo::UnboundedSw, round, outcome });
}

impl<V: RegisterValue, B: Backend> SwSnapshotHandle<V> for UnboundedHandle<'_, V, B> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `procedure update_i(value)` of Figure 2: embedded scan, then one
    /// atomic write of `(value, seq + 1, view)`.
    fn update_with_stats(&mut self, value: V) -> ScanStats {
        let trace = &self.shared.trace;
        let me = self.pid.get();
        trace.emit(me, Event::UpdateBegin { algo: Algo::UnboundedSw });
        let (view, mut stats) = self.scan_inner(); // line 1: embedded scan
        self.seq += 1;
        self.shared.regs[self.pid.get()].write(
            self.pid,
            UnbRecord {
                value,
                seq: self.seq,
                view,
            },
        ); // line 2
        stats.writes += 1;
        trace.emit(
            me,
            Event::UpdateEnd { algo: Algo::UnboundedSw, double_collects: stats.double_collects },
        );
        stats
    }

    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let trace = &self.shared.trace;
        let me = self.pid.get();
        trace.emit(me, Event::ScanBegin { algo: Algo::UnboundedSw });
        let (view, stats) = self.scan_inner();
        trace.emit(
            me,
            Event::ScanEnd {
                algo: Algo::UnboundedSw,
                double_collects: stats.double_collects,
                borrowed: stats.borrowed,
            },
        );
        (view, stats)
    }
}

impl<V: RegisterValue, B: Backend> Drop for UnboundedHandle<'_, V, B> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for UnboundedHandle<'_, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnboundedHandle")
            .field("pid", &self.pid)
            .field("seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_scan_returns_init_everywhere() {
        let snap = UnboundedSnapshot::new(3, 7u32);
        let mut h = snap.handle(ProcessId::new(0));
        assert_eq!(h.scan().to_vec(), vec![7, 7, 7]);
    }

    #[test]
    fn updates_are_visible_to_subsequent_scans() {
        let snap = UnboundedSnapshot::new(2, 0u32);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        h0.update(10);
        h1.update(20);
        assert_eq!(h0.scan().to_vec(), vec![10, 20]);
        h0.update(11);
        assert_eq!(h1.scan().to_vec(), vec![11, 20]);
    }

    #[test]
    fn quiescent_scan_needs_exactly_one_double_collect() {
        let snap = UnboundedSnapshot::new(4, 0u8);
        let mut h = snap.handle(ProcessId::new(2));
        let (_, stats) = h.scan_with_stats();
        assert_eq!(
            stats,
            ScanStats {
                double_collects: 1,
                borrowed: false,
                reads: 8, // two collects over four registers
                writes: 0
            }
        );
    }

    #[test]
    fn handles_are_exclusive_until_dropped() {
        let snap = UnboundedSnapshot::new(1, 0u8);
        let h = snap.handle(ProcessId::new(0));
        drop(h);
        let _h2 = snap.handle(ProcessId::new(0));
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_handle_panics() {
        let snap = UnboundedSnapshot::new(1, 0u8);
        let _a = snap.handle(ProcessId::new(0));
        let _b = snap.handle(ProcessId::new(0));
    }

    #[test]
    fn update_reports_its_embedded_scan_stats() {
        let snap = UnboundedSnapshot::new(3, 0u32);
        let mut h = snap.handle(ProcessId::new(0));
        let stats = h.update_with_stats(5);
        // Quiescent: the embedded scan succeeds on its first double collect
        // and never borrows.
        assert_eq!(stats.double_collects, 1);
        assert!(!stats.borrowed);
    }

    #[test]
    fn own_segment_reflects_own_last_update() {
        let snap = UnboundedSnapshot::new(2, 0i64);
        let mut h = snap.handle(ProcessId::new(1));
        for k in 1..=10 {
            h.update(k);
            assert_eq!(h.scan()[1], k);
        }
    }

    #[test]
    fn incremental_and_full_paths_agree_operation_for_operation() {
        // Kill-switch equivalence: the same operation sequence, one object
        // per mode, identical scan results and identical ScanStats.
        let inc = UnboundedSnapshot::new(3, 0u32).with_incremental(true);
        let full = UnboundedSnapshot::new(3, 0u32).with_incremental(false);
        let mut hi = inc.handle(ProcessId::new(0));
        let mut hf = full.handle(ProcessId::new(0));
        for k in 1..=20u32 {
            assert_eq!(hi.update_with_stats(k), hf.update_with_stats(k));
            let (vi, si) = hi.scan_with_stats();
            let (vf, sf) = hf.scan_with_stats();
            assert_eq!(vi.to_vec(), vf.to_vec());
            assert_eq!(si, sf);
        }
    }

    #[test]
    fn warm_cache_scans_report_the_same_abstract_cost() {
        // The stats keep the paper's cost model even when the incremental
        // path's version probes skip physical reads: every scan of a
        // quiescent 4-process object reports 2n = 8 reads, warm or cold.
        let snap = UnboundedSnapshot::new(4, 0u8);
        let mut h = snap.handle(ProcessId::new(2));
        for _ in 0..5 {
            let (view, stats) = h.scan_with_stats();
            assert_eq!(view.to_vec(), vec![0; 4]);
            assert_eq!(stats.double_collects, 1);
            assert_eq!(stats.reads, 8);
        }
    }

    #[test]
    fn borrowed_view_is_the_lender_allocation_not_a_copy() {
        // Observation 2 made literal: the view a starving scanner borrows
        // is the *same allocation* the lender embedded in its register —
        // pointer identity, not structural equality. The updater body here
        // inlines Figure 2's update (embedded scan, then write) so it can
        // log the exact Arc it is about to publish, race-free, before the
        // gated write.
        use parking_lot::Mutex;
        use snapshot_sim::{RoundRobinPolicy, Sim, SimConfig};

        let n = 2;
        let sim = Sim::new(n);
        let backend = snapshot_registers::Instrumented::new(EpochBackend::new())
            .with_gate(sim.gate());
        let object = UnboundedSnapshot::with_backend(n, 0u64, &backend);
        let published: Mutex<Vec<SnapshotView<u64>>> = Mutex::new(Vec::new());
        let borrowed: Mutex<Option<SnapshotView<u64>>> = Mutex::new(None);

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        {
            let object = &object;
            let published = &published;
            bodies.push(Box::new(move || {
                let p0 = ProcessId::new(0);
                let mut h = object.handle(p0);
                for k in 1..=400u64 {
                    let (view, _) = h.scan_with_stats(); // update line 1
                    published.lock().push(view.clone()); // log the Arc itself
                    object.regs[0].write(p0, UnbRecord { value: k, seq: k, view }); // line 2
                }
            }));
        }
        {
            let object = &object;
            let borrowed = &borrowed;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(1));
                for _ in 0..20 {
                    let (view, stats) = h.scan_with_stats();
                    if stats.borrowed {
                        *borrowed.lock() = Some(view);
                        break;
                    }
                }
            }));
        }
        sim.run(
            &mut RoundRobinPolicy::new(),
            SimConfig {
                max_steps: Some(2_000_000),
                stop_when_done: vec![ProcessId::new(1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");

        let view = borrowed.into_inner().expect("round-robin starves the scanner into borrowing");
        let log = published.into_inner();
        assert!(
            log.iter().any(|v| std::ptr::eq(v.as_slice().as_ptr(), view.as_slice().as_ptr())),
            "borrowed view must alias one of the {} published allocations",
            log.len()
        );
    }

    #[test]
    fn threaded_smoke_all_scans_are_plausible() {
        let snap = UnboundedSnapshot::new(4, 0u64);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let snap = &snap;
                s.spawn(move || {
                    let mut h = snap.handle(ProcessId::new(i));
                    let mut last_seen = vec![0u64; 4];
                    for k in 1..=200u64 {
                        h.update(k * 4 + i as u64);
                        let view = h.scan();
                        // Segments never go backwards (values encode a
                        // per-process counter).
                        for (j, &v) in view.iter().enumerate() {
                            assert!(v >= last_seen[j], "segment {j} went backwards");
                            last_seen[j] = v;
                        }
                        assert_eq!(view[i], k * 4 + i as u64);
                    }
                });
            }
        });
    }
}
