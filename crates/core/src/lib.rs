//! The three wait-free atomic-snapshot constructions of *Atomic Snapshots
//! of Shared Memory* (Afek, Attiya, Dolev, Gafni, Merritt, Shavit;
//! PODC 1990 / MIT-LCS-TM-429), plus the baselines they are compared
//! against.
//!
//! An **atomic snapshot memory** lets `n` concurrent processes `update`
//! individual memory segments and `scan` *all* segments in one atomic
//! step — every scan returns a true instantaneous picture of the memory.
//! All constructions here are **wait-free** (every operation finishes in a
//! bounded number of its own steps, regardless of what other processes do)
//! and are built from nothing but atomic read/write registers, exactly as
//! the paper requires:
//!
//! | Type | Paper | Registers | Control state | Ops per scan/update |
//! |------|-------|-----------|---------------|----------------------|
//! | [`UnboundedSnapshot`] | Fig. 2 | single-writer | unbounded seq numbers | `O(n²)` |
//! | [`BoundedSnapshot`] | Fig. 3 | single-writer | handshake + toggle bits | `O(n²)` |
//! | [`MultiWriterSnapshot`] | Fig. 4 | multi-writer | handshake + id/toggle | `O(n²)` |
//! | [`DoubleCollectSnapshot`] | §3 Obs. 1 | single-writer | unbounded seq numbers | **unbounded** (not wait-free) |
//! | [`LockSnapshot`] | — | (a mutex) | — | blocking baseline |
//!
//! Every construction is generic over the register [`Backend`], so the
//! same algorithm code runs on lock-free hardware-backed registers, on
//! counted registers (step-complexity experiments), under the
//! deterministic scheduler of `snapshot-sim` (model checking), or on top
//! of the multi-writer-from-single-writer register construction (the
//! compound-cost experiment of Section 6).
//!
//! [`Backend`]: snapshot_registers::Backend
//!
//! The unbounded, bounded, multi-writer and locked constructions also
//! implement [`SnapshotCore`] — the object-level multiplexing interface
//! (`&self` operations plus per-segment collect hooks) that the
//! `snapshot-service` front-end serves many concurrent clients over. Its
//! fallible twin [`TrySnapshotCore`] (every construction here gets a
//! forwarding impl; wrapper cores opt in with
//! [`impl_try_snapshot_core!`]) lets the same front-end run over emulated registers
//! whose operations can fail — see `snapshot-abd`'s `AbdSnapshotCore`.
//!
//! # Quickstart
//!
//! ```
//! use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
//! use snapshot_registers::ProcessId;
//!
//! let snapshot = BoundedSnapshot::new(3, 0u64);
//! std::thread::scope(|s| {
//!     for i in 0..3 {
//!         let snapshot = &snapshot;
//!         s.spawn(move || {
//!             let mut h = snapshot.handle(ProcessId::new(i));
//!             h.update((i as u64 + 1) * 10);
//!             let view = h.scan();
//!             // The view is an instantaneous picture: my own segment
//!             // already carries my update.
//!             assert_eq!(view[i], (i as u64 + 1) * 10);
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod bounded;
mod ctx;
mod deadline;
mod double_collect;
mod fallible;
mod locked;
mod multiplex;
mod multiwriter;
mod unbounded;
mod view;

pub use api::{MwSnapshot, MwSnapshotHandle, ScanStats, SwSnapshot, SwSnapshotHandle};
pub use ctx::RequestCtx;
pub use deadline::Deadline;
pub use fallible::{CoreError, TrySnapshotCore};
pub use multiplex::SnapshotCore;
pub use bounded::{BoundedHandle, BoundedSnapshot};
pub use double_collect::{DoubleCollectHandle, DoubleCollectSnapshot};
pub use locked::{LockHandle, LockSnapshot};
pub use multiwriter::{MultiWriterHandle, MultiWriterSnapshot, MwVariant};
pub use unbounded::{UnboundedHandle, UnboundedSnapshot};
pub use view::SnapshotView;
