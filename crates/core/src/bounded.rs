use std::fmt;
use std::sync::Arc;

use snapshot_obs::{Algo, Event, RoundOutcome, Trace};
use snapshot_registers::{
    collect, Backend, CachePadded, EpochBackend, ProcessId, Register, RegisterValue,
    TrackedCollect,
};

use crate::api::HandleRegistry;
use crate::{ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle};

/// Contents of register `r_i` in Figure 3: `(value, p-bit vector, toggle,
/// view)`, written in one atomic register write.
///
/// `p[j]` is the handshake bit `p_{i,j}` process `i` maintains toward
/// scanner `j`; `toggle` flips on every update so that consecutive writes
/// always change the register's bit pattern.
#[derive(Clone)]
struct BndRecord<V> {
    value: V,
    p: Arc<[bool]>,
    toggle: bool,
    view: SnapshotView<V>,
}

/// The **bounded single-writer** snapshot of Section 4 (Figure 3).
///
/// Structurally the unbounded algorithm with the integer sequence numbers
/// replaced by bounded *handshake bits*: for every ordered process pair
/// `(i, j)` there is a bit `p_{i,j}` written by updates of `P_i` (inside
/// its register `r_i`) and a bit `q_{i,j}` written by scans of `P_i`.
/// Before each double collect the scanner copies `q_{i,j} := p_{j,i}`; an
/// update sets `p_{i,j} := ¬q_{j,i}`, so the scanner observing
/// `p_{j,i} ≠ q_{i,j}` (or a flipped `toggle`) knows `P_j` moved. A
/// process seen moving twice completed a full update — with its embedded
/// scan — inside the scanner's interval, so its `view` can be borrowed.
///
/// Same `O(n²)` wait-free bound as the unbounded algorithm (Lemma 4.4),
/// but every control field is a bounded number of bits — the paper's
/// answer to the question whether unbounded counters are necessary.
///
/// # Example
///
/// ```
/// use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
/// use snapshot_registers::ProcessId;
///
/// let snap = BoundedSnapshot::new(2, 0u32);
/// let mut h = snap.handle(ProcessId::new(1));
/// h.update(9);
/// assert_eq!(h.scan().to_vec(), vec![0, 9]);
/// ```
pub struct BoundedSnapshot<V: RegisterValue, B: Backend = EpochBackend> {
    // Padded: one single-writer register per process in a dense array.
    regs: Box<[CachePadded<B::Cell<BndRecord<V>>>]>,
    /// `q[i][j]`: written by scans of `P_i`, read by updates of `P_j`.
    /// Rows are padded — row `i` is written only by `P_i`, so row
    /// granularity is where the false sharing would happen.
    q: Box<[CachePadded<Box<[B::Bit]>>]>,
    registry: HandleRegistry,
    n: usize,
    trace: Trace,
    incremental: bool,
}

impl<V: RegisterValue> BoundedSnapshot<V, EpochBackend> {
    /// Creates the object for `n` processes over the default lock-free
    /// register backend, with every segment holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        Self::with_backend(n, init, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> BoundedSnapshot<V, B> {
    /// Creates the object over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, init: V, backend: &B) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        let initial_view = SnapshotView::from(vec![init.clone(); n]);
        let initial_p: Arc<[bool]> = vec![false; n].into();
        BoundedSnapshot {
            regs: (0..n)
                .map(|_| {
                    CachePadded::new(backend.cell(BndRecord {
                        value: init.clone(),
                        p: Arc::clone(&initial_p),
                        toggle: false,
                        view: initial_view.clone(),
                    }))
                })
                .collect(),
            q: (0..n)
                .map(|_| CachePadded::new((0..n).map(|_| backend.bit(false)).collect()))
                .collect(),
            registry: HandleRegistry::new(n),
            n,
            trace: Trace::disabled(),
            incremental: true,
        }
    }

    /// Enables or disables the incremental collect path (default: on).
    ///
    /// Same algorithm, same move-counting; the incremental path reuses
    /// the scanner's record cache (see [`TrackedCollect`]) so unchanged
    /// registers cost a version probe instead of a full record clone.
    /// Handshake-bit keys are only trusted *within* a double collect
    /// (Lemma 4.1's window); every other reuse needs a version proof.
    #[must_use]
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Routes this object's typed events (scan/update spans, double-collect
    /// rounds, handshake and toggle transitions, borrow decisions) into
    /// `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshot<V> for BoundedSnapshot<V, B> {
    type Handle<'a>
        = BoundedHandle<'a, V, B>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn handle(&self, pid: ProcessId) -> BoundedHandle<'_, V, B> {
        self.registry.claim(pid);
        // Restore the toggle from the own register so a re-claimed handle
        // keeps flipping it on every write (scans detect movement by
        // toggle *changes*; a reset toggle could make a write invisible).
        let toggle = self.regs[pid.get()].read_with(pid, |r| r.toggle);
        BoundedHandle {
            shared: self,
            pid,
            toggle,
            cache: TrackedCollect::new(),
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for BoundedSnapshot<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

impl<V: RegisterValue, B: Backend> crate::SnapshotCore<V> for BoundedSnapshot<V, B> {
    fn segments(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.n
    }

    fn single_writer(&self) -> bool {
        true
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.handle(lane).scan_with_stats()
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        assert_eq!(
            segment,
            lane.get(),
            "single-writer construction: lane {lane} cannot update segment {segment}"
        );
        self.handle(lane).update_with_stats(value)
    }

    /// Figure 3 deliberately keeps no per-write key — the `(p_i, toggle)`
    /// handshake pair recurs after two writes (the ABA the bounded proof
    /// works around with move counting), so it cannot serve as an ABA-free
    /// certificate. Partial scans over this construction go through
    /// [`core_scan_subset`](crate::SnapshotCore::core_scan_subset), which
    /// runs the handshake protocol natively over the subset instead.
    fn certified_read(&self, _reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        assert!(segment < self.n, "segment {segment} out of range");
        None
    }

    /// Figure 3's scan restricted to the requested registers. The
    /// handshake and its lemma are per writer-pair `(i, j)`: scanner `i`
    /// copies `q_{i,j} := p_{j,i}` for subset writers only, and the
    /// `unmoved` predicate — `p_{j,i}` equal to `q_{i,j}` on both passes,
    /// toggle stable across them — still proves that no write of `r_j`
    /// linearized between the two collect reads (one intervening write
    /// flips the toggle; two imply the second update read our fresh
    /// handshake bit and published its inverse). Every slot's register is
    /// then constant over a window containing the instant between the
    /// passes, so the second pass is an instantaneous picture of the
    /// subset. A subset writer blamed in two different rounds completed
    /// two writes inside this scan's interval, so the later write's
    /// update — embedded full scan included — ran inside it: one extra
    /// read of that register yields a borrowable view, projected onto the
    /// subset. At most `2k + 1` rounds over `k` registers — `O(k)` work,
    /// and always `Some`.
    fn core_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Option<(Vec<V>, ScanStats)> {
        debug_assert!(!segments.is_empty(), "canonical subsets are non-empty");
        debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        debug_assert!(segments.iter().all(|&s| s < self.n), "segment out of range");
        let _lane = self.registry.claim_guard(lane);
        let i = lane.get();
        let k = segments.len();
        let mut moved = vec![0u8; k];
        let mut stats = ScanStats::default();
        let mut q_local = vec![false; k];
        loop {
            // Line 0.5 restricted to the subset; re-executed every retry
            // so a single handshake flip is blamed at most once.
            for (x, &j) in segments.iter().enumerate() {
                q_local[x] = self.regs[j].read_with(lane, |r| r.p[i]);
                self.q[i][j].write(lane, q_local[x]);
                stats.reads += 1;
                stats.writes += 1;
            }
            let a: Vec<(bool, bool)> = segments
                .iter()
                .map(|&j| self.regs[j].read_with(lane, |r| (r.p[i], r.toggle)))
                .collect();
            let b: Vec<(bool, bool, V)> = segments
                .iter()
                .map(|&j| {
                    self.regs[j].read_with(lane, |r| (r.p[i], r.toggle, r.value.clone()))
                })
                .collect();
            stats.double_collects += 1;
            stats.reads += 2 * k as u64;
            debug_assert!(
                stats.double_collects as usize <= 2 * k + 1,
                "subset wait-freedom bound violated: {} double collects for k = {k}",
                stats.double_collects
            );
            let unmoved =
                |x: usize| a[x].0 == q_local[x] && b[x].0 == q_local[x] && a[x].1 == b[x].1;
            if (0..k).all(unmoved) {
                return Some((b.into_iter().map(|(_, _, v)| v).collect(), stats));
            }
            for x in 0..k {
                if !unmoved(x) {
                    if moved[x] == 1 {
                        stats.borrowed = true;
                        stats.reads += 1;
                        let view =
                            self.regs[segments[x]].read_with(lane, |r| r.view.clone());
                        let values = segments.iter().map(|&j| view[j].clone()).collect();
                        return Some((values, stats));
                    }
                    moved[x] += 1;
                }
            }
        }
    }
}

/// Process-local state for [`BoundedSnapshot`]: the current toggle of the
/// own register (the writer knows its own register's contents, so no read
/// is needed to flip it).
pub struct BoundedHandle<'a, V: RegisterValue, B: Backend> {
    shared: &'a BoundedSnapshot<V, B>,
    pid: ProcessId,
    toggle: bool,
    /// Scanner-local record cache for the incremental collect path.
    cache: TrackedCollect<BndRecord<V>>,
}

impl<V: RegisterValue, B: Backend> BoundedHandle<'_, V, B> {
    /// `procedure scan_i` of Figure 3.
    fn scan_inner(&mut self) -> (SnapshotView<V>, ScanStats) {
        if self.shared.incremental {
            self.scan_inner_incremental()
        } else {
            self.scan_inner_full()
        }
    }

    /// The literal Figure 3 loop: handshake, then two fresh full collects.
    fn scan_inner_full(&self) -> (SnapshotView<V>, ScanStats) {
        let n = self.shared.n;
        let i = self.pid.get();
        let trace = &self.shared.trace;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        // `q_local[j]` mirrors the last value this scan wrote to q_{i,j};
        // the single-writer discipline lets us avoid re-reading it.
        let mut q_local = vec![false; n];
        loop {
            trace.emit(
                i,
                Event::RoundStart { algo: Algo::BoundedSw, round: stats.double_collects + 1 },
            );
            // Line 0.5 — handshake: q_{i,j} := p_{j,i}(r_j). Re-executed on
            // every retry (Figure 3 loops back to line 0.5), so a single
            // handshake flip is blamed at most once.
            for j in 0..n {
                let r_j = self.shared.regs[j].read(self.pid);
                q_local[j] = r_j.p[i];
                self.shared.q[i][j].write(self.pid, q_local[j]);
                stats.reads += 1;
                stats.writes += 1;
                trace.emit(i, Event::HandshakeCopy { partner: j, bit: q_local[j] });
            }
            let a = collect(self.pid, &self.shared.regs); // line 1
            let b = collect(self.pid, &self.shared.regs); // line 2
            stats.double_collects += 1;
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            // Line 3: nobody moved iff every pair of handshake bits agrees
            // with our q and the toggles are stable.
            let unmoved = |j: usize| {
                a[j].p[i] == q_local[j] && b[j].p[i] == q_local[j] && a[j].toggle == b[j].toggle
            };
            if (0..n).all(unmoved) {
                trace.emit(
                    i,
                    Event::RoundEnd {
                        algo: Algo::BoundedSw,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return (SnapshotView::from(values), stats); // line 4
            }
            trace.emit(
                i,
                Event::RoundEnd {
                    algo: Algo::BoundedSw,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                if !unmoved(j) {
                    // line 6: P_j moved
                    if moved[j] == 1 {
                        // Line 7-8: moved once before — borrow its view.
                        stats.borrowed = true;
                        trace.emit(i, Event::BorrowDecision { lender: j, moved: 2 });
                        return (b[j].view.clone(), stats);
                    }
                    moved[j] += 1; // line 9
                }
            }
            // line 10: goto line 0.5
        }
    }

    /// Figure 3 over the handle's record cache.
    ///
    /// The handshake loop advances the cache one register at a time
    /// (`advance_one`) so the gated operation sequence — read `r_j`,
    /// write `q_{i,j}`, read `r_{j+1}`, … — is identical to the literal
    /// path's. Keys (`p[i]`, `toggle`) are trusted only on the second
    /// collect: within a double collect the comparison is exactly the
    /// paper's `moved` predicate (Lemma 4.1 excludes the key ABA there),
    /// while in any wider window — across the handshake, across rounds,
    /// across scans — two completed updates can restore a key, so only a
    /// version probe (proof that *no write completed*) may skip a read.
    ///
    /// The blame predicate is rewritten but equivalent: with `pa[j]` the
    /// pass-a value of `p_{j,i}` and `changed_b[j]` the pass-b key
    /// comparison, `pa[j] != q_local[j] || changed_b[j]` holds iff the
    /// literal path's `!unmoved(j)` does (case split on `pa[j] ==
    /// q_local[j]`).
    fn scan_inner_incremental(&mut self) -> (SnapshotView<V>, ScanStats) {
        let shared = self.shared;
        let n = shared.n;
        let i = self.pid.get();
        let same = |a: &BndRecord<V>, b: &BndRecord<V>| a.p[i] == b.p[i] && a.toggle == b.toggle;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        let mut q_local = vec![false; n];
        let mut pa = vec![false; n];
        loop {
            shared.trace.emit(
                i,
                Event::RoundStart { algo: Algo::BoundedSw, round: stats.double_collects + 1 },
            );
            // Line 0.5 — handshake, interleaved per partner as in the
            // literal path. Keys untrusted: this window spans our own
            // q-writes, outside Lemma 4.1's double-collect interval.
            for j in 0..n {
                let _ = self.cache.advance_one(self.pid, &shared.regs, j, false, same);
                q_local[j] = self.cache.records()[j].p[i];
                shared.q[i][j].write(self.pid, q_local[j]);
                stats.reads += 1;
                stats.writes += 1;
                shared.trace.emit(i, Event::HandshakeCopy { partner: j, bit: q_local[j] });
            }
            // Line 1 — collect a (keys untrusted for the same reason).
            let _ = self.cache.advance(self.pid, &shared.regs, false, same);
            for (j, slot) in pa.iter_mut().enumerate() {
                *slot = self.cache.records()[j].p[i];
            }
            // Line 2 — collect b; within the double collect, keys are the
            // paper's own movement test and may skip clones.
            let pass_b = self.cache.advance(self.pid, &shared.regs, true, same);
            stats.double_collects += 1;
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            let moved_now = |j: usize| pa[j] != q_local[j] || pass_b.changed[j];
            if (0..n).all(|j| !moved_now(j)) {
                shared.trace.emit(
                    i,
                    Event::RoundEnd {
                        algo: Algo::BoundedSw,
                        round: stats.double_collects,
                        outcome: RoundOutcome::Clean,
                    },
                );
                let values: Vec<V> =
                    self.cache.records().iter().map(|r| r.value.clone()).collect();
                return (SnapshotView::from(values), stats); // line 4
            }
            shared.trace.emit(
                i,
                Event::RoundEnd {
                    algo: Algo::BoundedSw,
                    round: stats.double_collects,
                    outcome: RoundOutcome::Moved,
                },
            );
            for j in 0..n {
                if moved_now(j) {
                    if moved[j] == 1 {
                        stats.borrowed = true;
                        shared.trace.emit(i, Event::BorrowDecision { lender: j, moved: 2 });
                        return (self.cache.records()[j].view.clone(), stats);
                    }
                    moved[j] += 1;
                }
            }
            // line 10: goto line 0.5
        }
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshotHandle<V> for BoundedHandle<'_, V, B> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `procedure update_i(value)` of Figure 3: collect the scanners'
    /// handshake bits, run the embedded scan, then write everything in one
    /// atomic register write.
    fn update_with_stats(&mut self, value: V) -> ScanStats {
        let n = self.shared.n;
        let i = self.pid.get();
        let trace = &self.shared.trace;
        trace.emit(i, Event::UpdateBegin { algo: Algo::BoundedSw });
        // Line 0: f_j := ¬q_{j,i} — invert what each scanner last showed us.
        let f: Arc<[bool]> = (0..n)
            .map(|j| !self.shared.q[j][i].read(self.pid))
            .collect();
        for (j, &bit) in f.iter().enumerate() {
            trace.emit(i, Event::HandshakeFlip { partner: j, bit });
        }
        let (view, mut stats) = self.scan_inner(); // line 1: embedded scan
        stats.reads += n as u64; // the line-0 reads of q_{j,i}
        self.toggle = !self.toggle;
        trace.emit(i, Event::ToggleFlip { word: i, toggle: self.toggle });
        self.shared.regs[i].write(
            self.pid,
            BndRecord {
                value,
                p: f,
                toggle: self.toggle,
                view,
            },
        ); // line 2
        stats.writes += 1;
        trace.emit(
            i,
            Event::UpdateEnd { algo: Algo::BoundedSw, double_collects: stats.double_collects },
        );
        stats
    }

    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let i = self.pid.get();
        let trace = &self.shared.trace;
        trace.emit(i, Event::ScanBegin { algo: Algo::BoundedSw });
        let (view, stats) = self.scan_inner();
        trace.emit(
            i,
            Event::ScanEnd {
                algo: Algo::BoundedSw,
                double_collects: stats.double_collects,
                borrowed: stats.borrowed,
            },
        );
        (view, stats)
    }
}

impl<V: RegisterValue, B: Backend> Drop for BoundedHandle<'_, V, B> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for BoundedHandle<'_, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedHandle")
            .field("pid", &self.pid)
            .field("toggle", &self.toggle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_scan_returns_init_everywhere() {
        let snap = BoundedSnapshot::new(3, -1i32);
        let mut h = snap.handle(ProcessId::new(1));
        assert_eq!(h.scan().to_vec(), vec![-1, -1, -1]);
    }

    #[test]
    fn sequential_updates_compose() {
        let snap = BoundedSnapshot::new(3, 0u32);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        let mut h2 = snap.handle(ProcessId::new(2));
        h0.update(1);
        h1.update(2);
        h2.update(3);
        assert_eq!(h0.scan().to_vec(), vec![1, 2, 3]);
        h1.update(20);
        assert_eq!(h2.scan().to_vec(), vec![1, 20, 3]);
    }

    #[test]
    fn repeated_updates_of_same_value_still_move_the_toggle() {
        // The toggle guarantees every write changes the register, even
        // when value and handshake bits are unchanged.
        let snap = BoundedSnapshot::new(2, 0u8);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        for _ in 0..4 {
            h0.update(5);
            assert_eq!(h1.scan().to_vec(), vec![5, 0]);
        }
    }

    #[test]
    fn quiescent_scan_needs_exactly_one_double_collect() {
        let snap = BoundedSnapshot::new(5, 0u8);
        let mut h = snap.handle(ProcessId::new(4));
        let (_, stats) = h.scan_with_stats();
        assert_eq!(stats.double_collects, 1);
        assert!(!stats.borrowed);
    }

    #[test]
    fn incremental_and_full_paths_agree_operation_for_operation() {
        let inc = BoundedSnapshot::new(3, 0u32).with_incremental(true);
        let full = BoundedSnapshot::new(3, 0u32).with_incremental(false);
        let mut hi = inc.handle(ProcessId::new(0));
        let mut hf = full.handle(ProcessId::new(0));
        let mut gi = inc.handle(ProcessId::new(2));
        let mut gf = full.handle(ProcessId::new(2));
        for k in 1..=20u32 {
            assert_eq!(hi.update_with_stats(k), hf.update_with_stats(k));
            assert_eq!(gi.update_with_stats(k + 100), gf.update_with_stats(k + 100));
            let (vi, si) = hi.scan_with_stats();
            let (vf, sf) = hf.scan_with_stats();
            assert_eq!(vi.to_vec(), vf.to_vec());
            assert_eq!(si, sf);
        }
    }

    #[test]
    fn warm_cache_scans_report_the_same_abstract_cost() {
        // Repeated quiescent scans: the cache makes later rounds cheaper
        // physically, but the reported cost model must not drift — the
        // wait-freedom suite equates these stats with gated op counts.
        let snap = BoundedSnapshot::new(4, 0u8);
        let mut h = snap.handle(ProcessId::new(1));
        let (_, first) = h.scan_with_stats();
        for _ in 0..4 {
            let (view, stats) = h.scan_with_stats();
            assert_eq!(view.to_vec(), vec![0; 4]);
            assert_eq!(stats, first);
            assert_eq!(stats.reads, 3 * 4); // handshake n + collects 2n
            assert_eq!(stats.writes, 4); // handshake writes
        }
    }

    #[test]
    fn threaded_smoke_monotone_segments() {
        let snap = BoundedSnapshot::new(4, 0u64);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let snap = &snap;
                s.spawn(move || {
                    let mut h = snap.handle(ProcessId::new(i));
                    let mut last_seen = vec![0u64; 4];
                    for k in 1..=200u64 {
                        h.update(k * 4 + i as u64);
                        let view = h.scan();
                        for (j, &v) in view.iter().enumerate() {
                            assert!(v >= last_seen[j], "segment {j} went backwards");
                            last_seen[j] = v;
                        }
                    }
                });
            }
        });
    }
}
