//! Per-request deadline budgets.
//!
//! The paper's wait-freedom bound is a *step* bound: every operation
//! finishes in a bounded number of its own steps. Over emulated registers
//! whose steps are message round-trips, a step bound is not a wall-clock
//! bound — a quorum phase can legally stall for as long as the network
//! does. [`Deadline`] is the wall-clock analogue carried through the
//! service front-end into the register emulation: the instant past which
//! an operation must stop trying and report failure instead of parking.
//!
//! A `Deadline` is a *point in time*, not a duration, so it composes under
//! call nesting: a retry loop, the coalescing rendezvous and the ABD
//! quorum waits below it all measure themselves against the same instant,
//! and the remaining budget shrinks monotonically as the request descends.

use std::fmt;
use std::time::{Duration, Instant};

/// An absolute wall-clock budget for one request.
///
/// `Deadline::none()` is the unbounded deadline — every check reports
/// time remaining. A bounded deadline wraps the [`Instant`] past which
/// the request should fail fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The unbounded deadline: never expires.
    pub const fn none() -> Self {
        Deadline(None)
    }

    /// A deadline at the absolute instant `at`.
    pub const fn at(at: Instant) -> Self {
        Deadline(Some(at))
    }

    /// A deadline `budget` from now. A budget too large to represent
    /// saturates to [`none`](Self::none).
    pub fn after(budget: Duration) -> Self {
        Deadline(Instant::now().checked_add(budget))
    }

    /// The underlying instant, or `None` for the unbounded deadline.
    pub const fn instant(self) -> Option<Instant> {
        self.0
    }

    /// True if this deadline never expires.
    pub const fn is_unbounded(self) -> bool {
        self.0.is_none()
    }

    /// True if the deadline has passed.
    pub fn expired(self) -> bool {
        self.0.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left before expiry: `None` when unbounded, zero when already
    /// expired.
    pub fn remaining(self) -> Option<Duration> {
        self.0.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The earlier of the two deadlines (unbounded is the identity).
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
            (a, b) => Deadline(a.or(b)),
        }
    }

    /// Caps an instant at this deadline: the wake-up time a wait loop
    /// should use so it never sleeps past the budget.
    pub fn cap(self, wake: Instant) -> Instant {
        match self.0 {
            Some(d) => wake.min(d),
            None => wake,
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.remaining() {
            None => f.write_str("unbounded"),
            Some(left) if left.is_zero() => f.write_str("expired"),
            Some(left) => write!(f, "in {left:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.to_string(), "unbounded");
    }

    #[test]
    fn past_deadlines_report_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.to_string(), "expired");
    }

    #[test]
    fn after_grants_the_budget() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        let left = d.remaining().unwrap();
        assert!(left > Duration::from_secs(59));
        assert!(left <= Duration::from_secs(60));
    }

    #[test]
    fn min_picks_the_earlier_and_ignores_unbounded() {
        let soon = Deadline::after(Duration::from_millis(10));
        let late = Deadline::after(Duration::from_secs(10));
        assert_eq!(soon.min(late), soon);
        assert_eq!(late.min(soon), soon);
        assert_eq!(Deadline::none().min(soon), soon);
        assert_eq!(soon.min(Deadline::none()), soon);
        assert!(Deadline::none().min(Deadline::none()).is_unbounded());
    }

    #[test]
    fn cap_bounds_a_wake_instant() {
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_millis(5));
        assert_eq!(d.cap(now + Duration::from_secs(1)), now + Duration::from_millis(5));
        assert_eq!(d.cap(now), now);
        assert_eq!(Deadline::none().cap(now), now);
    }

    #[test]
    fn huge_budgets_saturate_to_unbounded() {
        let d = Deadline::after(Duration::MAX);
        assert!(d.is_unbounded());
    }
}
