//! Request context carried alongside [`Deadline`](crate::Deadline).
//!
//! A [`RequestCtx`] travels down the call stack with an operation — through
//! service admission, the coalescer, the retry loop, into a fallible
//! core's register phases — carrying the identity of the causal span the
//! operation runs under, so every layer can parent its own spans under
//! the request that caused the work. Like `Deadline` it is a tiny `Copy`
//! value, cheap to pass by value everywhere, and has an inert default
//! ([`RequestCtx::none`]) for untraced callers.

use snapshot_obs::SpanId;

/// The per-request causal context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestCtx {
    /// The span the current work runs under ([`SpanId::NONE`] when the
    /// request is untraced).
    pub span: SpanId,
}

impl RequestCtx {
    /// A context with no span: work done under it is untraced.
    pub fn none() -> Self {
        Self::default()
    }

    /// A context running under `span`.
    pub fn under(span: SpanId) -> Self {
        RequestCtx { span }
    }

    /// Whether any span is attached.
    pub fn is_traced(&self) -> bool {
        !self.span.is_none()
    }
}
