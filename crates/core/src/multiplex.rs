//! Object-level multiplexing hooks for the service layer.
//!
//! The per-process handle traits ([`SwSnapshot`] / [`MwSnapshot`]) are the
//! right shape for a process that *owns* its algorithm state, but a
//! request-serving front-end (`snapshot-service`) multiplexes many
//! short-lived requests over one object: it needs operations that take
//! `&self` plus a lane, and it needs the *collect hooks* a partial scan is
//! built from. [`SnapshotCore`] is that interface, implemented by all four
//! contention-relevant constructions.
//!
//! [`SwSnapshot`]: crate::SwSnapshot
//! [`MwSnapshot`]: crate::MwSnapshot

use snapshot_registers::ProcessId;

use crate::{ScanStats, SnapshotView};

/// Object-level entry points the service layer multiplexes over.
///
/// A **lane** is a process id reserved for one service client; every call
/// names the lane on whose behalf it runs. Implementations claim the
/// lane's per-process handle transiently (the service guarantees at most
/// one in-flight operation per lane, exactly the discipline the handle
/// registry enforces).
///
/// `certified_read` is the collect hook partial scans need: a single
/// register read returning the segment's value together with a
/// *certificate* that is guaranteed to differ across any two writes of
/// that segment (ABA-free). Two collects of a segment subset whose
/// certificates all match certify that the second collect is an
/// instantaneous picture *of that subset* — Observation 1 projected onto
/// the subset. Constructions whose registers carry no ABA-free per-write
/// key (the bounded handshake/toggle ones, the lock baseline) return
/// `None`, and the service falls back to a full scan projected onto the
/// subset, which is always correct.
pub trait SnapshotCore<V>: Send + Sync {
    /// Number of memory segments a scan covers (`n` for the single-writer
    /// constructions, `m` words for the multi-writer one).
    fn segments(&self) -> usize;

    /// Number of lanes (process ids) available to clients.
    fn lanes(&self) -> usize;

    /// True if updates are restricted to the lane's own segment (the
    /// single-writer discipline of Sections 3–4).
    fn single_writer(&self) -> bool;

    /// Runs one full scan on behalf of `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or has another operation in
    /// flight.
    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats);

    /// Writes `value` to `segment` on behalf of `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is out of range, if `lane` is out of range or
    /// busy, or if the construction is [single-writer](Self::single_writer)
    /// and `segment != lane` — the service validates and surfaces a typed
    /// error before calling.
    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats;

    /// Reads `segment` once, returning its value and an ABA-free write
    /// certificate, or `None` if this construction cannot certify
    /// individual segments (see the trait docs).
    ///
    /// # Panics
    ///
    /// Panics if `segment` is out of range.
    fn certified_read(&self, reader: ProcessId, segment: usize) -> Option<(V, u64)>;

    /// Runs one **native partial scan** on behalf of `lane`: a
    /// linearizable picture of exactly the requested `segments`, at a
    /// cost proportional to the touched segments rather than the whole
    /// object.
    ///
    /// `segments` must be non-empty, strictly increasing, and in range —
    /// the service layer canonicalizes before calling. The returned
    /// values are in `segments` order.
    ///
    /// `None` means "no certified subset view this time": either the
    /// construction has no native partial-scan path (the default), or a
    /// bounded interference budget ran out (the multi-writer
    /// construction under heavy subset contention). The caller falls
    /// back to a projected full scan, whose termination the paper
    /// proves. Constructions with a helping discipline on the subset
    /// (the single-writer ones borrow an interfering updater's embedded
    /// view, per the Kallimanis–Kanellou lead/helping idea) always
    /// return `Some`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or busy, or if `segments`
    /// violates the canonical-form contract (debug assertions).
    fn core_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Option<(Vec<V>, ScanStats)> {
        let _ = (lane, segments);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BoundedSnapshot, LockSnapshot, MultiWriterSnapshot, UnboundedSnapshot,
    };

    fn exercise(core: &dyn SnapshotCore<u32>, single_writer: bool) {
        let lane = ProcessId::new(0);
        assert_eq!(core.single_writer(), single_writer);
        assert_eq!(core.segments(), 3);
        let _ = core.core_update(lane, 0, 7);
        let (view, _) = core.core_scan(lane);
        assert_eq!(view[0], 7);
        // The certificate, when present, changes across writes.
        if let Some((v, c1)) = core.certified_read(lane, 0) {
            assert_eq!(v, 7);
            let _ = core.core_update(lane, 0, 8);
            let (v, c2) = core.certified_read(lane, 0).unwrap();
            assert_eq!(v, 8);
            assert_ne!(c1, c2, "certificate must move with every write");
        }
    }

    #[test]
    fn unbounded_implements_core_with_certificates() {
        let snap = UnboundedSnapshot::new(3, 0u32);
        exercise(&snap, true);
        assert!(snap.certified_read(ProcessId::new(1), 2).is_some());
    }

    #[test]
    fn bounded_implements_core_without_certificates() {
        let snap = BoundedSnapshot::new(3, 0u32);
        exercise(&snap, true);
        assert!(snap.certified_read(ProcessId::new(1), 2).is_none());
    }

    #[test]
    fn multiwriter_implements_core_over_words() {
        let snap = MultiWriterSnapshot::new(2, 3, 0u32);
        let lane = ProcessId::new(1);
        assert!(!snap.single_writer());
        assert_eq!(snap.segments(), 3);
        assert_eq!(snap.lanes(), 2);
        // Any lane may write any word.
        let _ = snap.core_update(lane, 0, 9);
        assert_eq!(snap.core_scan(lane).0[0], 9);
    }

    #[test]
    fn locked_implements_core_without_certificates() {
        let snap = LockSnapshot::new(3, 0u32);
        exercise(&snap, true);
    }

    #[test]
    fn native_subset_scans_project_the_full_picture() {
        let lane = ProcessId::new(0);
        let unb = UnboundedSnapshot::new(3, 0u32);
        let bnd = BoundedSnapshot::new(3, 0u32);
        let lck = LockSnapshot::new(3, 0u32);
        for core in [&unb as &dyn SnapshotCore<u32>, &bnd, &lck] {
            let _ = core.core_update(lane, 0, 7);
            let (values, stats) = core
                .core_scan_subset(lane, &[0, 2])
                .expect("helping single-writer natives always serve subsets");
            assert_eq!(values, vec![7, 0]);
            assert!(!stats.borrowed);
            // The lane is released again: a full scan still works.
            assert_eq!(core.core_scan(lane).0[0], 7);
        }
        // Multi-writer: version-filtered over the epoch backend; quiescent
        // scans certify on the first probe round at O(k) cost.
        let mw = MultiWriterSnapshot::new(2, 5, 0u32);
        let _ = mw.core_update(ProcessId::new(1), 3, 9);
        let (values, stats) = mw
            .core_scan_subset(lane, &[1, 3])
            .expect("quiescent epoch-backed multi-writer certifies");
        assert_eq!(values, vec![0, 9]);
        assert!(stats.reads <= 6, "O(k) cost: {} reads for k = 2", stats.reads);
    }

    #[test]
    #[should_panic(expected = "single-writer")]
    fn single_writer_core_update_rejects_foreign_segments() {
        let snap = UnboundedSnapshot::new(2, 0u32);
        let _ = snap.core_update(ProcessId::new(0), 1, 5);
    }

    #[test]
    fn transient_claims_leave_the_lane_reusable() {
        let snap = UnboundedSnapshot::new(2, 0u32);
        let lane = ProcessId::new(0);
        for k in 1..=5 {
            let _ = snap.core_update(lane, 0, k);
            assert_eq!(snap.core_scan(lane).0[0], k);
        }
        // The ordinary handle interface still works afterwards.
        use crate::SwSnapshot;
        let _h = snap.handle(lane);
    }
}
