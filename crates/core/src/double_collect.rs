use std::fmt;

use snapshot_obs::{Algo, Event, RoundOutcome, Trace};
use snapshot_registers::{
    collect, Backend, CachePadded, EpochBackend, ProcessId, Register, RegisterValue,
};

use crate::api::HandleRegistry;
use crate::{ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle};

#[derive(Clone)]
struct DcRecord<V> {
    value: V,
    seq: u64,
}

/// The **plain double-collect** snapshot sketched after Observation 1 in
/// Section 3 — the baseline the paper's constructions improve on.
///
/// Updates write `(value, seq)`; a scan repeats collects until two
/// consecutive collects agree, which by Observation 1 is a snapshot. This
/// is linearizable but **not wait-free**: a single updater that keeps
/// writing can starve a scanner forever (there is no borrowed view to fall
/// back on — that is exactly what Observation 2 adds). The starvation
/// experiment `E3` demonstrates the difference under the adversarial
/// scheduler.
///
/// Updates, by contrast, are a single register write: cheaper than the
/// wait-free algorithms' embedded scans.
///
/// # Example
///
/// ```
/// use snapshot_core::{DoubleCollectSnapshot, SwSnapshot, SwSnapshotHandle};
/// use snapshot_registers::ProcessId;
///
/// let snap = DoubleCollectSnapshot::new(2, 0u32);
/// let mut h = snap.handle(ProcessId::new(0));
/// h.update(5);
/// assert_eq!(h.scan().to_vec(), vec![5, 0]);
/// ```
pub struct DoubleCollectSnapshot<V: RegisterValue, B: Backend = EpochBackend> {
    // Padded like the wait-free constructions, so benchmark comparisons
    // against them measure the algorithms, not their false sharing.
    regs: Box<[CachePadded<B::Cell<DcRecord<V>>>]>,
    registry: HandleRegistry,
    n: usize,
    trace: Trace,
}

impl<V: RegisterValue> DoubleCollectSnapshot<V, EpochBackend> {
    /// Creates the object for `n` processes on the default backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        Self::with_backend(n, init, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> DoubleCollectSnapshot<V, B> {
    /// Creates the object over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, init: V, backend: &B) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        DoubleCollectSnapshot {
            regs: (0..n)
                .map(|_| {
                    CachePadded::new(backend.cell(DcRecord {
                        value: init.clone(),
                        seq: 0,
                    }))
                })
                .collect(),
            registry: HandleRegistry::new(n),
            n,
            trace: Trace::disabled(),
        }
    }

    /// Routes this object's typed events (scan/update spans and
    /// double-collect rounds) into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshot<V> for DoubleCollectSnapshot<V, B> {
    type Handle<'a>
        = DoubleCollectHandle<'a, V, B>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn handle(&self, pid: ProcessId) -> DoubleCollectHandle<'_, V, B> {
        self.registry.claim(pid);
        DoubleCollectHandle {
            shared: self,
            pid,
            seq: 0,
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for DoubleCollectSnapshot<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DoubleCollectSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

/// Process-local state for [`DoubleCollectSnapshot`].
pub struct DoubleCollectHandle<'a, V: RegisterValue, B: Backend> {
    shared: &'a DoubleCollectSnapshot<V, B>,
    pid: ProcessId,
    seq: u64,
}

impl<V: RegisterValue, B: Backend> DoubleCollectHandle<'_, V, B> {
    /// Scans, giving up after `max_double_collects` attempts.
    ///
    /// Returns `None` if no two consecutive collects agreed within the
    /// budget — the observable symptom of this algorithm's missing
    /// wait-freedom.
    pub fn try_scan(&mut self, max_double_collects: u32) -> Option<(SnapshotView<V>, ScanStats)> {
        let n = self.shared.n;
        let trace = &self.shared.trace;
        let me = self.pid.get();
        let mut stats = ScanStats::default();
        let mut a = collect(self.pid, &self.shared.regs);
        stats.reads += n as u64;
        while stats.double_collects < max_double_collects {
            trace.emit(
                me,
                Event::RoundStart { algo: Algo::DoubleCollect, round: stats.double_collects + 1 },
            );
            let b = collect(self.pid, &self.shared.regs);
            stats.double_collects += 1;
            stats.reads += n as u64;
            let clean = (0..n).all(|j| a[j].seq == b[j].seq);
            trace.emit(
                me,
                Event::RoundEnd {
                    algo: Algo::DoubleCollect,
                    round: stats.double_collects,
                    outcome: if clean { RoundOutcome::Clean } else { RoundOutcome::Moved },
                },
            );
            if clean {
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return Some((SnapshotView::from(values), stats));
            }
            a = b;
        }
        None
    }
}

impl<V: RegisterValue, B: Backend> SwSnapshotHandle<V> for DoubleCollectHandle<'_, V, B> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// A single register write — no embedded scan, hence no help for
    /// starving scanners.
    fn update_with_stats(&mut self, value: V) -> ScanStats {
        let me = self.pid.get();
        let trace = &self.shared.trace;
        trace.emit(me, Event::UpdateBegin { algo: Algo::DoubleCollect });
        self.seq += 1;
        self.shared.regs[self.pid.get()].write(
            self.pid,
            DcRecord {
                value,
                seq: self.seq,
            },
        );
        trace.emit(me, Event::UpdateEnd { algo: Algo::DoubleCollect, double_collects: 0 });
        ScanStats {
            writes: 1,
            ..ScanStats::default()
        }
    }

    /// # Blocking
    ///
    /// May loop forever under continuous concurrent updates; use
    /// [`DoubleCollectHandle::try_scan`] where starvation is possible.
    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let me = self.pid.get();
        self.shared.trace.emit(me, Event::ScanBegin { algo: Algo::DoubleCollect });
        let (view, stats) = self
            .try_scan(u32::MAX)
            .expect("u32::MAX double collects exhausted");
        self.shared.trace.emit(
            me,
            Event::ScanEnd {
                algo: Algo::DoubleCollect,
                double_collects: stats.double_collects,
                borrowed: false,
            },
        );
        (view, stats)
    }
}

impl<V: RegisterValue, B: Backend> Drop for DoubleCollectHandle<'_, V, B> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for DoubleCollectHandle<'_, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DoubleCollectHandle")
            .field("pid", &self.pid)
            .field("seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_behavior_matches_snapshot_semantics() {
        let snap = DoubleCollectSnapshot::new(2, 0u32);
        let mut h0 = snap.handle(ProcessId::new(0));
        let mut h1 = snap.handle(ProcessId::new(1));
        h0.update(1);
        h1.update(2);
        assert_eq!(h0.scan().to_vec(), vec![1, 2]);
    }

    #[test]
    fn quiescent_scan_needs_one_double_collect() {
        let snap = DoubleCollectSnapshot::new(3, 0u8);
        let mut h = snap.handle(ProcessId::new(0));
        let (_, stats) = h.scan_with_stats();
        assert_eq!(stats.double_collects, 1);
    }

    #[test]
    fn try_scan_gives_up_gracefully() {
        // Nothing concurrent here, so one attempt suffices; budget 1 works.
        let snap = DoubleCollectSnapshot::new(1, 0u8);
        let mut h = snap.handle(ProcessId::new(0));
        assert!(h.try_scan(1).is_some());
    }
}
