use std::fmt;

use parking_lot::RwLock;
use snapshot_registers::{CachePadded, ProcessId, RegisterValue};

use crate::api::HandleRegistry;
use crate::{ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle};

/// A coarse-grained **lock-based** snapshot baseline: the whole memory
/// behind one reader-writer lock.
///
/// Trivially linearizable, trivially *not* wait-free (a preempted lock
/// holder blocks everyone — under the paper's failure model, a crashed
/// process wedges the object forever). It exists to quantify, in the
/// benchmarks, what the wait-free constructions pay for their progress
/// guarantee and what they gain under contention and under crashes.
///
/// # Example
///
/// ```
/// use snapshot_core::{LockSnapshot, SwSnapshot, SwSnapshotHandle};
/// use snapshot_registers::ProcessId;
///
/// let snap = LockSnapshot::new(2, 0u32);
/// let mut h = snap.handle(ProcessId::new(1));
/// h.update(3);
/// assert_eq!(h.scan().to_vec(), vec![0, 3]);
/// ```
pub struct LockSnapshot<V> {
    // Padded so the lock word does not share a line with the registry's
    // claim flags — the benchmarks hammer both from different threads.
    mem: CachePadded<RwLock<Vec<V>>>,
    registry: HandleRegistry,
    n: usize,
}

impl<V: RegisterValue> LockSnapshot<V> {
    /// Creates the object for `n` processes, every segment holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        LockSnapshot {
            mem: CachePadded::new(RwLock::new(vec![init; n])),
            registry: HandleRegistry::new(n),
            n,
        }
    }
}

impl<V: RegisterValue> SwSnapshot<V> for LockSnapshot<V> {
    type Handle<'a>
        = LockHandle<'a, V>
    where
        Self: 'a;

    fn processes(&self) -> usize {
        self.n
    }

    fn handle(&self, pid: ProcessId) -> LockHandle<'_, V> {
        self.registry.claim(pid);
        LockHandle { shared: self, pid }
    }
}

impl<V> fmt::Debug for LockSnapshot<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

impl<V: RegisterValue> crate::SnapshotCore<V> for LockSnapshot<V> {
    fn segments(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.n
    }

    fn single_writer(&self) -> bool {
        true
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.handle(lane).scan_with_stats()
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        assert_eq!(
            segment,
            lane.get(),
            "single-writer construction: lane {lane} cannot update segment {segment}"
        );
        self.handle(lane).update_with_stats(value)
    }

    /// The baseline keeps no per-segment versions, so a single read has
    /// no certificate to return; subset reads go through
    /// [`core_scan_subset`](crate::SnapshotCore::core_scan_subset), which
    /// projects under the lock.
    fn certified_read(&self, _reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        assert!(segment < self.n, "segment {segment} out of range");
        None
    }

    /// A lock-scoped projection: the read lock makes the whole memory
    /// instantaneous, so copying only the requested segments out of it is
    /// trivially a partial snapshot — and clones `k` values instead of
    /// `n`, which is the entire point for wide objects.
    fn core_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Option<(Vec<V>, ScanStats)> {
        debug_assert!(!segments.is_empty(), "canonical subsets are non-empty");
        debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        debug_assert!(segments.iter().all(|&s| s < self.n), "segment out of range");
        let _lane = self.registry.claim_guard(lane);
        let mem = self.mem.read();
        Some((segments.iter().map(|&s| mem[s].clone()).collect(), ScanStats::default()))
    }
}

/// Process handle for [`LockSnapshot`].
pub struct LockHandle<'a, V> {
    shared: &'a LockSnapshot<V>,
    pid: ProcessId,
}

impl<V: RegisterValue> SwSnapshotHandle<V> for LockHandle<'_, V> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn update_with_stats(&mut self, value: V) -> ScanStats {
        self.shared.mem.write()[self.pid.get()] = value;
        ScanStats::default()
    }

    fn scan_with_stats(&mut self) -> (SnapshotView<V>, ScanStats) {
        let view = SnapshotView::from(self.shared.mem.read().clone());
        // No primitive registers, no double collects: all stats are zero.
        (view, ScanStats::default())
    }
}

impl<V> Drop for LockHandle<'_, V> {
    fn drop(&mut self) {
        self.shared.registry.release(self.pid);
    }
}

impl<V> fmt::Debug for LockHandle<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_scan_round_trip() {
        let snap = LockSnapshot::new(3, 0u32);
        let mut h = snap.handle(ProcessId::new(2));
        h.update(5);
        assert_eq!(h.scan().to_vec(), vec![0, 0, 5]);
    }

    #[test]
    fn threaded_scans_are_internally_consistent() {
        // Writers keep segments equal in pairs; scans must never observe a
        // torn pair, thanks to the lock.
        let snap = LockSnapshot::new(2, 0u64);
        std::thread::scope(|s| {
            let snap_ref = &snap;
            s.spawn(move || {
                let mut h = snap_ref.handle(ProcessId::new(0));
                for k in 0..1_000 {
                    h.update(k);
                }
            });
            s.spawn(move || {
                let mut h = snap_ref.handle(ProcessId::new(1));
                let mut last = 0;
                for _ in 0..1_000 {
                    let view = h.scan();
                    assert!(view[0] >= last);
                    last = view[0];
                }
            });
        });
    }
}
