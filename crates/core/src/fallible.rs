//! Fallible object-level operations.
//!
//! The paper's constructions assume registers that never fail, so
//! [`SnapshotCore`] is infallible. Emulated registers (the ABD
//! message-passing emulation of Section 6) are *live only while a majority
//! of replicas is reachable*: a register operation issued past that
//! boundary must surface an error, not hang or panic. [`TrySnapshotCore`]
//! is the fallible twin of [`SnapshotCore`] — same lanes/segments
//! contract, every operation returns `Result<_, CoreError>` — and the
//! [`impl_try_snapshot_core!`](crate::impl_try_snapshot_core) forwarding
//! macro lifts any infallible core into it (applied here to every
//! construction in this crate), so one service front-end serves both.

use std::fmt;

use snapshot_registers::{Backend, ProcessId, RegisterValue};

#[cfg(doc)]
use crate::SnapshotCore;
use crate::{Deadline, RequestCtx, ScanStats, SnapshotView};

/// Why a fallible snapshot operation could not complete.
///
/// The distinction that matters to callers is *retryability*: an
/// [`Unavailable`](CoreError::Unavailable) core may answer again once the
/// backing heals (a partition lifted, replicas restarted), while a
/// [`Failed`](CoreError::Failed) core never will — retrying it only burns
/// the caller's budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The backing register layer lost liveness (e.g. an ABD quorum phase
    /// starved without a majority). The operation is *indeterminate*: an
    /// update may or may not have taken effect, exactly like a crashed
    /// writer in the paper's model. Retrying after the backing heals may
    /// succeed.
    Unavailable {
        /// What the register layer reported.
        reason: String,
    },
    /// The backing store failed permanently (a poisoned replica fleet, a
    /// type-confused register). Retries cannot succeed.
    Failed {
        /// What the register layer reported.
        reason: String,
    },
}

impl CoreError {
    /// True if retrying the operation later may succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, CoreError::Unavailable { .. })
    }

    /// The backing layer's diagnostic message.
    pub fn reason(&self) -> &str {
        match self {
            CoreError::Unavailable { reason } | CoreError::Failed { reason } => reason,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Unavailable { reason } => {
                write!(f, "snapshot backing unavailable (retryable): {reason}")
            }
            CoreError::Failed { reason } => {
                write!(f, "snapshot backing failed permanently: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Fallible twin of [`SnapshotCore`]: the same object-level contract
/// (lanes, segments, the single-writer discipline, certified reads) with
/// every operation returning `Result<_, CoreError>`.
///
/// Contract violations (a lane out of range, a busy lane, a single-writer
/// update to a foreign segment) still panic — they are caller bugs the
/// service layer validates away before calling, not runtime faults.
/// `CoreError` is reserved for the backing losing liveness mid-operation.
///
/// Every infallible [`SnapshotCore`] in this crate is a `TrySnapshotCore`
/// via a forwarding impl (its operations simply never err), so service
/// code written against this trait serves the in-process constructions
/// unchanged. Wrapper cores in other crates opt in with
/// [`impl_try_snapshot_core!`](crate::impl_try_snapshot_core).
pub trait TrySnapshotCore<V>: Send + Sync {
    /// Number of memory segments a scan covers.
    fn segments(&self) -> usize;

    /// Number of lanes (process ids) available to clients.
    fn lanes(&self) -> usize;

    /// True if updates are restricted to the lane's own segment.
    fn single_writer(&self) -> bool;

    /// Runs one full scan on behalf of `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or has another operation in
    /// flight.
    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<V>, ScanStats), CoreError>;

    /// Writes `value` to `segment` on behalf of `lane`.
    ///
    /// On `Err` the update is *indeterminate*: it may yet become visible
    /// (linearizability checkers must treat it as pending).
    ///
    /// # Panics
    ///
    /// Panics if `segment` is out of range, if `lane` is out of range or
    /// busy, or if the construction is single-writer and `segment != lane`.
    fn try_update(&self, lane: ProcessId, segment: usize, value: V)
        -> Result<ScanStats, CoreError>;

    /// Reads `segment` once, returning its value and an ABA-free write
    /// certificate, or `Ok(None)` if this construction cannot certify
    /// individual segments (see [`SnapshotCore::certified_read`]).
    ///
    /// # Panics
    ///
    /// Panics if `segment` is out of range.
    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(V, u64)>, CoreError>;

    /// Like [`try_scan`](Self::try_scan), bounded by `deadline`: a core
    /// whose steps can stall (message-passing register emulations) caps
    /// its internal waits at the deadline and errs
    /// [`Unavailable`](CoreError::Unavailable) once it passes.
    ///
    /// The default ignores the deadline and forwards to `try_scan` — an
    /// in-process core completes in a bounded number of its own steps
    /// (wait-freedom), so there is nothing to cut short. Deadline-aware
    /// cores (`snapshot-abd`'s `AbdSnapshotCore`) override this.
    fn try_scan_by(
        &self,
        lane: ProcessId,
        _deadline: Deadline,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        self.try_scan(lane)
    }

    /// Like [`try_update`](Self::try_update), bounded by `deadline`
    /// (same default-forwarding contract as [`try_scan_by`](Self::try_scan_by)).
    ///
    /// On `Err` the update stays *indeterminate* whether the cause was
    /// the backing or the deadline — a write cut off mid-quorum may yet
    /// become visible.
    fn try_update_by(
        &self,
        lane: ProcessId,
        segment: usize,
        value: V,
        _deadline: Deadline,
    ) -> Result<ScanStats, CoreError> {
        self.try_update(lane, segment, value)
    }

    /// Like [`try_certified_read`](Self::try_certified_read), bounded by
    /// `deadline` (same default-forwarding contract as
    /// [`try_scan_by`](Self::try_scan_by)).
    fn try_certified_read_by(
        &self,
        reader: ProcessId,
        segment: usize,
        _deadline: Deadline,
    ) -> Result<Option<(V, u64)>, CoreError> {
        self.try_certified_read(reader, segment)
    }

    /// Like [`try_scan_by`](Self::try_scan_by), additionally carrying the
    /// caller's [`RequestCtx`] so a core that emits causal spans can
    /// parent its register phases under the request's span.
    ///
    /// The default drops the context and forwards to `try_scan_by` — an
    /// in-process core's collect is a handful of register reads with no
    /// internal phase worth a span of its own. Cores with observable
    /// internal waits (`snapshot-abd`'s `AbdSnapshotCore` quorum phases)
    /// override this.
    fn try_scan_ctx(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        _ctx: RequestCtx,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        self.try_scan_by(lane, deadline)
    }

    /// Like [`try_update_by`](Self::try_update_by), carrying the caller's
    /// [`RequestCtx`] (same default-forwarding contract as
    /// [`try_scan_ctx`](Self::try_scan_ctx)).
    fn try_update_ctx(
        &self,
        lane: ProcessId,
        segment: usize,
        value: V,
        deadline: Deadline,
        _ctx: RequestCtx,
    ) -> Result<ScanStats, CoreError> {
        self.try_update_by(lane, segment, value, deadline)
    }

    /// Like [`try_certified_read_by`](Self::try_certified_read_by),
    /// carrying the caller's [`RequestCtx`] (same default-forwarding
    /// contract as [`try_scan_ctx`](Self::try_scan_ctx)).
    fn try_certified_read_ctx(
        &self,
        reader: ProcessId,
        segment: usize,
        deadline: Deadline,
        _ctx: RequestCtx,
    ) -> Result<Option<(V, u64)>, CoreError> {
        self.try_certified_read_by(reader, segment, deadline)
    }

    /// Runs one native partial scan of `segments` (non-empty, strictly
    /// increasing, in range) on behalf of `lane` — the fallible twin of
    /// [`SnapshotCore::core_scan_subset`].
    ///
    /// `Ok(None)` means no certified subset view is available (no native
    /// path, or its bounded interference budget ran out) and the caller
    /// should fall back; it is not an error. The default returns
    /// `Ok(None)`, so manually-implemented fallible cores keep compiling
    /// and simply stay on the fallback path until they override it.
    fn try_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        let _ = (lane, segments);
        Ok(None)
    }

    /// Like [`try_scan_subset`](Self::try_scan_subset), bounded by
    /// `deadline` (same default-forwarding contract as
    /// [`try_scan_by`](Self::try_scan_by)).
    fn try_scan_subset_by(
        &self,
        lane: ProcessId,
        segments: &[usize],
        _deadline: Deadline,
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        self.try_scan_subset(lane, segments)
    }

    /// Like [`try_scan_subset_by`](Self::try_scan_subset_by), carrying
    /// the caller's [`RequestCtx`] (same default-forwarding contract as
    /// [`try_scan_ctx`](Self::try_scan_ctx)).
    fn try_scan_subset_ctx(
        &self,
        lane: ProcessId,
        segments: &[usize],
        deadline: Deadline,
        _ctx: RequestCtx,
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        self.try_scan_subset_by(lane, segments, deadline)
    }
}

/// Implements [`TrySnapshotCore`] for a type by forwarding to its
/// (infallible) [`SnapshotCore`] impl — the lifted operations simply never
/// err.
///
/// A blanket `impl<T: SnapshotCore<V>> TrySnapshotCore<V> for T` is ruled
/// out by coherence: fallible cores in other crates (`snapshot-abd`'s
/// `AbdSnapshotCore`) need their own generic `TrySnapshotCore<V>` impl,
/// and next to a blanket impl that is E0119 — a downstream crate could
/// legally write `impl SnapshotCore<Local> for AbdSnapshotCore<Local>`
/// and make the two overlap. So the lift is opt-in per type: this macro
/// generates the forwarding impl, and every construction in this crate
/// already invokes it. Wrapper cores elsewhere invoke it as
///
/// ```
/// use snapshot_core::SnapshotCore;
///
/// struct Logged<C>(C);
/// # impl<V, C: SnapshotCore<V>> SnapshotCore<V> for Logged<C> {
/// #     fn segments(&self) -> usize { self.0.segments() }
/// #     fn lanes(&self) -> usize { self.0.lanes() }
/// #     fn single_writer(&self) -> bool { self.0.single_writer() }
/// #     fn core_scan(&self, lane: snapshot_registers::ProcessId)
/// #         -> (snapshot_core::SnapshotView<V>, snapshot_core::ScanStats)
/// #     { self.0.core_scan(lane) }
/// #     fn core_update(&self, lane: snapshot_registers::ProcessId, segment: usize, value: V)
/// #         -> snapshot_core::ScanStats
/// #     { self.0.core_update(lane, segment, value) }
/// #     fn certified_read(&self, reader: snapshot_registers::ProcessId, segment: usize)
/// #         -> Option<(V, u64)>
/// #     { self.0.certified_read(reader, segment) }
/// # }
/// snapshot_core::impl_try_snapshot_core!([V, C: SnapshotCore<V>] V, Logged<C>);
/// ```
///
/// The bracketed list is the impl's generic parameters, followed by the
/// value type and the implementing type; the macro adds a
/// `where $ty: SnapshotCore<$value>` clause, so the type must already
/// implement the infallible trait. The invoking crate must depend on
/// `snapshot-registers` (for `ProcessId` in the generated signatures).
#[macro_export]
macro_rules! impl_try_snapshot_core {
    ([$($gen:tt)*] $v:ty, $ty:ty) => {
        impl<$($gen)*> $crate::TrySnapshotCore<$v> for $ty
        where
            $ty: $crate::SnapshotCore<$v>,
        {
            fn segments(&self) -> usize {
                $crate::SnapshotCore::segments(self)
            }

            fn lanes(&self) -> usize {
                $crate::SnapshotCore::lanes(self)
            }

            fn single_writer(&self) -> bool {
                $crate::SnapshotCore::single_writer(self)
            }

            fn try_scan(
                &self,
                lane: ::snapshot_registers::ProcessId,
            ) -> Result<($crate::SnapshotView<$v>, $crate::ScanStats), $crate::CoreError>
            {
                Ok($crate::SnapshotCore::core_scan(self, lane))
            }

            fn try_update(
                &self,
                lane: ::snapshot_registers::ProcessId,
                segment: usize,
                value: $v,
            ) -> Result<$crate::ScanStats, $crate::CoreError> {
                Ok($crate::SnapshotCore::core_update(self, lane, segment, value))
            }

            fn try_certified_read(
                &self,
                reader: ::snapshot_registers::ProcessId,
                segment: usize,
            ) -> Result<Option<($v, u64)>, $crate::CoreError> {
                Ok($crate::SnapshotCore::certified_read(self, reader, segment))
            }

            fn try_scan_subset(
                &self,
                lane: ::snapshot_registers::ProcessId,
                segments: &[usize],
            ) -> Result<Option<(Vec<$v>, $crate::ScanStats)>, $crate::CoreError> {
                Ok($crate::SnapshotCore::core_scan_subset(self, lane, segments))
            }
        }
    };
}

// Lift every infallible construction in this crate.
crate::impl_try_snapshot_core!(
    [V: RegisterValue, B: Backend] V, crate::UnboundedSnapshot<V, B>
);
crate::impl_try_snapshot_core!(
    [V: RegisterValue, B: Backend] V, crate::BoundedSnapshot<V, B>
);
crate::impl_try_snapshot_core!([V: RegisterValue] V, crate::LockSnapshot<V>);
crate::impl_try_snapshot_core!(
    [V: RegisterValue, B: Backend, BM: Backend] V, crate::MultiWriterSnapshot<V, B, BM>
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundedSnapshot, UnboundedSnapshot};

    #[test]
    fn forwarding_impls_cover_infallible_cores() {
        fn exercise(core: &dyn TrySnapshotCore<u32>) {
            let lane = ProcessId::new(0);
            core.try_update(lane, 0, 5).unwrap();
            let (view, _) = core.try_scan(lane).unwrap();
            assert_eq!(view[0], 5);
        }
        exercise(&UnboundedSnapshot::new(2, 0u32));
        exercise(&BoundedSnapshot::new(2, 0u32));
        exercise(&crate::LockSnapshot::new(2, 0u32));
    }

    #[test]
    fn forwarded_certified_read() {
        let snap = UnboundedSnapshot::new(2, 0u32);
        let lane = ProcessId::new(0);
        TrySnapshotCore::try_update(&snap, lane, 0, 9).unwrap();
        let (v, _cert) = snap.try_certified_read(lane, 0).unwrap().unwrap();
        assert_eq!(v, 9);
        // Bounded cores certify nothing, fallibly too.
        let b = BoundedSnapshot::new(2, 0u32);
        assert_eq!(b.try_certified_read(lane, 0).unwrap(), None);
    }

    #[test]
    fn deadline_defaults_forward_and_ignore_the_budget() {
        // In-process cores are wait-free: an already-expired deadline must
        // not stop them (the default methods forward unconditionally).
        let snap = UnboundedSnapshot::new(2, 0u32);
        let lane = ProcessId::new(0);
        let expired = Deadline::at(std::time::Instant::now());
        snap.try_update_by(lane, 0, 3, expired).unwrap();
        let (view, _) = snap.try_scan_by(lane, expired).unwrap();
        assert_eq!(view[0], 3);
        let (v, _) = snap.try_certified_read_by(lane, 0, expired).unwrap().unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn ctx_defaults_forward_and_drop_the_context() {
        // The ctx-threaded methods default through the deadline-bounded
        // ones, so an untraced in-process core behaves identically.
        let snap = UnboundedSnapshot::new(2, 0u32);
        let lane = ProcessId::new(0);
        let ctx = RequestCtx::none();
        assert!(!ctx.is_traced());
        snap.try_update_ctx(lane, 0, 7, Deadline::none(), ctx).unwrap();
        let (view, _) = snap.try_scan_ctx(lane, Deadline::none(), ctx).unwrap();
        assert_eq!(view[0], 7);
        let (v, _) = snap.try_certified_read_ctx(lane, 0, Deadline::none(), ctx).unwrap().unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn retryability_follows_the_variant() {
        let transient = CoreError::Unavailable { reason: "no quorum".into() };
        let terminal = CoreError::Failed { reason: "fleet poisoned".into() };
        assert!(transient.retryable());
        assert!(!terminal.retryable());
        assert!(transient.to_string().contains("retryable"));
        assert!(terminal.to_string().contains("permanently"));
        assert_eq!(terminal.reason(), "fleet poisoned");
    }
}
