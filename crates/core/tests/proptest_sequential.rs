//! Property tests: under *sequential* use (one operation at a time, any
//! process order), every snapshot construction must behave exactly like
//! the trivial model — a plain vector. Atomicity machinery (double
//! collects, handshakes, toggles, borrowed views) must be invisible.

use proptest::prelude::*;
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, LockSnapshot, MultiWriterSnapshot, MwSnapshot,
    MwSnapshotHandle, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_registers::ProcessId;

#[derive(Clone, Debug)]
enum SwOp {
    Update { pid: usize, value: u64 },
    Scan { pid: usize },
}

fn sw_ops(max_procs: usize, len: usize) -> impl Strategy<Value = Vec<SwOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_procs, any::<u64>()).prop_map(|(pid, value)| SwOp::Update { pid, value }),
            (0..max_procs).prop_map(|pid| SwOp::Scan { pid }),
        ],
        0..len,
    )
}

/// Drives `object` with `ops`, one at a time, against the vector model.
/// Handles are claimed and dropped per operation — also exercising the
/// claim/release machinery.
fn check_sw<O: SwSnapshot<u64>>(object: &O, n: usize, init: u64, ops: &[SwOp]) {
    let mut model = vec![init; n];
    // Keep persistent handles (sequence numbers / toggles must survive
    // across operations), one per process.
    let mut handles: Vec<_> = (0..n).map(|i| object.handle(ProcessId::new(i))).collect();
    for op in ops {
        match op {
            SwOp::Update { pid, value } => {
                let pid = pid % n;
                handles[pid].update(*value);
                model[pid] = *value;
            }
            SwOp::Scan { pid } => {
                let pid = pid % n;
                let (view, stats) = handles[pid].scan_with_stats();
                assert_eq!(view.to_vec(), model);
                // Sequential: always the fast path.
                assert!(!stats.borrowed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_matches_vector_model(
        n in 1usize..6,
        init in any::<u64>(),
        ops in sw_ops(6, 40),
    ) {
        check_sw(&UnboundedSnapshot::new(n, init), n, init, &ops);
    }

    #[test]
    fn bounded_matches_vector_model(
        n in 1usize..6,
        init in any::<u64>(),
        ops in sw_ops(6, 40),
    ) {
        check_sw(&BoundedSnapshot::new(n, init), n, init, &ops);
    }

    #[test]
    fn double_collect_matches_vector_model(
        n in 1usize..6,
        init in any::<u64>(),
        ops in sw_ops(6, 40),
    ) {
        check_sw(&DoubleCollectSnapshot::new(n, init), n, init, &ops);
    }

    #[test]
    fn lock_matches_vector_model(
        n in 1usize..6,
        init in any::<u64>(),
        ops in sw_ops(6, 40),
    ) {
        check_sw(&LockSnapshot::new(n, init), n, init, &ops);
    }

    #[test]
    fn multiwriter_matches_vector_model(
        n in 1usize..5,
        m in 1usize..5,
        init in any::<u64>(),
        raw in prop::collection::vec(
            (0usize..5, 0usize..5, any::<u64>(), any::<bool>()),
            0..40,
        ),
    ) {
        let object = MultiWriterSnapshot::new(n, m, init);
        let mut model = vec![init; m];
        let mut handles: Vec<_> =
            (0..n).map(|i| object.handle(ProcessId::new(i))).collect();
        for (pid, word, value, is_update) in raw {
            let pid = pid % n;
            let word = word % m;
            if is_update {
                handles[pid].update(word, value);
                model[word] = value;
            } else {
                let view = handles[pid].scan();
                prop_assert_eq!(view.to_vec(), model.clone());
            }
        }
    }

    #[test]
    fn views_share_storage_on_borrow_free_scans(
        n in 1usize..5,
        values in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        // Repeated scans with no intervening updates return equal views.
        let object = BoundedSnapshot::new(n, 0u64);
        let mut h = object.handle(ProcessId::new(0));
        for v in values {
            h.update(v);
            let a = h.scan();
            let b = h.scan();
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn handles_can_cycle_without_state_corruption(
        rounds in prop::collection::vec(any::<u64>(), 1..12),
    ) {
        // Claim, use, drop, re-claim: the bounded algorithm's local toggle
        // resets, which must not confuse scanners (toggle semantics only
        // require *change* detection relative to what was last written by
        // the same claim).
        let object = UnboundedSnapshot::new(2, 0u64);
        let mut expected = 0u64;
        for v in rounds {
            let mut h = object.handle(ProcessId::new(0));
            h.update(v);
            expected = v;
            drop(h);
        }
        let mut h = object.handle(ProcessId::new(1));
        prop_assert_eq!(h.scan()[0], expected);
    }
}
