//! `snapshotd` — one ABD replica behind a socket.
//!
//! ```text
//! snapshotd --listen tcp:127.0.0.1:7000 --replica 0
//! snapshotd --listen uds:/tmp/r1.sock --replica 1 --state /var/lib/snap/r1.log \
//!     --fsync always --recover truncate --checkpoint-bytes 1048576
//! ```
//!
//! With `--state` the replica is durable: every winning store lands in a
//! CRC32-framed, generation-stamped log, compacted into an atomically
//! renamed checkpoint once the log passes `--checkpoint-bytes`. `--fsync
//! always|interval:MS|never` picks the durability/latency trade, and
//! `--recover truncate|fail` decides what a damaged log does on restart:
//! truncate from the first corrupt record (counted in the `recovered:`
//! banner) or refuse to start with the corruption offset in the error.
//! A torn tail — an incomplete record from a mid-write crash — is always
//! truncated and counted; it is expected wreckage, not corruption.
//!
//! Prints `snapshotd[N] recovered: ...` (durable mode) and then
//! `snapshotd[N] listening on ENDPOINT` once ready, and serves until
//! killed. SIGTERM shuts down gracefully: stop accepting, drain
//! in-flight connections, write a final fsynced checkpoint, exit 0 — so
//! the next start replays zero log records. Lives in the workspace root
//! so integration tests reach it via `CARGO_BIN_EXE_snapshotd`; the
//! implementation is `snapshot_wire::server::run_cli` (run with
//! `--help` for flags).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(err) = snapshot_wire::server::run_cli(&args) {
        eprintln!("snapshotd: {err}");
        std::process::exit(2);
    }
}
