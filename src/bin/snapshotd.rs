//! `snapshotd` — one ABD replica behind a socket.
//!
//! ```text
//! snapshotd --listen tcp:127.0.0.1:7000 --replica 0
//! snapshotd --listen uds:/tmp/r1.sock --replica 1 --state /var/lib/snap/r1.log
//! ```
//!
//! Prints `snapshotd[N] listening on ENDPOINT` once ready, then serves
//! until killed. Lives in the workspace root so integration tests reach
//! it via `CARGO_BIN_EXE_snapshotd`; the implementation is
//! `snapshot_wire::server::run_cli` (run with `--help` for flags).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(err) = snapshot_wire::server::run_cli(&args) {
        eprintln!("snapshotd: {err}");
        std::process::exit(2);
    }
}
