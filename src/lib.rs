//! Umbrella crate for the reproduction of *Atomic Snapshots of Shared
//! Memory* (Afek, Attiya, Dolev, Gafni, Merritt, Shavit; PODC 1990).
//!
//! Re-exports the workspace crates under one roof for convenience; the
//! real API documentation lives in the member crates:
//!
//! * [`core`] (`snapshot-core`) — the paper's three wait-free snapshot
//!   constructions and the baselines;
//! * [`registers`] (`snapshot-registers`) — the atomic register substrate;
//! * [`sim`] (`snapshot-sim`) — the deterministic scheduler / model
//!   checker;
//! * [`automata`] (`snapshot-automata`) — the SWS/MWS specification
//!   automata of Section 2;
//! * [`lin`] (`snapshot-lin`) — history recording and linearizability
//!   checking;
//! * [`apps`] (`snapshot-apps`) — checkpointable counters, randomized
//!   consensus, concurrent timestamps;
//! * [`abd`] (`snapshot-abd`) — ABD register emulation over a simulated
//!   message-passing network (Section 6's fault-tolerant deployment).
//!
//! # Quickstart
//!
//! ```
//! use atomic_snapshots::core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
//! use atomic_snapshots::registers::ProcessId;
//!
//! let snapshot = BoundedSnapshot::new(2, 0u32);
//! let mut handle = snapshot.handle(ProcessId::new(0));
//! handle.update(7);
//! assert_eq!(handle.scan().to_vec(), vec![7, 0]);
//! ```

#![warn(missing_docs)]

pub use snapshot_abd as abd;
pub use snapshot_apps as apps;
pub use snapshot_automata as automata;
pub use snapshot_core as core;
pub use snapshot_lin as lin;
pub use snapshot_registers as registers;
pub use snapshot_sim as sim;

/// One-stop imports for typical use: the snapshot types, their traits,
/// and `ProcessId`.
///
/// ```
/// use atomic_snapshots::prelude::*;
///
/// let snap = BoundedSnapshot::new(2, 0u8);
/// let mut h = snap.handle(ProcessId::new(1));
/// h.update(3);
/// assert_eq!(h.scan().to_vec(), vec![0, 3]);
/// ```
pub mod prelude {
    pub use snapshot_core::{
        BoundedSnapshot, MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle, ScanStats,
        SnapshotView, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
    };
    pub use snapshot_registers::{Backend, EpochBackend, ProcessId};
}
