//! The fault-tolerant service mode end to end: a coalescing snapshot
//! service over an `AbdSnapshotCore` (Figure 2 running fallibly on
//! ABD-replicated registers), walked through the whole failure path —
//! replica crashes → quorum loss → typed `Backend` errors within the
//! retry budget → the per-shard health gate shedding with `Degraded` →
//! heal → half-open probe → full recovery.
//!
//! The whole run is causally traced: a [`FlightRecorder`] rides the same
//! trace as the ring buffer, so the breaker trip and the expired deadline
//! each freeze a black-box dump of the spans leading up to them. Pass an
//! output path as the first argument to write the breaker-trip dump as
//! JSON-lines (plus a chrome://tracing span file next to it) for offline
//! forensics.
//!
//! Run with: `cargo run --release --example fault_tolerant_service`

use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, Network, NetworkConfig, RetryPolicy};
use snapshot_obs::{
    chrome_tracing, DumpCause, FanoutSink, FlightRecorder, Registry, RingSink, Trace,
};
use snapshot_service::{
    HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService,
};

fn main() {
    const LANES: usize = 3;
    const REPLICAS: usize = 5;

    let registry = Registry::new();
    // One trace plane for the whole stack: the ring keeps a rolling
    // window for the final report, the flight recorder freezes a dump
    // whenever a breaker trips or a deadline expires.
    let ring = Arc::new(RingSink::new(LANES, 8_192));
    let recorder = Arc::new(FlightRecorder::with_max_dumps(4_096, 16));
    let trace = Trace::new(Arc::new(FanoutSink::new(vec![ring.clone(), recorder.clone()])));
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_op_timeout(Duration::from_millis(50))
            .with_retry(RetryPolicy {
                initial_backoff: Duration::from_micros(300),
                max_backoff: Duration::from_millis(4),
                multiplier: 2,
                jitter: 0.5,
            })
            .with_trace(trace.clone()),
    ));
    println!(
        "replica network: {REPLICAS} replicas, quorum {}, tolerates {} crash(es)",
        network.quorum(),
        network.fault_tolerance()
    );

    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(500),
                ..RetryConfig::default()
            },
            health: HealthConfig {
                // Trip as soon as the 8-outcome window is half errors with
                // at least two outcomes recorded: the two failed attempts
                // of one exhausted retry budget are enough.
                window: 8,
                trip_error_pct: 50,
                min_volume: 2,
                cooldown: Duration::from_millis(100),
                // One good probe closes the breaker again.
                ramp_successes: 1,
                ramp_tokens: 4,
                ramp_interval: Duration::from_millis(5),
                jitter_pct: 25,
            },
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry)
    .with_trace(trace);

    // Healthy fleet: every operation succeeds, scans coalesce as usual.
    let mut client = service.client(0);
    client.update(0, 10).expect("healthy quorum");
    service.client(1).update(1, 20).expect("healthy quorum");
    println!("scan (all replicas up)       : {:?}", &client.scan().unwrap()[..]);

    // Crash a *majority*. Liveness is gone: each operation burns its
    // retry budget against starving quorum phases and comes back as a
    // typed `Backend` error — never a hang, never a panic.
    println!("crashing replicas 0, 1, 2 (a majority) ...");
    network.crash(0);
    network.crash(1);
    network.crash(2);

    // A budgeted partial scan against the dead majority does not burn
    // the full retry ladder: the wall-clock budget caps the quorum wait,
    // the request comes back as a typed `DeadlineExceeded`, and the
    // flight recorder freezes a dump of the spans leading up to the
    // expiry.
    match client.scan_subset_within(&[1], Duration::from_millis(5)) {
        Err(ServiceError::DeadlineExceeded { .. }) => {
            println!("scan (5ms deadline budget)   : DeadlineExceeded under the blackout");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    match client.scan() {
        Err(ServiceError::Backend { attempts, error }) => {
            println!("scan (majority down)         : Backend after {attempts} attempts: {error}");
        }
        other => panic!("expected a Backend error, got {other:?}"),
    }

    // That failure tripped the health gate: the two failed attempts put
    // the outcome window at 100% errors over the volume guard. Further
    // requests are shed *before touching the sick quorum*, with a
    // jittered hint saying when to come back.
    match client.scan() {
        Err(ServiceError::Degraded { shard, retry_after }) => {
            println!("scan (breaker open)          : Degraded, shard {shard}, retry in {retry_after:?}");
        }
        Err(ServiceError::Backend { attempts, error }) => {
            println!("scan (still probing)         : Backend after {attempts} attempts: {error}");
        }
        other => panic!("expected Degraded or Backend, got {other:?}"),
    }
    println!("degraded shards              : {:?}", service.degraded_shards());

    // Heal: restart the crashed majority, wait out the cooldown, and walk
    // the half-open priority ramp — probe-class traffic is admitted
    // first, so a cheap health probe (not a client's full scan) is what
    // verifies the quorum recovered and closes the breaker.
    println!("restarting replicas 0, 1, 2 ...");
    network.restart(0);
    network.restart(1);
    network.restart(2);
    for shard in 0..LANES {
        loop {
            match client.probe_shard(shard) {
                Ok(()) => break,
                Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }
    let view = client.scan().expect("breaker closed after the probe");
    println!("scan (healed, probe passed)  : {:?}", &view[..]);
    assert_eq!(view[0], 10);
    assert_eq!(view[1], 20);
    assert!(service.degraded_shards().is_empty(), "breaker closed after the probe");

    client.update(0, 11).expect("healed quorum");
    println!("scan (back to normal)        : {:?}", &client.scan().unwrap()[..]);

    // Every operation can also carry a wall-clock budget: it completes
    // within the budget or returns a typed `DeadlineExceeded` — it never
    // parks past its deadline, even coalesced behind a slower leader.
    let view = client.scan_within(Duration::from_secs(1)).expect("healthy quorum is fast");
    assert_eq!(view[0], 11);
    println!("scan (1s deadline budget)    : {:?}", &view[..]);

    println!("\nfault accounting:");
    for name in [
        "service.fault.backend_errors",
        "service.fault.retries",
        "service.fault.retry_exhausted",
        "service.fault.degraded_shed",
        "service.fault.deadline_exceeded",
        "service.load.shed",
        "service.coalesce.abdicated",
    ] {
        println!("  {name:<34} {}", registry.counter(name).get());
    }
    assert!(registry.counter("service.fault.backend_errors").get() >= 1);
    assert_eq!(service.inflight(), 0);
    assert_eq!(service.coalescing_waiters(), 0);

    // The anomalies above each froze a black-box dump: the expired
    // deadline and the breaker trip both captured the span tree of the
    // requests leading up to them.
    let dumps = recorder.dumps();
    println!(
        "\nflight recorder: {} dump(s) captured, {} suppressed",
        dumps.len(),
        recorder.suppressed()
    );
    for dump in &dumps {
        println!(
            "  cause {:<18} trigger_seq {:<6} events {}",
            dump.cause.name(),
            dump.trigger_seq,
            dump.events.len()
        );
    }
    assert!(dumps.iter().any(|d| d.cause == DumpCause::DeadlineExceeded));
    let trip = dumps
        .iter()
        .find(|d| d.cause == DumpCause::BreakerTrip)
        .expect("the blackout tripped the breaker");
    let rendered = trip.render();
    println!("breaker-trip dump header     : {}", rendered.lines().next().unwrap());

    // With an output path, write the dump (JSON-lines, same schema as an
    // ordinary trace dump) and the ring's span trace (chrome://tracing).
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &rendered).expect("write the flight dump");
        let events = ring.drain();
        std::fs::write(format!("{path}.chrome.json"), chrome_tracing(&events))
            .expect("write the chrome span trace");
        println!("flight dump written to {path} (+ .chrome.json span trace)");
    }

    println!("\nevery failure was a typed value; no request ever hung. done.");
}
