//! The fault-tolerant service mode end to end: a coalescing snapshot
//! service over an `AbdSnapshotCore` (Figure 2 running fallibly on
//! ABD-replicated registers), walked through the whole failure path —
//! replica crashes → quorum loss → typed `Backend` errors within the
//! retry budget → the per-shard health gate shedding with `Degraded` →
//! heal → half-open probe → full recovery.
//!
//! Run with: `cargo run --release --example fault_tolerant_service`

use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, Network, NetworkConfig, RetryPolicy};
use snapshot_obs::Registry;
use snapshot_service::{
    HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService,
};

fn main() {
    const LANES: usize = 3;
    const REPLICAS: usize = 5;

    let registry = Registry::new();
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_op_timeout(Duration::from_millis(50))
            .with_retry(RetryPolicy {
                initial_backoff: Duration::from_micros(300),
                max_backoff: Duration::from_millis(4),
                multiplier: 2,
                jitter: 0.5,
            }),
    ));
    println!(
        "replica network: {REPLICAS} replicas, quorum {}, tolerates {} crash(es)",
        network.quorum(),
        network.fault_tolerance()
    );

    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(500),
                ..RetryConfig::default()
            },
            health: HealthConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            },
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    // Healthy fleet: every operation succeeds, scans coalesce as usual.
    let mut client = service.client(0);
    client.update(0, 10).expect("healthy quorum");
    service.client(1).update(1, 20).expect("healthy quorum");
    println!("scan (all replicas up)       : {:?}", &client.scan().unwrap()[..]);

    // Crash a *majority*. Liveness is gone: each operation burns its
    // retry budget against starving quorum phases and comes back as a
    // typed `Backend` error — never a hang, never a panic.
    println!("crashing replicas 0, 1, 2 (a majority) ...");
    network.crash(0);
    network.crash(1);
    network.crash(2);

    match client.scan() {
        Err(ServiceError::Backend { attempts, error }) => {
            println!("scan (majority down)         : Backend after {attempts} attempts: {error}");
        }
        other => panic!("expected a Backend error, got {other:?}"),
    }

    // That failure tripped the health gate (threshold 2: one failure per
    // attempt). Further requests are shed *before touching the sick
    // quorum*, with a hint saying when to come back.
    match client.scan() {
        Err(ServiceError::Degraded { shard, retry_after }) => {
            println!("scan (breaker open)          : Degraded, shard {shard}, retry in {retry_after:?}");
        }
        Err(ServiceError::Backend { attempts, error }) => {
            println!("scan (still probing)         : Backend after {attempts} attempts: {error}");
        }
        other => panic!("expected Degraded or Backend, got {other:?}"),
    }
    println!("degraded shards              : {:?}", service.degraded_shards());

    // Heal: restart the crashed majority, wait out the cooldown, and the
    // half-open probe closes the breaker for everyone.
    println!("restarting replicas 0, 1, 2 ...");
    network.restart(0);
    network.restart(1);
    network.restart(2);
    let view = loop {
        match client.scan() {
            Ok(view) => break view,
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    println!("scan (healed, probe passed)  : {:?}", &view[..]);
    assert_eq!(view[0], 10);
    assert_eq!(view[1], 20);
    assert!(service.degraded_shards().is_empty(), "breaker closed after the probe");

    client.update(0, 11).expect("healed quorum");
    println!("scan (back to normal)        : {:?}", &client.scan().unwrap()[..]);

    println!("\nfault accounting:");
    for name in [
        "service.fault.backend_errors",
        "service.fault.retries",
        "service.fault.retry_exhausted",
        "service.fault.degraded_shed",
        "service.coalesce.abdicated",
    ] {
        println!("  {name:<34} {}", registry.counter(name).get());
    }
    assert!(registry.counter("service.fault.backend_errors").get() >= 1);
    assert_eq!(service.inflight(), 0);
    assert_eq!(service.coalescing_waiters(), 0);
    println!("\nevery failure was a typed value; no request ever hung. done.");
}
