//! Randomized consensus from atomic snapshots: eight threads with mixed
//! proposals reach agreement, wait-free, using only registers + local
//! coins (the application family the paper cites as [A88, AH89, ADS89]).
//!
//! Run with: `cargo run --example randomized_consensus`

use rand::{RngExt, SeedableRng};
use snapshot_apps::RandomizedConsensus;
use snapshot_registers::ProcessId;

fn main() {
    const N: usize = 8;

    let consensus = RandomizedConsensus::new(N, 128);

    let decisions: Vec<(usize, bool, bool)> = std::thread::scope(|s| {
        (0..N)
            .map(|i| {
                let consensus = &consensus;
                s.spawn(move || {
                    let input = i % 3 == 0; // mixed proposals
                    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC01_u64 + i as u64);
                    let mut handle = consensus.handle(ProcessId::new(i));
                    let decided = handle
                        .propose(input, &mut || rng.random_bool(0.5))
                        .expect("round budget is generous");
                    (i, input, decided)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    for (i, input, decided) in &decisions {
        println!("P{i}: proposed {input:5} -> decided {decided}");
    }

    let first = decisions[0].2;
    assert!(
        decisions.iter().all(|(_, _, d)| *d == first),
        "agreement violated!"
    );
    assert!(
        decisions.iter().any(|(_, input, _)| *input == first),
        "validity violated!"
    );
    println!("agreement + validity hold: all {N} processes decided {first}");
}
