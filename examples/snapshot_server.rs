//! A miniature "snapshot server": many client threads hitting one
//! [`SnapshotService`] that fronts an unbounded atomic snapshot.
//!
//! The demo shows all three service features at once:
//!
//! * **scan coalescing** — a phase over a deliberately slow backing (a
//!   stand-in for an expensive substrate such as replicated registers)
//!   shows concurrent scans riding someone else's collect (watch
//!   `service.scan.coalesced` vs `service.scan.solo` in the metrics dump);
//! * **partial scans** — half the reads ask for a two-segment window via
//!   `scan_subset`, served natively at O(touched-segments) cost by the
//!   backing's subset scan (watch `service.partial.native` and the
//!   `service.partial.certified_ratio` gauge in the metrics dump);
//! * **admission control** — a second service over the same kind of
//!   object is configured with a deliberately tiny in-flight budget and
//!   rejects a request mid-flight with a typed `Overloaded` error the
//!   client handles by retrying.
//!
//! The run closes with the phase-1 service's per-op-class latency
//! quantiles (p50/p95/p99 upper bounds from its log₂-µs histograms) and
//! a peek at the causal trace the ring sink buffered.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example snapshot_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use snapshot_core::{ScanStats, SnapshotCore, SnapshotView, UnboundedSnapshot};
use snapshot_obs::{Event, Registry, RingSink, Trace};
use snapshot_registers::ProcessId;
use snapshot_service::{ServiceConfig, ServiceError, SnapshotService};

/// A backing whose collects take a while — stands in for an expensive
/// substrate (a replicated ABD register, a huge segment count) where
/// coalescing pays. In-process collects are so fast that concurrent scans
/// rarely overlap; against this wrapper they always do.
struct SlowCore<C> {
    inner: C,
    collect_delay: Duration,
}

impl<V, C: SnapshotCore<V>> SnapshotCore<V> for SlowCore<C> {
    fn segments(&self) -> usize {
        self.inner.segments()
    }

    fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    fn single_writer(&self) -> bool {
        self.inner.single_writer()
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        std::thread::sleep(self.collect_delay);
        self.inner.core_scan(lane)
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        self.inner.core_update(lane, segment, value)
    }

    fn certified_read(&self, reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        self.inner.certified_read(reader, segment)
    }
}

snapshot_core::impl_try_snapshot_core!([V, C: SnapshotCore<V>] V, SlowCore<C>);

const SEGMENTS: usize = 8;
const OPS_PER_CLIENT: u64 = 2_000;

fn main() {
    let registry = Registry::new();
    let ring = Arc::new(RingSink::new(SEGMENTS, 4_096));
    let service = SnapshotService::with_config(
        UnboundedSnapshot::new(SEGMENTS, 0u64),
        ServiceConfig { shards: 4, max_inflight: 64, ..ServiceConfig::default() },
    )
    .with_registry(&registry)
    .with_trace(Trace::new(ring.clone()));

    println!("snapshot server: {SEGMENTS} segments, 4 shards, {SEGMENTS} clients");

    // Phase 1: concurrent updaters + scanners against one service.
    std::thread::scope(|s| {
        for lane in 0..SEGMENTS {
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(lane);
                let mut checksum = 0u64;
                for k in 0..OPS_PER_CLIENT {
                    match k % 4 {
                        0 => client.update(lane, (lane as u64) << 32 | k).expect("own segment"),
                        1 | 2 => {
                            // Full scan: the coalescing path.
                            let view = client.scan().expect("within budget");
                            checksum = checksum.wrapping_add(view.iter().sum::<u64>());
                        }
                        _ => {
                            // Partial scan: my segment and my neighbour's.
                            let subset = [lane, (lane + 1) % SEGMENTS];
                            let view = client.scan_subset(&subset).expect("within budget");
                            checksum =
                                checksum.wrapping_add(view.values().iter().sum::<u64>());
                        }
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });

    // Phase 2: coalescing against an expensive backing. With each collect
    // pinned at 200µs, scans issued while one is in flight park and ride
    // the successor collect instead of running their own.
    let slow = SnapshotService::new(SlowCore {
        inner: UnboundedSnapshot::new(SEGMENTS, 0u64),
        collect_delay: Duration::from_micros(200),
    })
    .with_registry(&registry);
    let coalesced_before = registry.counter("service.scan.coalesced").get();
    std::thread::scope(|s| {
        for lane in 0..SEGMENTS {
            let slow = &slow;
            s.spawn(move || {
                let mut client = slow.client(lane);
                for _ in 0..50 {
                    client.scan().expect("within budget");
                }
            });
        }
    });
    let coalesced = registry.counter("service.scan.coalesced").get() - coalesced_before;
    println!(
        "slow-backing phase: {} of {} scans coalesced onto another scan's collect",
        coalesced,
        SEGMENTS * 50,
    );

    // Phase 3: backpressure. A budget of one means a scan issued while
    // another request holds the slot is rejected, not queued.
    let tiny = SnapshotService::with_config(
        UnboundedSnapshot::new(2, 0u64),
        ServiceConfig { max_inflight: 1, ..ServiceConfig::default() },
    )
    .with_registry(&registry);
    let rejected = std::sync::atomic::AtomicU32::new(0);
    std::thread::scope(|s| {
        for lane in 0..2 {
            let tiny = &tiny;
            let rejected = &rejected;
            s.spawn(move || {
                let mut client = tiny.client(lane);
                let mut local_rejections = 0u32;
                for k in 0..OPS_PER_CLIENT {
                    client.update(lane, k).ok();
                    loop {
                        match client.scan() {
                            Ok(_) => break,
                            Err(ServiceError::Overloaded { .. }) => {
                                local_rejections += 1;
                                std::thread::yield_now(); // back off, retry
                            }
                            Err(e) => panic!("unexpected service error: {e}"),
                        }
                    }
                }
                if lane == 0 {
                    rejected.store(local_rejections, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let rejected = rejected.into_inner();
    println!(
        "backpressure demo: lane 0 was rejected {rejected} times by the budget-of-1 service\n"
    );

    println!("--- metrics ---");
    print!("{}", registry.render());

    // The service keeps log₂-µs latency histograms per op class; the
    // summaries give upper bounds on the quantiles.
    let latency = service.latency_summaries();
    println!("\n--- latency quantiles (phase 1 service) ---");
    println!("scan    : {}", latency.scan);
    println!("partial : {}", latency.partial);
    println!("update  : {}", latency.update);
    println!(
        "partial certified ratio: {} permille (native subset scans and \
         certified collects vs projected-full fallbacks)",
        service.partial_certified_permille()
    );

    let events = ring.drain();
    let leads = events
        .iter()
        .filter(|e| matches!(e.event, Event::CoalesceLead { .. }))
        .count();
    let joins = events
        .iter()
        .filter(|e| matches!(e.event, Event::CoalesceJoin { .. }))
        .count();
    let partials = events
        .iter()
        .filter(|e| matches!(e.event, Event::PartialCollect { .. }))
        .count();
    println!("\n--- trace ({} events buffered) ---", events.len());
    println!("coalesce leads: {leads}, joins: {joins}, partial collects: {partials}");
    println!("first few events:");
    for event in events.iter().take(8) {
        println!("  {event}");
    }
}
