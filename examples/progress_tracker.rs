//! Consistent progress tracking for a worker pool — checkpointable
//! counters and concurrent timestamps working together.
//!
//! A pool of workers processes items and counts them in a
//! [`CheckpointableCounter`]; a coordinator takes *atomic* checkpoints to
//! drive a progress display, and stamps each checkpoint with a
//! [`TimestampSystem`] label so checkpoints from different coordinators
//! can be totally ordered. Because every checkpoint is a true instant,
//! the displayed totals never double-count or miss an increment, and two
//! checkpoints are always comparable.
//!
//! Run with: `cargo run --release --example progress_tracker`

use snapshot_apps::{CheckpointableCounter, TimestampSystem};
use snapshot_registers::ProcessId;

const WORKERS: usize = 4;
const ITEMS_PER_WORKER: u64 = 50_000;

fn main() {
    // Workers + one coordinator share the counter; coordinators (here one,
    // but the design allows many) share the timestamp system.
    let counter = CheckpointableCounter::new(WORKERS + 1);
    let stamps = TimestampSystem::new(1);
    let total_expected = WORKERS as u64 * ITEMS_PER_WORKER;

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let counter = &counter;
            s.spawn(move || {
                let mut h = counter.handle(ProcessId::new(w));
                for _ in 0..ITEMS_PER_WORKER {
                    // ... process an item ...
                    h.increment();
                }
            });
        }

        let counter = &counter;
        let stamps = &stamps;
        s.spawn(move || {
            let mut ch = counter.handle(ProcessId::new(WORKERS));
            let mut sh = stamps.handle(ProcessId::new(0));
            let mut last_total = 0u64;
            let mut next_report = 0u64;
            loop {
                let checkpoint = ch.checkpoint();
                let total: u64 = checkpoint.iter().sum();
                assert!(total >= last_total, "progress went backwards!");
                last_total = total;
                if total >= next_report {
                    let label = sh.label();
                    println!(
                        "[checkpoint {label}] {total:>7}/{total_expected} items, per-worker: {:?}",
                        &checkpoint.as_slice()[..WORKERS]
                    );
                    next_report += total_expected / 10;
                }
                if total == total_expected {
                    break;
                }
                std::thread::yield_now();
            }
        });
    });

    let final_total = counter.handle(ProcessId::new(0)).read();
    println!("final: {final_total} items (exact, no lost updates)");
    assert_eq!(final_total, total_expected);
}
