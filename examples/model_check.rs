//! Model checking in action: exhaustively explore every schedule of a
//! small snapshot workload, check every history for linearizability, and
//! then demonstrate the one genuine find of this reproduction — the
//! ambiguous retry edge in the paper's Figure 4 pseudocode, whose literal
//! reading the checker convicts on a constructed schedule.
//!
//! Run with: `cargo run --release --example model_check`

use snapshot_bench::harness::{run_mw_sim, run_sw_sim, MwStep, SwStep};
use snapshot_core::{MultiWriterSnapshot, MwVariant, UnboundedSnapshot};
use snapshot_lin::{check_history, WgResult};
use snapshot_registers::ProcessId;
use snapshot_sim::{Decision, ExploreLimits, Explorer, FnPolicy, SimConfig};

fn main() {
    exhaustive_sweep();
    figure4_ablation();
}

/// Part 1: every schedule of update-vs-scan on the unbounded algorithm.
fn exhaustive_sweep() {
    println!("== exhaustive exploration: unbounded snapshot, 2 processes ==");
    let scripts = vec![vec![SwStep::Update], vec![SwStep::Scan]];
    let mut checked = 0u64;
    let outcome = Explorer::new(ExploreLimits {
        max_runs: 100_000,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        let (history, _) = run_sw_sim(2, &scripts, policy, SimConfig::default(), |b| {
            UnboundedSnapshot::with_backend(2, 0u64, b)
        })
        .map_err(|e| e.to_string())?;
        if !check_history(&history).is_linearizable() {
            return Err(format!("VIOLATION: {history:?}"));
        }
        checked += 1;
        Ok(())
    })
    .expect("no schedule may violate linearizability");
    println!(
        "  {checked} schedules executed, every history linearizable (complete: {})",
        outcome.is_complete()
    );
}

/// Part 2: the Figure 4 retry-edge ablation (see DESIGN.md §"Figure 4").
fn figure4_ablation() {
    println!("== Figure 4 retry-edge ablation (n=3, m=2) ==");
    for variant in [MwVariant::LiteralGoto1, MwVariant::RescanHandshake] {
        let verdict = run_attack(variant);
        println!("  {variant:?}: {verdict}");
    }
}

fn run_attack(variant: MwVariant) -> String {
    const N: usize = 3;
    const M: usize = 2;
    // Phased adversary: P1 completes an update; the scanner finishes scan
    // #1 and the handshake of scan #2; P0 flips its handshake bits and
    // stalls; the scanner runs alone.
    let mut granted = [0u64; N];
    let policy = FnPolicy(move |ready: &[snapshot_sim::ReadyProcess], _| {
        let pick = |pid: usize| ready.iter().position(|r| r.pid.get() == pid);
        if let Some(i) = pick(1) {
            granted[1] += 1;
            return Decision::Run(i);
        }
        if granted[2] < 19 {
            if let Some(i) = pick(2) {
                granted[2] += 1;
                return Decision::Run(i);
            }
        }
        if granted[0] < 6 {
            if let Some(i) = pick(0) {
                granted[0] += 1;
                return Decision::Run(i);
            }
        }
        if let Some(i) = pick(2) {
            granted[2] += 1;
            return Decision::Run(i);
        }
        Decision::Halt
    });

    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],
        vec![MwStep::Update(1)],
        vec![MwStep::Scan, MwStep::Scan],
    ];
    let mut policy = policy;
    let (history, _) = run_mw_sim(
        N,
        M,
        &scripts,
        &mut policy,
        SimConfig {
            max_steps: Some(10_000),
            stop_when_done: vec![ProcessId::new(2)],
            record_trace: false,
        },
        |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, variant),
    )
    .expect("simulation failed");

    match check_history(&history) {
        WgResult::Linearizable { .. } => "history linearizable — safe".to_string(),
        WgResult::NotLinearizable => {
            "LINEARIZABILITY VIOLATION — the scanner returned a stale borrowed view".to_string()
        }
        WgResult::TooLarge { len } => format!("history too large to check ({len} ops)"),
    }
}
