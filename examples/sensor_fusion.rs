//! Sensor fusion: why "read every register" is not "take a snapshot".
//!
//! Four sensor threads continuously publish monotonically-versioned
//! readings. Two fusion threads each repeatedly observe the whole sensor
//! array, producing a vector of versions per observation.
//!
//! If every observation were a true *instant* of the system, then any two
//! observations — even from different fusion threads — would be
//! **comparable**: the later instant dominates the earlier one
//! componentwise (each sensor's version only grows). So a pair of
//! observations where each is strictly ahead of the other on *some*
//! sensor is a proof that one of them never existed at any instant.
//!
//! * plain per-register collects produce such impossible pairs in droves;
//! * wait-free atomic scans (this paper's construction) never do.
//!
//! This is the paper's opening motivation, measured: "much of the
//! difficulty in proving correctness of concurrent programs is due to the
//! need to argue based on 'inconsistent' views of shared memory."
//!
//! Run with: `cargo run --release --example sensor_fusion`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::{
    collect, Backend, EpochBackend, Instrumented, OpKind, ProcessId, Register, StepGate,
};

/// Makes every register access a preemption point — the asynchronous
/// model of the paper, where a process can be delayed arbitrarily between
/// any two register operations. Applied to BOTH competitors below, so the
/// comparison is fair (and the demonstration works even on one CPU).
struct YieldGate;

impl StepGate for YieldGate {
    fn step(&self, _pid: ProcessId, _op: OpKind) {
        std::thread::yield_now();
    }
}

fn yielding_backend() -> Instrumented<EpochBackend> {
    Instrumented::new(EpochBackend::new()).with_gate(Arc::new(YieldGate))
}

const SENSORS: usize = 4;
const OBSERVATIONS: usize = 3_000;
const READERS: usize = 2;

fn main() {
    let naive = incomparable_pairs_naive();
    let snapshot = incomparable_pairs_snapshot();

    println!(
        "impossible (incomparable) observation pairs out of {}x{} cross-pairs:",
        READERS * OBSERVATIONS,
        READERS * OBSERVATIONS
    );
    println!("  naive per-register collects : {naive}");
    println!("  atomic snapshot scans       : {snapshot}");
    assert_eq!(snapshot, 0, "atomic scans must always be comparable");
    if naive == 0 {
        println!("(the naive fusion got lucky this run — rerun, it rarely survives)");
    }
}

fn count_incomparable(observations: &[Vec<Vec<u64>>]) -> usize {
    let all: Vec<&Vec<u64>> = observations.iter().flatten().collect();
    let mut incomparable = 0;
    for (i, u) in all.iter().enumerate() {
        for v in &all[i + 1..] {
            let u_ahead = u.iter().zip(v.iter()).any(|(a, b)| a > b);
            let v_ahead = u.iter().zip(v.iter()).any(|(a, b)| a < b);
            if u_ahead && v_ahead {
                incomparable += 1;
            }
        }
    }
    incomparable
}

/// Fusion by plain collects over raw registers.
fn incomparable_pairs_naive() -> usize {
    let backend = yielding_backend();
    let regs: Vec<_> = (0..SENSORS).map(|_| backend.cell(0u64)).collect();
    let stop = AtomicBool::new(false);
    let observations: Mutex<Vec<Vec<Vec<u64>>>> = Mutex::new(Vec::new());
    let barrier = std::sync::Barrier::new(READERS);

    std::thread::scope(|s| {
        for (i, reg) in regs.iter().enumerate() {
            let stop = &stop;
            s.spawn(move || {
                let pid = ProcessId::new(i);
                let mut version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    version += 1;
                    reg.write(pid, version);
                }
            });
        }
        for r in 0..READERS {
            let regs = &regs;
            let observations = &observations;
            let barrier = &barrier;
            s.spawn(move || {
                let reader = ProcessId::new(SENSORS + r);
                let mut mine = Vec::with_capacity(OBSERVATIONS);
                barrier.wait();
                for _ in 0..OBSERVATIONS {
                    // Each fusion thread reads the registers one at a time
                    // — reader 0 ascending, reader 1 descending (both are
                    // perfectly reasonable "read everything" loops).
                    let obs: Vec<u64> = if r % 2 == 0 {
                        collect(reader, regs)
                    } else {
                        let mut rev: Vec<u64> =
                            regs.iter().rev().map(|reg| reg.read(reader)).collect();
                        rev.reverse();
                        rev
                    };
                    mine.push(obs);
                }
                observations.lock().push(mine);
            });
        }
        // Let the readers finish, then stop the sensors.
        while observations.lock().len() < READERS {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Relaxed);
    });

    count_incomparable(&observations.into_inner())
}

/// Fusion by atomic scans over the bounded snapshot construction.
fn incomparable_pairs_snapshot() -> usize {
    let n = SENSORS + READERS;
    let snapshot = BoundedSnapshot::with_backend(n, 0u64, &yielding_backend());
    let stop = AtomicBool::new(false);
    let observations: Mutex<Vec<Vec<Vec<u64>>>> = Mutex::new(Vec::new());
    let barrier = std::sync::Barrier::new(READERS);

    std::thread::scope(|s| {
        for i in 0..SENSORS {
            let snapshot = &snapshot;
            let stop = &stop;
            s.spawn(move || {
                let mut handle = snapshot.handle(ProcessId::new(i));
                let mut version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    version += 1;
                    handle.update(version);
                }
            });
        }
        for r in 0..READERS {
            let snapshot = &snapshot;
            let observations = &observations;
            let barrier = &barrier;
            s.spawn(move || {
                let mut handle = snapshot.handle(ProcessId::new(SENSORS + r));
                let mut mine = Vec::with_capacity(OBSERVATIONS);
                barrier.wait();
                for _ in 0..OBSERVATIONS {
                    // Only the sensor segments matter for comparability.
                    mine.push(handle.scan()[..SENSORS].to_vec());
                }
                observations.lock().push(mine);
            });
        }
        while observations.lock().len() < READERS {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Relaxed);
    });

    count_incomparable(&observations.into_inner())
}
