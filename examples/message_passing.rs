//! Atomic snapshots over message passing (Section 6 of the paper): the
//! same wait-free snapshot algorithm, unchanged, running on ABD-emulated
//! registers over a simulated replica network — and shrugging off a
//! minority of replica crashes mid-run.
//!
//! Run with: `cargo run --example message_passing`

use std::sync::Arc;

use snapshot_abd::{AbdBackend, Network, NetworkConfig};
use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::ProcessId;

fn main() {
    const PROCESSES: usize = 3;
    const REPLICAS: usize = 5;

    let network = Arc::new(Network::with_config(NetworkConfig::new(REPLICAS).with_jitter(2026)));
    println!(
        "replica network: {REPLICAS} replicas, quorum {}, tolerates {} crash(es)",
        network.quorum(),
        network.fault_tolerance()
    );

    // The bounded snapshot construction — the exact same code that runs on
    // shared memory — over ABD registers.
    let backend = AbdBackend::new(&network);
    let snapshot = BoundedSnapshot::with_backend(PROCESSES, 0u64, &backend);

    let mut handles: Vec<_> = (0..PROCESSES)
        .map(|i| snapshot.handle(ProcessId::new(i)))
        .collect();

    handles[0].update(10);
    handles[1].update(20);
    println!(
        "scan (all replicas up)      : {:?}",
        handles[2].scan().as_slice()
    );

    println!("crashing replicas 1 and 3 (a minority) ...");
    network.crash(1);
    network.crash(3);

    handles[2].update(30);
    let view = handles[0].scan();
    println!("scan (2 replicas crashed)   : {:?}", view.as_slice());
    assert_eq!(view.to_vec(), vec![10, 20, 30]);

    println!("restarting replica 1, crashing replica 0 instead ...");
    network.restart(1);
    network.restart(3);
    network.crash(0);
    network.crash(2);

    handles[1].update(21);
    let view = handles[2].scan();
    println!("scan (rotated crash set)    : {:?}", view.as_slice());
    assert_eq!(view.to_vec(), vec![10, 21, 30]);

    println!("every scan was a true instantaneous image, across crashes —");
    println!("\"resilient to process and link failures, as long as a majority");
    println!(" of the system remains connected\" (Section 6).");
}
