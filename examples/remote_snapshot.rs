//! End-to-end distributed-mode demo: a 3-process `snapshotd` cluster on
//! Unix-domain sockets serving the unmodified [`SnapshotService`] stack
//! over the real wire transport — then one replica is killed and the
//! fleet keeps answering (f = 1 of 3).
//!
//! The example is self-contained: it re-executes itself with `--serve`
//! to play the replica role, so one binary demonstrates the whole
//! topology. CI runs it and greps the closing `remote snapshot demo:`
//! line for healthy completion.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example remote_snapshot
//! ```

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, RemoteConfig, RemoteTransport, Transport};
use snapshot_service::{ServiceError, SnapshotService};
use snapshot_wire::Endpoint;

const REPLICAS: usize = 3;
const LANES: usize = 4;
const OPS_PER_LANE: u64 = 200;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--serve") {
        // Replica role: hand the remaining flags straight to snapshotd's
        // CLI (`--listen …` / `--replica …`).
        if let Err(err) = snapshot_wire::server::run_cli(&args[1..]) {
            eprintln!("remote_snapshot --serve: {err}");
            std::process::exit(2);
        }
        return;
    }

    // Coordinator role: spawn one replica process per endpoint and wait
    // for each to announce its listener before dialing.
    let exe = std::env::current_exe().expect("own executable path");
    let endpoints: Vec<Endpoint> = (0..REPLICAS)
        .map(|i| {
            let mut path = std::env::temp_dir();
            path.push(format!("remote-snapshot-{}-{i}.sock", std::process::id()));
            let _ = std::fs::remove_file(&path);
            Endpoint::Uds(path)
        })
        .collect();
    let mut children: Vec<Child> = endpoints
        .iter()
        .enumerate()
        .map(|(i, endpoint)| {
            let mut child = Command::new(&exe)
                .args([
                    "--serve",
                    "--listen",
                    &endpoint.to_string(),
                    "--replica",
                    &i.to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawning replica process");
            let stdout = child.stdout.take().expect("piped stdout");
            let mut lines = BufReader::new(stdout).lines();
            let banner = lines
                .next()
                .expect("replica exited before announcing its listener")
                .expect("reading replica banner");
            println!("spawned: {banner}");
            std::thread::spawn(move || for _ in lines {});
            child
        })
        .collect();

    let transport = Arc::new(RemoteTransport::connect(
        RemoteConfig::new(endpoints)
            .with_op_timeout(Duration::from_secs(2))
            .with_redial(Duration::from_millis(5), Duration::from_millis(100)),
    ));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "all replica processes must handshake",
    );
    println!(
        "connected to {}/{REPLICAS} replicas over {}",
        transport.connected_replicas(),
        Transport::kind(&*transport),
    );

    let core_transport: Arc<dyn Transport> = transport.clone();
    let service = SnapshotService::new(AbdSnapshotCore::remote(core_transport, LANES, 0u64));

    let soak = |label: &str| {
        std::thread::scope(|s| {
            for lane in 0..LANES {
                let service = &service;
                s.spawn(move || {
                    let mut client = service.client(lane);
                    for k in 1..=OPS_PER_LANE {
                        match client.update(lane, ((lane as u64) << 32) | k) {
                            Ok(()) | Err(ServiceError::Backend { .. }) => {}
                            Err(e) => panic!("lane {lane} update: {e}"),
                        }
                        match client.scan() {
                            Ok(view) => {
                                assert_eq!(view.len(), LANES);
                            }
                            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
                            Err(e) => panic!("lane {lane} scan: {e}"),
                        }
                    }
                });
            }
        });
        println!(
            "{label}: {} ops served across {LANES} lanes",
            LANES as u64 * OPS_PER_LANE * 2,
        );
    };

    soak("full fleet");

    // Kill one replica process outright: 2 of 3 is still a majority, so
    // the service rides out the loss on ABD retransmission + redial.
    children[2].kill().expect("killing replica 2");
    children[2].wait().expect("reaping replica 2");
    println!("killed replica 2 (SIGKILL); continuing at f=1");
    soak("degraded fleet (f=1)");

    let mut client = service.client(0);
    let view = loop {
        match client.scan() {
            Ok(view) => break view,
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(e) => panic!("final scan: {e}"),
        }
    };
    println!("final view: {:?}", &view[..]);

    println!("--- client metrics ---");
    print!("{}", transport.registry().render());

    for child in &mut children[..2] {
        child.kill().expect("shutting down replica");
        child.wait().expect("reaping replica");
    }

    let stats = transport.stats();
    println!(
        "remote snapshot demo: ok ({} ops, {} frames sent, {} redials, one replica killed)",
        LANES as u64 * OPS_PER_LANE * 4,
        stats.messages_sent,
        transport.registry().counter("abd.wire.dials").get(),
    );
}
