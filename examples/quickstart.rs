//! Quickstart: a wait-free atomic snapshot shared by four threads.
//!
//! Run with: `cargo run --example quickstart`

use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::ProcessId;

fn main() {
    const N: usize = 4;

    // The bounded single-writer construction (Figure 3 of the paper):
    // n single-writer registers + handshake bits, nothing else.
    let snapshot = BoundedSnapshot::new(N, 0u64);

    std::thread::scope(|s| {
        for i in 0..N {
            let snapshot = &snapshot;
            s.spawn(move || {
                // Each process claims its handle (owning its segment).
                let mut handle = snapshot.handle(ProcessId::new(i));
                for round in 1..=5u64 {
                    // update: write my segment...
                    handle.update(round * 10 + i as u64);
                    // scan: ...and read ALL segments in one atomic step.
                    let (view, stats) = handle.scan_with_stats();
                    println!(
                        "P{i} round {round}: view = {:?} ({} double collect(s){})",
                        view.as_slice(),
                        stats.double_collects,
                        if stats.borrowed { ", borrowed" } else { "" },
                    );
                }
            });
        }
    });

    // Quiescent: one final scan sees everyone's last update.
    let mut handle = snapshot.handle(ProcessId::new(0));
    let view = handle.scan();
    println!("final: {:?}", view.as_slice());
    assert!(view.iter().all(|&v| v % 10 < N as u64 && v >= 50));
}
